//! Network serving demo: a framed-TCP `NetServer` over loopback under
//! concurrent clients.
//!
//! ```text
//! cargo run --release --example net_demo [-- --threads N --batches N]
//! ```
//!
//! Spawns an in-process [`exaclim_serve::Server`] over a synthetic ERA5
//! archive and a trained emulator, fronts it with
//! [`exaclim_serve::NetServer`] on an ephemeral loopback port, and drives
//! it from N client threads, each on its own reused connection, mixing
//! slice reads, catalog queries, and stats polls. Every slice response is
//! verified bit-identical to the in-process `handle_batch` answer for the
//! same request. A derived-products section then exercises the scenario
//! engine — [`Client::ensemble`] fan-out and [`Client::scenario`]
//! statistics — verifying the wire answers against in-process
//! evaluation, before the demo reports throughput, latency percentiles,
//! and the transport counters.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::{
    CatalogQuery, Client, ClientConfig, NetConfig, NetServer, ProductDescriptor, ProductSource,
    ProductStat, Request, Response, RetryPolicy, ScenarioSpec, ServeConfig, Server, SliceRequest,
};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

const T_MAX: usize = 128;
const CHUNK_T: usize = 16;
const SLICE_T: u64 = 32;
const BATCH: usize = 16;

fn build_server() -> Arc<Server> {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let data = generator.generate_member(0, T_MAX);
    let meta = FieldMeta {
        ntheta: data.ntheta,
        nphi: data.nphi,
        start_year: data.start_year,
        tau: data.tau,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    w.add_field(
        "t2m",
        Codec::F32Shuffle,
        meta,
        data.npoints,
        CHUNK_T,
        &data.data,
    )
    .unwrap();
    let (cursor, _) = w.finish().unwrap();
    let mut catalog = exaclim_serve::Catalog::new();
    catalog
        .open_archive_bytes("era5", cursor.into_inner())
        .unwrap();
    let training = generator.generate_member(1, 2 * 365);
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8))
        .expect("training succeeds at demo scale");
    catalog.register_emulator("em", emulator).unwrap();
    Arc::new(Server::new(catalog, ServeConfig::default()))
}

/// Exercise the scenario engine over the wire: an ensemble fan-out and a
/// set of derived statistics, each checked bit-identical against the
/// in-process evaluation of the same descriptor.
fn derived_products_demo(server: &Server, addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();

    let spec = ScenarioSpec {
        emulator: "em".to_string(),
        t_max: 60,
        seed: 42,
        realizations: 8,
    };
    let ensemble = client.ensemble(&spec).unwrap();
    let Ok(Response::Product(want)) = server.handle(&Request::Ensemble(spec.clone())) else {
        panic!("in-process ensemble failed");
    };
    assert_eq!(ensemble, want, "ensemble diverged over the wire");
    println!(
        "\nderived products: ensemble of {} realizations × {} steps × {} points ok",
        ensemble.realizations, ensemble.rows, ensemble.values_per_row
    );

    let stats: [(&str, ProductStat); 3] = [
        ("mean/std", ProductStat::MeanStd),
        ("trend", ProductStat::Trend),
        (
            "tukey extremes",
            ProductStat::TukeyExtremes { tail_per_mille: 25 },
        ),
    ];
    for (label, stat) in stats {
        let descriptor = ProductDescriptor {
            source: ProductSource::Ensemble(spec.clone()),
            stat,
            time: None,
            space: None,
        };
        let product = client.scenario(&descriptor).unwrap();
        let Ok(Response::Product(want)) = server.handle(&Request::Product(descriptor)) else {
            panic!("in-process {label} failed");
        };
        assert_eq!(product, want, "{label} diverged over the wire");
        println!(
            "derived products: {label} → {} plane(s) × {} points ok",
            product.rows, product.values_per_row
        );
    }

    // An anomaly of the archive member against itself must be all zeros —
    // a quick semantic check, not just a round-trip one.
    let anomaly = client
        .scenario(&ProductDescriptor {
            source: ProductSource::Member {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::Anomaly {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
            },
            time: Some(0..32),
            space: None,
        })
        .unwrap();
    assert!(anomaly.values.iter().all(|v| *v == 0.0));
    println!("derived products: self-anomaly is identically zero ok");
}

/// The per-thread workload: mostly slices, a sprinkle of catalog and
/// stats ops, phase-shifted per thread.
fn batch_for(thread: u64, round: u64) -> Vec<Request> {
    let mut requests: Vec<Request> = (0..BATCH as u64)
        .map(|i| {
            let t0 = (thread * 17 + round * 5 + i * 7) % (T_MAX as u64 - SLICE_T);
            Request::Slice(SliceRequest {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
                range: t0..t0 + SLICE_T,
            })
        })
        .collect();
    if round.is_multiple_of(4) {
        requests.push(Request::Catalog(CatalogQuery::ListArchives));
    }
    if round.is_multiple_of(8) {
        requests.push(Request::Stats);
    }
    requests
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let threads = flag("--threads", 4);
    let batches = flag("--batches", 20);

    let server = build_server();
    let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), NetConfig::default())
        .unwrap()
        .spawn();
    let addr = handle.addr();
    println!("serving on {addr} — {threads} client threads × {batches} batches of {BATCH} slices");

    let start = Instant::now();
    let per_thread: Vec<(Vec<f64>, exaclim_serve::ClientStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    // Self-healing clients: with a clean server the
                    // policy is pure insurance, but arm EXACLIM_FAULTS
                    // and the retry/reconnect counters below move while
                    // every answer stays bit-identical.
                    let mut client = Client::connect_with(
                        addr,
                        ClientConfig {
                            retry: Some(RetryPolicy {
                                seed: t,
                                ..RetryPolicy::default()
                            }),
                            ..ClientConfig::default()
                        },
                    )
                    .unwrap();
                    let mut lat = Vec::with_capacity(batches);
                    for round in 0..batches as u64 {
                        let batch = batch_for(t, round);
                        let t0 = Instant::now();
                        let responses = client.batch(&batch).unwrap();
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        // Every wire answer must be bit-identical to the
                        // in-process answer for the same request.
                        for (req, resp) in batch.iter().zip(&responses) {
                            match (req, resp) {
                                (Request::Slice(_), Ok(Response::Slice(got))) => {
                                    let Ok(Response::Slice(want)) = server.handle(req) else {
                                        panic!("in-process slice failed");
                                    };
                                    assert_eq!(got.values, want.values, "wire diverged");
                                }
                                (Request::Catalog(_), Ok(Response::Catalog(_))) => {}
                                (Request::Stats, Ok(Response::Stats(_))) => {}
                                (req, resp) => panic!("unexpected answer {resp:?} to {req:?}"),
                            }
                        }
                    }
                    (lat, client.client_stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let client_retries: u64 = per_thread.iter().map(|(_, s)| s.retries).sum();
    let client_reconnects: u64 = per_thread.iter().map(|(_, s)| s.reconnects).sum();
    let mut latencies: Vec<f64> = per_thread.into_iter().flat_map(|(l, _)| l).collect();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total_batches = (threads * batches) as f64;
    let requests = server.stats().slices + server.stats().catalog_queries;

    println!(
        "\n{requests} requests in {elapsed:.3} s ({:.0} req/s)",
        requests as f64 / elapsed
    );
    println!(
        "batch latency over the wire: p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs ({:.0} batches/s)",
        pct(0.50),
        pct(0.95),
        pct(0.99),
        total_batches / elapsed
    );

    let net = handle.net_stats();
    println!(
        "transport: {} connections, {} frames in / {} out, {:.2} MiB in / {:.2} MiB out, {} wire errors",
        net.connections,
        net.frames_in,
        net.frames_out,
        net.bytes_in as f64 / (1 << 20) as f64,
        net.bytes_out as f64 / (1 << 20) as f64,
        net.wire_errors
    );
    println!(
        "connections: {} open / {} peak, {} reactor wakeups, {} reaped idle, {} rejected",
        net.open_connections,
        net.peak_connections,
        net.reactor_wakeups,
        net.reaped_idle,
        net.rejected
    );
    let cache = server.cache_stats();
    println!(
        "serve: {} chunk decodes, cache {} hits / {} misses",
        server.stats().chunk_decodes,
        cache.hits,
        cache.misses
    );
    println!(
        "resilience: {} faults injected, {} requests shed, {} deadline-expired, \
         clients spent {} retries / {} reconnects",
        net.faults_injected,
        net.shed,
        server.stats().deadline_expired,
        client_retries,
        client_reconnects
    );

    derived_products_demo(&server, addr);
    let products = server.product_cache_stats();
    println!(
        "serve: {} products served ({} computed), product cache {} hits / {} misses",
        server.stats().products,
        server.stats().product_computes,
        products.hits,
        products.misses
    );

    handle.shutdown();
    println!("shut down cleanly");
}
