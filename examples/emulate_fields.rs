//! Figure 2 scenario: side-by-side "simulation" and emulation fields for a
//! winter day and a summer day, rendered as coarse ASCII maps plus summary
//! statistics.
//!
//! ```text
//! cargo run --release --example emulate_fields
//! ```

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::generator::Dataset;
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_mathkit::stats::OnlineStats;

/// Render a field as an ASCII map (cold → '.', hot → '#').
fn ascii_map(d: &Dataset, t: usize, rows: usize, cols: usize) -> String {
    let f = d.field(t);
    let mut st = OnlineStats::new();
    st.extend(f);
    let (lo, hi) = (st.min(), st.max());
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for r in 0..rows {
        let i = r * (d.ntheta - 1) / (rows - 1);
        for c in 0..cols {
            let j = c * d.nphi / cols;
            let v = f[i * d.nphi + j];
            let k = (((v - lo) / (hi - lo).max(1e-9)) * (ramp.len() - 1) as f64) as usize;
            out.push(ramp[k.min(ramp.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

fn field_stats(d: &Dataset, t: usize) -> (f64, f64, f64, f64) {
    let mut st = OnlineStats::new();
    st.extend(d.field(t));
    (st.mean(), st.std_dev(), st.min(), st.max())
}

fn main() {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let simulation = generator.generate_member(0, 2 * 365);
    let emulator =
        ClimateEmulator::train(&simulation, EmulatorConfig::small(8)).expect("training succeeds");
    let emulation = emulator.emulate(2 * 365, 7).expect("emulation succeeds");

    // "Jan 1" (t = 0) and "Jun 1" (t = 151), as in the paper's Figure 2.
    for (label, t) in [("Jan 01", 0usize), ("Jun 01", 151)] {
        println!("=== {label} ===");
        for (name, d) in [("simulation", &simulation), ("emulation ", &emulation)] {
            let (mean, std, min, max) = field_stats(d, t);
            println!("{name}: mean {mean:7.2} K  std {std:6.2} K  range [{min:6.1}, {max:6.1}] K");
        }
        println!("simulation map:");
        print!("{}", ascii_map(&simulation, t, 12, 48));
        println!("emulation map:");
        print!("{}", ascii_map(&emulation, t, 12, 48));
        // The seasonal contrast must agree between the two.
        let (sim_mean, ..) = field_stats(&simulation, t);
        let (emu_mean, ..) = field_stats(&emulation, t);
        assert!(
            (sim_mean - emu_mean).abs() < 3.0,
            "global means must agree within weather noise"
        );
    }

    // Seasonal swing (Jan vs Jun) should match in magnitude and sign at a
    // northern-hemisphere point.
    let p = simulation.nphi * 2 + simulation.nphi / 3;
    let sim_swing = simulation.field(151)[p] - simulation.field(0)[p];
    let emu_swing = emulation.field(151)[p] - emulation.field(0)[p];
    println!(
        "northern point seasonal swing: simulation {sim_swing:+.1} K, emulation {emu_swing:+.1} K"
    );
    assert_eq!(
        sim_swing.signum(),
        emu_swing.signum(),
        "seasonal phase must match"
    );
}
