//! A non-Gaussian variable through the pipeline: wind-speed-like fields via
//! the Tukey g-and-h marginal transform (paper ref. \[21\], and the §VI
//! "multi-variate emulators" direction).
//!
//! Wind speed is right-skewed and heavy-tailed; the g-and-h warp maps a
//! Gaussian core to that marginal. Strategy: de-warp the data to a Gaussian
//! core, run the standard exaclim pipeline, then re-warp emulated fields.
//!
//! ```text
//! cargo run --release --example wind_emulator
//! ```

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::generator::Dataset;
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_mathkit::stats::quantile;
use exaclim_stats::tukey::{fit_tukey_gh, TukeyGH};

/// Build synthetic "wind" data: warp the standardized stochastic part of a
/// temperature-like simulation through a skewed, heavy-tailed g-and-h.
fn make_wind(base: &Dataset, warp: &TukeyGH) -> Dataset {
    let mut wind = base.clone();
    // Standardize per-location, warp, and shift to wind-like magnitudes.
    let np = base.npoints;
    let mut mean = vec![0.0f64; np];
    let mut sd = vec![0.0f64; np];
    for t in 0..base.t_max {
        for p in 0..np {
            mean[p] += base.data[t * np + p];
        }
    }
    mean.iter_mut().for_each(|m| *m /= base.t_max as f64);
    for t in 0..base.t_max {
        for p in 0..np {
            let d = base.data[t * np + p] - mean[p];
            sd[p] += d * d;
        }
    }
    sd.iter_mut()
        .for_each(|s| *s = (*s / base.t_max as f64).sqrt().max(1e-9));
    for t in 0..base.t_max {
        for p in 0..np {
            let z = (base.data[t * np + p] - mean[p]) / sd[p];
            wind.data[t * np + p] = warp.forward(z);
        }
    }
    wind
}

fn main() {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let base = generator.generate_member(0, 3 * 365);
    // "True" wind marginal: skewed (g) and heavy-tailed (h), ~8 m/s mean.
    let truth = TukeyGH {
        xi: 8.0,
        omega: 3.0,
        g: 0.4,
        h: 0.08,
    };
    let wind = make_wind(&base, &truth);

    // 1. Fit the marginal on the pooled wind sample.
    let fitted = fit_tukey_gh(&wind.data);
    println!(
        "fitted g-and-h: xi={:.2} (true 8.0), omega={:.2} (3.0), g={:.2} (0.40), h={:.3} (0.08)",
        fitted.xi, fitted.omega, fitted.g, fitted.h
    );

    // 2. De-warp to a Gaussian core and train the standard emulator.
    let mut core = wind.clone();
    for v in core.data.iter_mut() {
        *v = fitted.inverse(*v);
    }
    let emulator = ClimateEmulator::train(&core, EmulatorConfig::small(8))
        .expect("training on the Gaussian core succeeds");

    // 3. Emulate the core and re-warp to wind space.
    let mut emulated = emulator.emulate(3 * 365, 77).expect("emulation succeeds");
    for v in emulated.data.iter_mut() {
        *v = fitted.forward(*v);
    }

    // 4. Compare wind-space quantiles — skewness and tails must survive.
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "source", "q05", "q50", "q95", "q99", "mean"
    );
    for (name, d) in [("simulation", &wind), ("emulation", &emulated)] {
        let mean = d.data.iter().sum::<f64>() / d.data.len() as f64;
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            quantile(&d.data, 0.05),
            quantile(&d.data, 0.50),
            quantile(&d.data, 0.95),
            quantile(&d.data, 0.99),
            mean
        );
    }
    let q99_sim = quantile(&wind.data, 0.99);
    let q99_emu = quantile(&emulated.data, 0.99);
    let q50_sim = quantile(&wind.data, 0.50);
    assert!(
        (q99_emu - q99_sim).abs() / q99_sim < 0.2,
        "heavy tail must be reproduced: {q99_emu} vs {q99_sim}"
    );
    // Right skew: mean > median in both.
    let mean_sim = wind.data.iter().sum::<f64>() / wind.data.len() as f64;
    assert!(mean_sim > q50_sim, "simulated wind is right-skewed");
    let mean_emu = emulated.data.iter().sum::<f64>() / emulated.data.len() as f64;
    let q50_emu = quantile(&emulated.data, 0.50);
    assert!(mean_emu > q50_emu, "emulated wind keeps the right skew");
    println!("\nnon-Gaussian marginal reproduced (skew + heavy tail) — the [21]-style wind pathway works.");
}
