//! End-to-end archive exercise: generate → write ECA1 → read a slice →
//! detect corruption → train → snapshot → reload → identical emulation.
//!
//! ```text
//! cargo run --release --example archive_roundtrip
//! ```

use exaclim::{ClimateEmulator, EmulatorConfig, TrainedEmulator};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_store::{ArchiveError, ArchiveReader, ArchiveWriter, Codec, FieldMeta};

fn main() {
    let dir = std::env::temp_dir();
    let archive_path = dir.join("exaclim_example_fields.eca1");
    let snapshot_path = dir.join("exaclim_example_model.eca1");

    // 1. Generate a small synthetic ERA5-like ensemble member.
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let days = 2 * 365;
    let member = generator.generate_member(0, days);
    println!(
        "generated member: {} steps on a {}×{} grid ({} f64 values)",
        member.t_max,
        member.ntheta,
        member.nphi,
        member.data.len()
    );

    // 2. Stream it into an ECA1 archive with the f32 codec, 32-step chunks.
    let meta = FieldMeta {
        ntheta: member.ntheta,
        nphi: member.nphi,
        start_year: member.start_year,
        tau: member.tau,
    };
    let mut writer = ArchiveWriter::create(&archive_path).expect("create archive");
    writer
        .begin_field("t2m/member0", Codec::F32, meta, member.npoints, 32)
        .expect("begin member");
    for slice in member.data.chunks(member.npoints) {
        writer.append_slices(slice).expect("append slice");
    }
    writer.finish_field().expect("close member");
    let (_, total) = writer.finish().expect("finish archive");
    let raw64 = member.data.len() * 8;
    println!(
        "archive: {total} bytes on disk vs {raw64} raw ({:.2}× smaller)",
        raw64 as f64 / total as f64
    );

    // 3. Read back: full payload must be bit-exact at f32 precision, and a
    //    mid-archive slice must not require reading other chunks.
    let mut reader = ArchiveReader::open(&archive_path).expect("open archive");
    let all = reader.read_field_all("t2m/member0").expect("read all");
    let exact = member
        .data
        .iter()
        .zip(&all)
        .all(|(a, b)| ((*a as f32) as f64).to_bits() == b.to_bits());
    assert!(
        exact,
        "f32 codec must round-trip bit-exactly at f32 precision"
    );
    println!("full read: bit-exact at f32 precision ✓");
    let window = reader
        .read_field_slices("t2m/member0", 100..140)
        .expect("read slice");
    assert_eq!(window.len(), 40 * member.npoints);
    assert_eq!(window[..], all[100 * member.npoints..140 * member.npoints]);
    println!("sliced read (steps 100..140): matches full read ✓");

    // 4. Corrupt one payload byte; the checksum must catch it and name the
    //    damaged chunk, while other chunks stay readable.
    let mut bytes = std::fs::read(&archive_path).expect("reread archive");
    let chunk1 = reader.member("t2m/member0").unwrap().chunks[1];
    bytes[chunk1.offset as usize + 7] ^= 0x01;
    let corrupted_path = dir.join("exaclim_example_fields_corrupt.eca1");
    std::fs::write(&corrupted_path, &bytes).expect("write corrupted copy");
    let mut corrupted = ArchiveReader::open(&corrupted_path).expect("directory still intact");
    match corrupted.read_field_all("t2m/member0") {
        Err(ArchiveError::ChecksumMismatch { member, chunk }) => {
            println!("corruption detected: member `{member}`, chunk {chunk} ✓");
            assert_eq!(chunk, 1);
        }
        other => panic!("corruption must surface as a checksum mismatch, got {other:?}"),
    }
    let first_chunk = corrupted
        .read_field_slices("t2m/member0", 0..chunk1.t0)
        .expect("untouched chunks stay readable");
    assert!(!first_chunk.is_empty());

    // 5. Train an emulator on the data read *from the archive* and
    //    snapshot it.
    let mut training = member.clone();
    training.data = all;
    let emulator =
        ClimateEmulator::train(&training, EmulatorConfig::small(8)).expect("training succeeds");
    let snapshot_bytes = emulator.save(&snapshot_path).expect("snapshot");
    println!("trained emulator snapshot: {snapshot_bytes} bytes");

    // 6. Reload and verify bit-identical emulation under the same seed.
    let reloaded = TrainedEmulator::load(&snapshot_path).expect("reload");
    let a = emulator.emulate(120, 42).expect("emulate");
    let b = reloaded.emulate(120, 42).expect("emulate reloaded");
    assert_eq!(
        a.data, b.data,
        "reloaded emulator must emulate bit-identically"
    );
    println!("reloaded emulator reproduces seed-42 emulation bit-identically ✓");

    for p in [&archive_path, &corrupted_path, &snapshot_path] {
        std::fs::remove_file(p).ok();
    }
    println!("archive roundtrip complete");
}
