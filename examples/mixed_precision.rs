//! Mixed-precision tile Cholesky on real CPU kernels: the four variants of
//! §IV.B, their accuracy, memory footprint, and task-parallel speed on the
//! in-house PaRSEC-style runtime.
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```

use exaclim_linalg::cholesky::factorization_residual;
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{exp_covariance, TiledMatrix};
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};

fn main() {
    let n = 768;
    let b = 64;
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let a = exp_covariance(n, 24.0, 1e-3);
    println!(
        "matrix: exponential covariance, n = {n}, tile = {b} ({} tiles), {workers} workers",
        (n / b) * (n / b + 1) / 2
    );
    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>10} {:>12}",
        "variant", "bytes", "residual", "seconds", "GFlop/s", "census H/S/D"
    );

    let nt = n / b;
    let policies = [
        PrecisionPolicy::dp(),
        PrecisionPolicy::dp_sp(),
        PrecisionPolicy::dp_sp_hp(nt),
        PrecisionPolicy::dp_hp(),
    ];
    let mut dp_seconds = None;
    for policy in policies {
        let mut tm = TiledMatrix::from_dense(&a, n, b, &policy);
        let bytes = tm.payload_bytes();
        let census = tm.precision_census();
        let (stats, trace) = parallel_tile_cholesky(&mut tm, workers, SchedulerKind::PriorityHeap)
            .expect("SPD covariance");
        let res = factorization_residual(&a, &tm);
        println!(
            "{:<10} {:>10} {:>14.3e} {:>12.4} {:>10.2} {:>4}/{}/{}",
            policy.label(),
            bytes,
            res,
            stats.seconds,
            stats.gflops(),
            census[0],
            census[1],
            census[2],
        );
        if policy == PrecisionPolicy::dp() {
            dp_seconds = Some(stats.seconds);
        }
        // Sanity: utilization should be non-trivial under the task runtime.
        assert!(trace.utilization() > 0.05, "runtime utilization too low");
        // Accuracy envelope: HP-heavy variants still factor a
        // well-conditioned covariance to percent-level residual.
        assert!(res < 0.05, "{}: residual {res}", policy.label());
    }
    println!(
        "(DP reference time: {:.4}s — on CPUs all precisions run at similar\n\
         rates; the *memory* shrinks by 4×, and the GPU-rate speedups are\n\
         modeled by exaclim-cluster, see `cargo run -p exaclim-bench --bin fig6`)",
        dp_seconds.unwrap()
    );
}
