//! Mixed-workload serving demo: N clients firing slice / emulate /
//! metadata requests at one [`exaclim_serve::Server`], with throughput,
//! latency, cache, and coalescing statistics.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The demo builds a two-archive catalog (an ensemble of field members
//! plus an embedded trained-emulator snapshot), then runs a fixed number
//! of rounds; each round every client contributes one request to a batch
//! and the batch is served concurrently on the worker pool. Set
//! `EXACLIM_THREADS` to bound serve concurrency.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::{Catalog, CatalogQuery, Request, Response, ServeConfig, Server, SliceRequest};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::time::Instant;

const CLIENTS: usize = 16;
const ROUNDS: usize = 200;
const SLICE_STEPS: u64 = 48;

fn main() {
    // --- Catalog: two archives + one emulator ----------------------------
    let lmax = 12;
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(lmax));
    let days = 2 * 365;
    let training = generator.generate_member(0, days);
    let meta = FieldMeta {
        ntheta: training.ntheta,
        nphi: training.nphi,
        start_year: training.start_year,
        tau: training.tau,
    };

    println!("training a small emulator (L = {lmax}, {days} daily steps)…");
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8)).expect("train");
    let snapshot = emulator.to_snapshot();

    // Archive 1: a 3-member ensemble at f32+shuffle, with the trained
    // emulator embedded as a snapshot member.
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).expect("writer");
    for member in 0..3u64 {
        let ds = generator.generate_member(member, days);
        w.add_field(
            &format!("t2m/member{member}"),
            Codec::F32Shuffle,
            meta,
            ds.npoints,
            32,
            &ds.data,
        )
        .expect("add member");
    }
    w.add_snapshot(
        &snapshot.name,
        snapshot.version,
        exaclim_store::ByteCodec::Rle,
        &snapshot.payload,
        1 << 20,
    )
    .expect("embed snapshot");
    let (cursor, ensemble_bytes) = w.finish().expect("finish");
    let ensemble = cursor.into_inner();

    // Archive 2: one emulated realization archived at f16+shuffle.
    let emulated = emulator.emulate(365, 7).expect("emulate");
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).expect("writer");
    w.add_field(
        "t2m/emulated0",
        Codec::F16Shuffle,
        meta,
        emulated.npoints,
        32,
        &emulated.data,
    )
    .expect("add emulated");
    let (cursor, emulated_bytes) = w.finish().expect("finish");

    let mut catalog = Catalog::new();
    catalog
        .open_archive_bytes("ensemble", ensemble)
        .expect("open ensemble");
    catalog
        .open_archive_bytes("emulated", cursor.into_inner())
        .expect("open emulated");
    catalog
        .load_emulator_from_archive("era5-emulator", "ensemble", &snapshot.name)
        .expect("load embedded emulator");
    let fields = catalog.field_members();
    println!(
        "catalog: ensemble ({ensemble_bytes} B) + emulated ({emulated_bytes} B), \
         {} field members, 1 emulator",
        fields.len()
    );

    let server = Server::new(
        catalog,
        ServeConfig {
            cache_bytes: 32 << 20,
            cache_shards: 16,
            ..ServeConfig::default()
        },
    );

    // --- Workload: CLIENTS × ROUNDS mixed requests -----------------------
    // Per round, each client contributes one request: ~70% slice reads
    // (skewed toward the first member, so batches overlap and the cache
    // has a working set), ~10% emulation runs, ~20% catalog queries.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut latencies_us: Vec<Vec<u64>> = vec![Vec::new(); 3]; // slice/emulate/catalog
    let t_start = Instant::now();
    for round in 0..ROUNDS {
        let batch: Vec<Request> = (0..CLIENTS)
            .map(|_| {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.70 {
                    let (archive, member) = if rng.gen_bool(0.6) {
                        fields[0].clone()
                    } else {
                        fields[rng.gen_range(0..fields.len())].clone()
                    };
                    let horizon = if archive == "emulated" {
                        365
                    } else {
                        days as u64
                    };
                    let t0 = rng.gen_range(0..horizon - SLICE_STEPS);
                    Request::Slice(SliceRequest {
                        archive,
                        member,
                        range: t0..t0 + SLICE_STEPS,
                    })
                } else if roll < 0.80 {
                    Request::Emulate {
                        emulator: "era5-emulator".to_string(),
                        t_max: 30,
                        seed: rng.gen_range(0..1_000_000),
                    }
                } else {
                    match rng.gen_range(0..3) {
                        0 => Request::Catalog(CatalogQuery::ListArchives),
                        1 => Request::Catalog(CatalogQuery::ListMembers {
                            archive: "ensemble".to_string(),
                        }),
                        _ => Request::Catalog(CatalogQuery::ListEmulators),
                    }
                }
            })
            .collect();
        let t_batch = Instant::now();
        let responses = server.handle_batch(&batch);
        let batch_us = t_batch.elapsed().as_micros() as u64;
        for response in &responses {
            match response {
                Ok(Response::Slice(_)) => latencies_us[0].push(batch_us),
                Ok(Response::Emulate(_)) => latencies_us[1].push(batch_us),
                Ok(Response::Catalog(_)) | Ok(Response::Stats(_)) => latencies_us[2].push(batch_us),
                Ok(Response::Product(_)) => unreachable!("demo sends no product requests"),
                Err(e) => panic!("request failed in round {round}: {e}"),
            }
        }
    }
    let elapsed = t_start.elapsed();

    // --- Report ----------------------------------------------------------
    let stats = server.stats();
    let cache = server.cache_stats();
    let total = stats.slices + stats.emulations + stats.catalog_queries;
    println!(
        "\nserved {total} requests in {:.2}s over {} batches of {CLIENTS} \
         ({:.0} req/s end to end)",
        elapsed.as_secs_f64(),
        stats.batches,
        total as f64 / elapsed.as_secs_f64(),
    );
    let kind = ["slice", "emulate", "catalog"];
    for (k, lat) in kind.iter().zip(&mut latencies_us) {
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
        println!(
            "  {k:<8} {:>6} requests, batch latency mean {:>7.0} µs, p50 {:>6} µs, p99 {:>6} µs",
            lat.len(),
            mean,
            lat[lat.len() / 2],
            lat[lat.len() * 99 / 100],
        );
    }
    println!(
        "  cache    {:.1}% hit rate ({} hits / {} misses), {} evictions, {} chunks / {} KiB resident",
        100.0 * cache.hit_rate(),
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.resident_chunks,
        cache.resident_bytes / 1024,
    );
    println!(
        "  batcher  {} chunk touches coalesced into {} fetches ({:.2}× deduplication)",
        stats.chunk_touches,
        stats.chunk_fetches,
        stats.chunk_touches as f64 / stats.chunk_fetches.max(1) as f64,
    );
    println!(
        "  server   busy {:.2}s across batches ({:.0}% of wall clock)",
        stats.busy_nanos as f64 / 1e9,
        100.0 * stats.busy_nanos as f64 / 1e9 / elapsed.as_secs_f64(),
    );
}
