//! Exascale scaling study on the cluster performance model: the largest
//! runs of Figure 8 plus weak/strong scaling on Summit (Figure 7), executed
//! on the simulated machines (DESIGN.md §2 substitution).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::scaling::{strong_scaling, weak_scaling};
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};

fn main() {
    println!("== Largest-scale DP/HP runs (Figure 8 scenario) ==");
    println!(
        "{:<10} {:>7} {:>8} {:>10} {:>12}",
        "machine", "nodes", "GPUs", "matrix", "PFlop/s"
    );
    let runs = [
        (Machine::Frontier, 9_025usize, 27_240_000usize),
        (Machine::Alps, 1_936, 15_730_000),
        (Machine::Summit, 3_072, 12_580_000),
        (Machine::Leonardo, 1_024, 8_390_000),
    ];
    let mut best = 0.0f64;
    for (m, nodes, n) in runs {
        let spec = MachineSpec::of(m);
        let r = simulate_cholesky(&spec, &SimConfig::new(n, nodes, Variant::DpHp));
        println!(
            "{:<10} {:>7} {:>8} {:>9.2}M {:>12.1}",
            spec.name,
            nodes,
            nodes * spec.gpus_per_node,
            n as f64 / 1e6,
            r.pflops
        );
        best = best.max(r.pflops);
    }
    println!(
        "peak modeled rate: {:.3} EFlop/s (paper: 0.976 EFlop/s on Frontier)",
        best / 1e3
    );
    assert!(
        best > 400.0,
        "the Frontier run must be sub-exascale-class at least"
    );

    println!();
    println!("== Summit weak scaling, DP/HP (Figure 7 left) ==");
    let spec = MachineSpec::of(Machine::Summit);
    for p in weak_scaling(
        &spec,
        Variant::DpHp,
        &[384, 1536, 3072, 6144, 12288],
        1_500_000,
    ) {
        println!(
            "  {:>6} GPUs  n = {:>9.2}M  {:>7.2} TF/GPU  efficiency {:>5.0}%",
            p.gpus,
            p.n as f64 / 1e6,
            p.tflops_per_gpu,
            p.efficiency_pct
        );
    }

    println!();
    println!("== Summit strong scaling (Figure 7 right) ==");
    for v in Variant::all() {
        let pts = strong_scaling(&spec, v, &[3072, 6144, 12288], 12_580_000);
        let effs: Vec<String> = pts
            .iter()
            .map(|p| format!("{:.0}%", p.efficiency_pct))
            .collect();
        println!("  {:<9} {}", v.label(), effs.join(" → "));
    }
}
