//! The "saving petabytes" arithmetic of the paper's title, §I, and §VI:
//! archive volumes, emulator parameter volumes, and dollar costs at the
//! NCAR $45/TB/yr rate.
//!
//! ```text
//! cargo run --release --example storage_savings
//! ```

use exaclim_climate::storage::{
    paper_headline_model, StorageModel, CMIP3_BYTES, CMIP5_BYTES, CMIP6_BYTES, DOLLARS_PER_TB_YEAR,
    PB, SCREAM_BYTES_PER_DAY, TB,
};

fn fmt_bytes(b: f64) -> String {
    if b >= PB {
        format!("{:.2} PB", b / PB)
    } else if b >= TB {
        format!("{:.2} TB", b / TB)
    } else {
        format!("{:.2} GB", b / 1e9)
    }
}

fn main() {
    println!("== Reference archive volumes (paper §I) ==");
    println!("CMIP3 ................ {}", fmt_bytes(CMIP3_BYTES));
    println!("CMIP5 ................ {}", fmt_bytes(CMIP5_BYTES));
    println!("CMIP6 ................ {}", fmt_bytes(CMIP6_BYTES));
    println!(
        "CMIP6 carrying cost .. ${:.1}M per year",
        CMIP6_BYTES / TB * DOLLARS_PER_TB_YEAR / 1e6
    );
    println!(
        "SCREAM @ DYAMOND ..... {} per simulated day",
        fmt_bytes(SCREAM_BYTES_PER_DAY)
    );
    println!();

    println!("== Emulator-vs-archive ledger ==");
    println!(
        "{:<44} {:>12} {:>12} {:>8} {:>14}",
        "configuration", "archive", "emulator", "ratio", "saved $/yr"
    );
    let configs: Vec<(&str, StorageModel)> = vec![
        (
            "ERA5 0.25°, daily, 83 yr, R=10, L=720",
            StorageModel {
                ensemble_size: 10,
                t_max: 30_295,
                npoints: 721 * 1440,
                lmax: 720,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        (
            "ERA5 0.25°, hourly, 35 yr, R=10, L=720",
            StorageModel {
                ensemble_size: 10,
                t_max: 306_600,
                npoints: 721 * 1440,
                lmax: 720,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        (
            "0.034° hourly, 1 yr, R=1 (headline grid)",
            paper_headline_model(1, 1),
        ),
        ("0.034° hourly, 83 yr, R=100", paper_headline_model(100, 83)),
    ];
    for (name, m) in &configs {
        println!(
            "{:<44} {:>12} {:>12} {:>7.1}× {:>13.0}",
            name,
            fmt_bytes(m.ensemble_bytes()),
            fmt_bytes(m.emulator_bytes()),
            m.savings_ratio(),
            m.dollars_saved_per_year()
        );
    }
    println!();

    let headline = paper_headline_model(100, 83);
    println!(
        "Replacing a 100-member, 83-year hourly archive at 3.5 km with the\n\
         emulator saves {} — petabytes, as the title promises.",
        fmt_bytes(headline.bytes_saved())
    );
    assert!(headline.bytes_saved() > 10.0 * PB);
}
