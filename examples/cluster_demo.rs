//! Sharded-cluster demo: a consistent-hash [`exaclim_serve::Router`]
//! fronting four backend shards, with cost-model-driven placement, a
//! mixed workload verified bit-identical against a single in-process
//! server, and a live shard kill to show replica failover.
//!
//! ```text
//! cargo run --release --example cluster_demo
//! ```
//!
//! Flow: four `NetServer` shards open the same catalog on loopback; the
//! router's layout (virtual nodes, replication) is chosen by
//! [`exaclim_serve::plan_layout`] — the expected keys are scored against
//! a Frontier-node machine model via
//! [`exaclim_cluster::simulate_placement`] before the ring is adopted.
//! Then one shard dies mid-run and the workload keeps verifying: its
//! keys fail over to their replicas, bit-identically.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_cluster::{Machine, MachineSpec};
use exaclim_serve::{
    Catalog, CatalogQuery, KeyWeight, NetConfig, NetServer, Request, Router, RouterConfig,
    ServeConfig, Server, ShardSpec, SliceRequest,
};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 4;
const ROUNDS: usize = 40;
const VPS: usize = 10;
const T_MAX: u64 = 96;
const CHUNK_T: usize = 12;

fn archive_bytes() -> Vec<u8> {
    let meta = FieldMeta {
        ntheta: 2,
        nphi: 5,
        start_year: 2000,
        tau: 365,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).expect("writer");
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, meta, VPS, CHUNK_T, &data)
            .expect("field");
    }
    w.finish().expect("finish").0.into_inner()
}

fn catalog(emulator: &exaclim::TrainedEmulator) -> Catalog {
    let mut c = Catalog::new();
    c.open_archive_bytes("a", archive_bytes()).expect("archive");
    c.register_emulator("em", emulator.clone())
        .expect("emulator");
    c
}

fn workload(seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::new();
    for _ in 0..8 {
        let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
        let t0 = rng.gen_range(0..T_MAX - 8);
        let t1 = rng.gen_range(t0 + 1..=T_MAX);
        batch.push(Request::Slice(SliceRequest {
            archive: "a".to_string(),
            member: member.to_string(),
            range: t0..t1,
        }));
    }
    batch.push(Request::Emulate {
        emulator: "em".to_string(),
        t_max: 10,
        seed,
    });
    batch.push(Request::Catalog(CatalogQuery::ListMembers {
        archive: "a".to_string(),
    }));
    batch
}

fn main() {
    println!("training a small emulator…");
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8)).expect("train");

    // --- Shards: four NetServers over the same catalog -------------------
    let reference = Server::new(catalog(&emulator), ServeConfig::default());
    let handles: Vec<_> = (0..SHARDS)
        .map(|_| {
            let server = Arc::new(Server::new(catalog(&emulator), ServeConfig::default()));
            NetServer::bind("127.0.0.1:0", server, NetConfig::default())
                .expect("bind")
                .spawn()
        })
        .collect();
    let specs: Vec<ShardSpec> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::numbered(i, h.addr()))
        .collect();
    for s in &specs {
        println!("shard {} at {}", s.label, s.addr);
    }

    // --- Placement: score layouts in the model before adopting one -------
    let mut keys: Vec<KeyWeight> = (0..256)
        .map(|i| KeyWeight::unit("a", format!("member-{i}")))
        .collect();
    keys.push(KeyWeight::emulator("em", 64, 128));
    let machine = MachineSpec::of(Machine::Frontier);
    let (router, report) =
        Router::connect_placed(specs, &keys, &machine, RouterConfig::default()).expect("router");
    println!(
        "placement: {} shards, skew {:.3}, fan-out {:.2}, predicted {:.2}× single-shard \
         ({:.0}% efficiency){}",
        report.shards,
        report.skew,
        report.fanout,
        report.speedup_vs_single,
        100.0 * report.efficiency,
        if report.balanced {
            ""
        } else {
            "  [NOT balanced]"
        },
    );

    // --- Mixed workload, verified against the single server --------------
    let started = Instant::now();
    let mut requests = 0usize;
    for round in 0..ROUNDS {
        let batch = workload(round as u64);
        requests += batch.len();
        assert_eq!(
            router.handle_batch(&batch),
            reference.handle_batch(&batch),
            "round {round} diverged from the single server"
        );
    }
    println!(
        "verified {requests} requests bit-identical across {SHARDS} shards in {:?}",
        started.elapsed()
    );

    // --- Kill a shard: keys fail over to replicas, still bit-identical ---
    let mut handles = handles;
    let victim = handles.remove(1);
    println!("killing shard-1 at {}…", victim.addr());
    victim.shutdown();
    for round in 0..ROUNDS {
        let batch = workload(1_000 + round as u64);
        assert_eq!(
            router.handle_batch(&batch),
            reference.handle_batch(&batch),
            "round {round} diverged after the kill"
        );
    }
    let stats = router.router_stats();
    println!(
        "survived the kill: routed {} requests, {} fan-out batches, {} failovers",
        stats.routed, stats.fanout_batches, stats.failovers
    );
    for h in router.shard_health() {
        println!(
            "  {} {} — {}",
            h.label,
            h.addr,
            if h.alive { "alive" } else { "down" }
        );
    }
    for h in handles {
        h.shutdown();
    }
}
