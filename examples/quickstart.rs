//! Quickstart: train a climate emulator on a synthetic ERA5-like dataset,
//! generate an emulation, and verify statistical consistency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exaclim::{validate_consistency, ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};

fn main() {
    // 1. A synthetic "simulation archive": 3 years of daily surface
    //    temperature on a small equiangular grid (the stand-in for ERA5 —
    //    see DESIGN.md §2 for the substitution rationale).
    let lmax_data = 12;
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(lmax_data));
    let training = generator.generate_member(0, 3 * 365);
    println!(
        "training data: {} days × {} grid points ({}×{} grid)",
        training.t_max, training.npoints, training.ntheta, training.nphi
    );

    // 2. Train the emulator (trend fit → SHT → VAR(P) → covariance →
    //    mixed-precision Cholesky), all per the paper's Figure 3 pipeline.
    let config = EmulatorConfig::small(8);
    let t0 = std::time::Instant::now();
    let emulator = ClimateEmulator::train(&training, config).expect("training succeeds");
    println!(
        "trained in {:.2}s: L={} (L² = {} coefficient channels), VAR({}), jitter {:.2e}",
        t0.elapsed().as_secs_f64(),
        emulator.config.lmax,
        emulator.var.dim(),
        emulator.config.var_order,
        emulator.jitter
    );

    // 3. Emulate a new 3-year realization in a fraction of the cost of
    //    re-running the "simulation".
    let t0 = std::time::Instant::now();
    let emulation = emulator.emulate(3 * 365, 2024).expect("emulation succeeds");
    println!(
        "emulated {} days in {:.2}s",
        emulation.t_max,
        t0.elapsed().as_secs_f64()
    );

    // 4. Statistical consistency (the Figure 2 claim).
    let report = validate_consistency(&training, &emulation);
    println!("consistency report:");
    println!(
        "  mean nRMSE             {:.4}  (< 0.15)",
        report.mean_nrmse
    );
    println!(
        "  std ratio (median)     {:.4}  (≈ 1)",
        report.std_ratio_median
    );
    println!(
        "  mean-field correlation {:.4}  (> 0.98)",
        report.mean_field_correlation
    );
    println!(
        "  std-field correlation  {:.4}  (> 0.6)",
        report.std_field_correlation
    );
    println!(
        "  |Δ acf(1)|             {:.4}  (< 0.25)",
        report.acf1_abs_diff
    );
    println!("  PASSES: {}", report.passes());

    // 5. Storage ledger: what replacing a 10-member archive saves.
    let model = emulator.storage_model(10, training.t_max as u64);
    println!(
        "storage: archive {:.1} MB vs emulator {:.1} MB → ratio {:.1}×",
        model.ensemble_bytes() / 1e6,
        emulator.parameter_bytes() as f64 / 1e6,
        model.ensemble_bytes() / emulator.parameter_bytes() as f64
    );
    assert!(report.passes(), "quickstart must demonstrate consistency");
}
