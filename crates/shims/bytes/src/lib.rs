//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable view into shared immutable storage;
//! [`BytesMut`] is a growable buffer that freezes into [`Bytes`]. The
//! [`Buf`]/[`BufMut`] traits carry the little-endian cursor accessors the
//! exaclim containers are written with. Only the surface the workspace
//! uses is provided; reads past the end panic like the real crate.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte storage with O(1) clone and slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte string without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into immutable shared storage.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Cursor-style reads consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Drop `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// Read `N` bytes into an array, advancing. Panics when short.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Appending writes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_i64_le(-42);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 6, "parent unchanged");
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_is_indexable() {
        let mut b = BytesMut::from(&b"hello"[..]);
        b[0] = b'H';
        assert_eq!(&b.freeze()[..], b"Hello");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
