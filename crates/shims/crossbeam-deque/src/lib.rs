//! Offline shim for `crossbeam-deque`.
//!
//! Provides the Chase–Lev work-stealing *interface* — [`Worker`],
//! [`Stealer`], [`Injector`], [`Steal`] — with mutex-protected `VecDeque`
//! storage instead of a lock-free deque. Semantics match what the executor
//! relies on: LIFO worker pops, FIFO steals from the opposite end, and a
//! global FIFO injector whose `steal_batch_and_pop` migrates a batch into
//! the caller's local queue.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// True iff the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// True iff the source was empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True iff a task was obtained.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// If this attempt failed, try `f`; `Retry` from either side wins over
    /// `Empty` so the caller knows to spin again.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Success(t) => Steal::Success(t),
            Steal::Empty => f(),
            Steal::Retry => match f() {
                Steal::Success(t) => Steal::Success(t),
                _ => Steal::Retry,
            },
        }
    }
}

impl<T> FromIterator<Steal<T>> for Steal<T> {
    /// First `Success` wins; any `Retry` seen without a success yields
    /// `Retry`; otherwise `Empty` (the crossbeam contract).
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(t) => return Steal::Success(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

type Shared<T> = Arc<Mutex<VecDeque<T>>>;

fn locked<T>(q: &Shared<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    match q.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The owner side of a worker queue.
pub struct Worker<T> {
    queue: Shared<T>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// A LIFO worker queue (pops the most recently pushed task).
    pub fn new_lifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    /// A FIFO worker queue.
    pub fn new_fifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    /// Push a task onto the owner end.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Pop from the owner end (back for LIFO, front for FIFO).
    pub fn pop(&self) -> Option<T> {
        let mut q = locked(&self.queue);
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    /// True iff no tasks are queued.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// A handle other threads can steal from.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// The thief side of a worker queue; steals from the front (opposite the
/// LIFO owner end), preserving the locality heuristic of Chase–Lev.
pub struct Stealer<T> {
    queue: Shared<T>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// A global FIFO queue every worker can push to and steal from.
#[derive(Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue a task at the back.
    pub fn push(&self, task: T) {
        match self.queue.lock() {
            Ok(mut g) => g.push_back(task),
            Err(poisoned) => poisoned.into_inner().push_back(task),
        }
    }

    /// Steal up to half the queue (at least one task) into `dest`, and pop
    /// one task for the caller.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let batch = (q.len() / 2).min(32);
        if batch > 0 {
            let mut dst = locked(&dest.queue);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dst.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// True iff no tasks are queued.
    pub fn is_empty(&self) -> bool {
        match self.queue.lock() {
            Ok(g) => g.is_empty(),
            Err(poisoned) => poisoned.into_inner().is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        assert_eq!(s.steal(), Steal::Success(1), "thief steals oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_pop_moves_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "a batch migrated to the local queue");
        let mut got = Vec::new();
        while let Some(t) = w.pop() {
            got.push(t);
        }
        while let Steal::Success(t) = inj.steal_batch_and_pop(&w) {
            got.push(t);
            while let Some(t) = w.pop() {
                got.push(t);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (1..10).collect::<Vec<_>>());
    }

    #[test]
    fn collect_steal_prefers_success_then_retry() {
        let all: Steal<i32> = [Steal::Empty, Steal::Retry, Steal::Success(5)]
            .into_iter()
            .collect();
        assert_eq!(all, Steal::Success(5));
        let retry: Steal<i32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert_eq!(retry, Steal::Retry);
        let empty: Steal<i32> = [Steal::Empty, Steal::Empty].into_iter().collect();
        assert_eq!(empty, Steal::Empty);
    }

    #[test]
    fn concurrent_steals_deliver_every_task_once() {
        let inj = Injector::new();
        let n = 1000;
        for i in 0..n {
            inj.push(i);
        }
        let seen = Mutex::new(vec![0u8; n]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inj = &inj;
                let seen = &seen;
                scope.spawn(move || {
                    let w = Worker::new_lifo();
                    loop {
                        let task = w.pop().or_else(|| inj.steal_batch_and_pop(&w).success());
                        match task {
                            Some(t) => seen.lock().unwrap()[t] += 1,
                            None => break,
                        }
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }
}
