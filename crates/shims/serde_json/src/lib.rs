//! Offline shim for `serde_json`.
//!
//! Text front-end for the `serde` shim's [`serde::Value`] tree:
//! [`to_string`] renders it as compact JSON, [`from_str`] parses JSON back.
//! Numbers round-trip losslessly because the tree carries their decimal
//! text verbatim (`u64::MAX`, shortest-form `f64`, and non-finite floats
//! written by Rust's `{:?}` such as `NaN`/`inf` are all accepted).

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render any [`Serialize`] value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e: DeError| Error(e.to_string()))
}

// ---------------------------------------------------------------- writing

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') | Some(b'f') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                got => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}, found {:?}",
                        self.pos,
                        got.map(|g| g as char)
                    )));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                got => {
                    return Err(Error(format!(
                        "expected `,` or `]` at offset {}, found {:?}",
                        self.pos,
                        got.map(|g| g as char)
                    )));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".to_string()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        // Accept JSON numbers plus Rust's `{:?}` float spellings
        // (`NaN`, `inf`, `-inf`) that the writer may emit.
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit()
                || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                || matches!(b, b'N' | b'a' | b'n' | b'i' | b'f')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error(format!("expected value at offset {}", start)));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".to_string()))?;
        // Validate it parses as *some* number now, so garbage fails early.
        if text.parse::<f64>().is_err() && text.parse::<u64>().is_err() {
            return Err(Error(format!("invalid number `{text}`")));
        }
        Ok(Value::Num(text.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>("\"a\\nb\\\"c\\\\d\"").unwrap(),
            "a\nb\"c\\d"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.5f64, -0.25], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.5,-0.25],[]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
        let pairs = vec![(1.0f64, 2.0f64)];
        assert_eq!(
            from_str::<Vec<(f64, f64)>>(&to_string(&pairs).unwrap()).unwrap(),
            pairs
        );
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "θ → π/2, ∮ E·da, émile".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn whitespace_tolerated_and_garbage_rejected() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u32>>("[1, 2] x").is_err());
        assert!(from_str::<u32>("zzz").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
