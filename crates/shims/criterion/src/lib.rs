//! Offline shim for `criterion`.
//!
//! Keeps the bench sources compiling and producing useful numbers without
//! the real crate: `criterion_group!`/`criterion_main!`, benchmark groups,
//! [`BenchmarkId`], and `Bencher::iter`. Each benchmark runs a short
//! warmup followed by `sample_size` timed samples of an adaptively chosen
//! iteration batch, and prints min/median wall-clock time per iteration.
//! Set `EXACLIM_BENCH_FAST=1` to clamp samples for smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the throughput of one iteration (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Throughput declaration (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: target ~5 ms per sample so fast routines
        // are timed over many iterations and slow ones over one.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let fast = std::env::var_os("EXACLIM_BENCH_FAST").is_some();
    let sample_size = if fast { 2 } else { sample_size };
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<48} min {:>12} median {:>12}",
        fmt_dur(min),
        fmt_dur(median)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declare a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        std::env::set_var("EXACLIM_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * n
            });
        });
        group.finish();
        assert!(ran > 0, "routine executed");
    }
}
