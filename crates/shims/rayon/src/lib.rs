//! Offline shim for `rayon`.
//!
//! The entry points (`into_par_iter`, `par_iter`, `par_chunks`, …) return
//! plain sequential `std` iterators, so every downstream combinator
//! (`map`, `zip`, `enumerate`, `collect`, `for_each`) compiles and behaves
//! identically — minus the parallelism. Task parallelism in the workspace
//! comes from `exaclim-runtime`'s own executor; the rayon call sites are
//! data-parallel conveniences that degrade gracefully to sequential loops.
//! Replacing this shim with real chunk-level threading is a ROADMAP item.

/// Everything a `use rayon::prelude::*` site needs.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// `into_par_iter()` for any owned iterable (ranges, vectors, …).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Sequential stand-in for rayon's parallel iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `par_iter()` for collections iterable by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the iterator.
    type Item: 'a;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` for collections iterable by exclusive reference.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded by the iterator.
    type Item: 'a;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for rayon's `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Chunked traversal of mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for rayon's `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_iter_zip_and_enumerate() {
        let a = vec![1, 2, 3];
        let b = [10, 20, 30];
        let s: i32 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
        let idx: Vec<usize> = a.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let mut buf = vec![0.0f64; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as f64;
            }
        });
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }
}
