//! Offline shim for `rayon`, backed by `exaclim-runtime`'s worker pool.
//!
//! Unlike the original sequential shim, the entry points (`into_par_iter`,
//! `par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`) now return
//! genuinely parallel iterators: terminal operations (`for_each`,
//! `collect`, `sum`) split the index space into contiguous ranges and
//! distribute them over [`exaclim_runtime::pool::global`]. The combinator
//! surface this workspace uses (`map`, `zip`, `enumerate`) is preserved, so
//! downstream call sites compile unchanged.
//!
//! Ordering guarantees match rayon's: `collect` assembles results in input
//! order, so a pure `map` pipeline produces output bit-identical to the
//! sequential loop regardless of thread count. `sum` reduces per-range
//! partials in input order — deterministic for a fixed pool size, but (as
//! with real rayon) a float sum may differ from the strictly sequential
//! grouping.
//!
//! The pool is sized by `EXACLIM_THREADS` or `available_parallelism()`;
//! with one thread every operation degrades to the old inline sequential
//! loop.

use exaclim_runtime::pool;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Mutex;

/// Everything a `use rayon::prelude::*` site needs.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// A parallel iterator: a fixed-length indexed sequence whose items can be
/// produced from any thread, plus the combinators this workspace uses.
///
/// Implementations are driven by splitting `0..len()` into disjoint
/// contiguous ranges, one per pool lane.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced for each index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at index `i`.
    ///
    /// # Safety
    ///
    /// `i < self.len()`, and each index is passed at most once over the
    /// iterator's lifetime: mutable sources hand out `&mut` references on
    /// the strength of that exclusivity.
    unsafe fn item(&self, i: usize) -> Self::Item;

    /// Transform every item with `op`.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, op }
    }

    /// Pair items up with a second parallel iterator (length = the shorter).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attach each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consume every item in parallel.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let it = &self;
        pool::global().parallel_for(self.len(), |range| {
            for i in range {
                // SAFETY: the pool hands each index to exactly one range.
                op(unsafe { it.item(i) });
            }
        });
    }

    /// Collect into a container, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items. Per-range partial sums are reduced in input order.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive_ordered(&self, |it, range| {
            // SAFETY: the pool hands each index to exactly one range.
            range.map(|i| unsafe { it.item(i) }).sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

/// Run `f` over disjoint ranges covering `0..it.len()` on the global pool
/// and return each range's result, ordered by range start.
fn drive_ordered<P, R, F>(it: &P, f: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(&P, Range<usize>) -> R + Sync,
{
    let out = Mutex::new(Vec::new());
    pool::global().parallel_for(it.len(), |range| {
        let key = range.start;
        let val = f(it, range);
        out.lock().expect("range result mutex").push((key, val));
    });
    let mut v = out.into_inner().expect("range result mutex");
    v.sort_unstable_by_key(|&(k, _)| k);
    v.into_iter().map(|(_, x)| x).collect()
}

/// Conversion from a parallel iterator, rayon's `FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container, preserving the iterator's input order.
    fn from_par_iter<P>(p: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(p: P) -> Self
    where
        P: ParallelIterator<Item = T>,
    {
        let pieces = drive_ordered(&p, |it, range| {
            // SAFETY: the pool hands each index to exactly one range.
            range.map(|i| unsafe { it.item(i) }).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(p.len());
        for piece in pieces {
            out.extend(piece);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct IterRange {
    start: usize,
    len: usize,
}

impl ParallelIterator for IterRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn item(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Parallel iterator over `&[T]`, rayon's `par_iter`.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn item(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over `&mut [T]`, rayon's `par_iter_mut`.
pub struct IterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: hands out disjoint `&mut T` (one per index, per the `item`
// contract) into a slice that stays exclusively borrowed for `'a`.
unsafe impl<T: Send> Sync for IterMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn item(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` and each index is produced at most once, so the
        // references are non-aliasing.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Parallel iterator over immutable chunks, rayon's `par_chunks`.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync + 'a> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn item(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Parallel iterator over mutable chunks, rayon's `par_chunks_mut`.
///
/// This is the indexed-source twin of
/// `exaclim_runtime::pool::WorkerPool::parallel_chunks_mut`: both split a
/// slice into disjoint chunks through a raw base pointer, and their
/// soundness arguments must be kept in sync. The pool's version is a leaf
/// loop; this one exists so mutable chunks can compose with `zip`/
/// `enumerate`/`map` via per-index access.
pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: hands out disjoint `&mut [T]` chunks (one per index, per the
// `item` contract) into a slice that stays exclusively borrowed for `'a`.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn item(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: chunk index ranges are disjoint, so the synthesized
        // slices never alias; the backing slice is borrowed for `'a`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// `map` combinator.
pub struct Map<P, F> {
    base: P,
    op: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn item(&self, i: usize) -> R {
        // SAFETY: forwarded contract.
        (self.op)(unsafe { self.base.item(i) })
    }
}

/// `zip` combinator.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn item(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded contract (indices beyond the shorter side's
        // zip length are never requested).
        unsafe { (self.a.item(i), self.b.item(i)) }
    }
}

/// `enumerate` combinator.
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn item(&self, i: usize) -> (usize, P::Item) {
        // SAFETY: forwarded contract.
        (i, unsafe { self.base.item(i) })
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned index ranges.
pub trait IntoParallelIterator {
    /// Item yielded by the iterator.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = IterRange;

    fn into_par_iter(self) -> IterRange {
        IterRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// `par_iter()` for collections iterable by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the iterator.
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// `par_iter_mut()` for collections iterable by exclusive reference.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded by the iterator.
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel version of `chunks` (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// Chunked traversal of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel version of `chunks_mut` (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Serializes the pool-heavy tests of this binary: libtest runs tests
    /// concurrently, they all share the one global pool, and a stress test
    /// hogging the queue while the speedup test times itself would skew
    /// the measured ratio.
    static POOL_HEAVY: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn pool_heavy_guard() -> std::sync::MutexGuard<'static, ()> {
        POOL_HEAVY.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_iter_zip_and_enumerate() {
        let a = vec![1, 2, 3];
        let b = [10, 20, 30];
        let s: i32 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
        let idx: Vec<usize> = a.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let mut buf = vec![0.0f64; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as f64;
            }
        });
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn par_iter_mut_updates_every_element() {
        let _guard = pool_heavy_guard();
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x = *x * 2 + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2 + 1);
        }
    }

    #[test]
    fn collect_preserves_input_order_at_scale() {
        let _guard = pool_heavy_guard();
        // Large enough to split across every pool lane many times over.
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i.wrapping_mul(31)).collect();
        assert_eq!(v.len(), n);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i.wrapping_mul(31));
        }
    }

    #[test]
    fn par_chunks_mut_stress_disjoint_under_real_threads() {
        let _guard = pool_heavy_guard();
        // Concurrency stress: many rounds over a buffer whose chunk size
        // does not divide its length; every element must be written exactly
        // once per round with its own chunk's value.
        let len = 65_536usize;
        let chunk = 97usize;
        let mut buf = vec![0u32; len];
        for round in 1..=8u32 {
            buf.par_chunks_mut(chunk).enumerate().for_each(|(ci, c)| {
                for v in c.iter_mut() {
                    *v = *v + ci as u32 + round;
                }
            });
            for (i, v) in buf.iter().enumerate() {
                let expect: u32 = (1..=round).map(|r| (i / chunk) as u32 + r).sum();
                assert_eq!(*v, expect, "round {round}, index {i}");
            }
        }
    }

    #[test]
    fn ragged_tail_chunks_have_correct_lengths() {
        let data: Vec<u8> = vec![1; 10];
        let lens: Vec<usize> = data.par_chunks(4).map(<[u8]>::len).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        let empty: Vec<u8> = Vec::new();
        let none: Vec<usize> = empty.par_chunks(4).map(<[u8]>::len).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn nested_par_calls_complete() {
        let _guard = pool_heavy_guard();
        // Shim-in-shim nesting: inner calls run inline on pool workers, in
        // parallel on the caller lane. Either way this must terminate and
        // produce the sequential answer.
        let outer = 8usize;
        let sums: Vec<usize> = (0..outer)
            .into_par_iter()
            .map(|k| (0..100).into_par_iter().map(|i| i + k).sum::<usize>())
            .collect();
        for (k, s) in sums.iter().enumerate() {
            assert_eq!(*s, 99 * 100 / 2 + 100 * k);
        }
    }

    #[test]
    fn par_chunks_speedup_gated() {
        // Same style as the executor's gated speedup assertion: only
        // meaningful when the pool has ≥ 2 lanes AND the host has ≥ 2
        // cores (EXACLIM_THREADS may exceed the hardware).
        let lanes = exaclim_runtime::pool::global().threads();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let effective = lanes.min(cores).min(8);
        if effective < 2 {
            eprintln!("skipping par_chunks speedup assertion (lanes={lanes}, cores={cores})");
            return;
        }
        let _guard = pool_heavy_guard();
        let spin = |chunk: &mut [u64]| {
            let t = std::time::Instant::now();
            while t.elapsed().as_micros() < 1000 {
                std::hint::spin_loop();
            }
            chunk[0] = chunk[0].wrapping_add(1);
        };
        let n_chunks = 64usize;
        let mut buf = vec![0u64; n_chunks];
        let t_seq = {
            let t = std::time::Instant::now();
            for c in buf.chunks_mut(1) {
                spin(c);
            }
            t.elapsed().as_secs_f64()
        };
        let t_par = {
            let t = std::time::Instant::now();
            buf.par_chunks_mut(1).for_each(spin);
            t.elapsed().as_secs_f64()
        };
        let min_speedup = 1.0 + 0.3 * (effective as f64 - 1.0);
        assert!(
            t_seq / t_par > min_speedup,
            "lanes={lanes}, cores={cores}: t_seq={t_seq}, t_par={t_par}, want ≥ {min_speedup}×"
        );
    }
}
