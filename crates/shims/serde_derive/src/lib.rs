//! Offline shim for `serde_derive`.
//!
//! Generates impls of the value-tree `serde::Serialize`/`serde::Deserialize`
//! (see the sibling `serde` shim) for the shapes the workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`: skipped on
//!   write, `Default`-filled on read),
//! * enums with unit, tuple, and struct variants, externally tagged like
//!   real serde (`"Unit"`, `{"Newtype": value}`, `{"Struct": {...}}`).
//!
//! The parser walks raw `proc_macro` token trees — no `syn`/`quote`, since
//! the build environment has no registry access. Generics are rejected
//! with a compile error; no workspace type needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the value-tree `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the value-tree `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// One named field (of a struct or a struct variant).
struct Field {
    name: String,
    skip: bool,
}

/// An enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many payload fields.
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

/// Consume leading attributes (`#[...]`), reporting whether any of them is
/// `#[serde(skip)]`-like.
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let text = g.stream().to_string();
        if text.starts_with("serde") && text.contains("skip") {
            skip = true;
        }
        i += 2;
    }
    (i, skip)
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, …).
fn eat_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip a type, starting at `i`, up to (not including) the next top-level
/// comma. Tracks `<...>` nesting so `HashMap<K, V>` stays one type.
fn eat_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named fields from a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, skip) = eat_attrs(tokens, i);
        let j = eat_vis(tokens, j);
        let Some(TokenTree::Ident(name)) = tokens.get(j) else {
            return Err(format!(
                "expected field name, got {:?}",
                tokens.get(j).map(|t| t.to_string())
            ));
        };
        let name = name.to_string();
        match tokens.get(j + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, got {:?}",
                    other.map(|t| t.to_string())
                ))
            }
        }
        i = eat_type(tokens, j + 2);
        fields.push(Field { name, skip });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(fields)
}

/// Count the top-level comma-separated types in a paren group's tokens.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = eat_type(tokens, i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = eat_attrs(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(j) else {
            return Err(format!(
                "expected variant name, got {:?}",
                tokens.get(j).map(|t| t.to_string())
            ));
        };
        let name = name.to_string();
        i = j + 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Explicit discriminants (`= expr`) are not supported on serde
        // enums in this workspace; reject rather than silently misparse.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                return Err(format!(
                    "explicit discriminant on variant `{name}` unsupported"
                ));
            }
        }
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = eat_attrs(&tokens, 0);
    i = eat_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected struct/enum, got {:?}",
                other.map(|t| t.to_string())
            ))
        }
    };
    let Some(TokenTree::Ident(name)) = tokens.get(i + 1) else {
        return Err("expected type name".to_string());
    };
    let name = name.to_string();
    i += 2;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generics on `{name}` are unsupported"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!(
            "serde shim derive: `{name}` must have a braced body"
        ));
    };
    if body.delimiter() != Delimiter::Brace {
        return Err(format!(
            "serde shim derive: tuple/unit `{name}` is unsupported"
        ));
    }
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&inner)?),
        "enum" => Shape::Enum(parse_variants(&inner)?),
        other => return Err(format!("cannot derive serde impls for `{other}`")),
    };
    Ok(Item { name, shape })
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s += &format!(
                    "obj.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                );
            }
            s += "::serde::Value::Obj(obj)";
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms += &format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms += &format!(
                            "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner += &format!(
                                "obj.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            );
                        }
                        inner += "::serde::Value::Obj(obj)";
                        arms += &format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), {{ {inner} }})]),\n",
                            binds.join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits += &format!("{}: ::std::default::Default::default(),\n", f.name);
                } else {
                    inits += &format!("{0}: ::serde::decode_field(obj, \"{0}\")?,\n", f.name);
                }
            }
            format!(
                "let obj = v.as_obj().ok_or_else(|| ::serde::DeError::custom(\
                     format!(\"expected object for struct {name}, found {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms +=
                            &format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n");
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms += &format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                            .collect();
                        tagged_arms += &format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __payload.as_arr().ok_or_else(|| ::serde::DeError::custom(\"expected array payload for {name}::{vn}\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong payload arity for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits +=
                                    &format!("{}: ::std::default::Default::default(),\n", f.name);
                            } else {
                                inits += &format!(
                                    "{0}: ::serde::decode_field(obj, \"{0}\")?,\n",
                                    f.name
                                );
                            }
                        }
                        tagged_arms += &format!(
                            "\"{vn}\" => {{\n\
                                 let obj = __payload.as_obj().ok_or_else(|| ::serde::DeError::custom(\"expected object payload for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }},\n"
                        );
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown unit variant {{__other}} of {name}\"))),\n\
                     }},\n\
                     _ => {{\n\
                         let __entries = v.as_obj().ok_or_else(|| ::serde::DeError::custom(\
                             format!(\"expected variant of {name}, found {{}}\", v.kind())))?;\n\
                         if __entries.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"expected single-key variant object for {name}\"));\n\
                         }}\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
