//! Offline shim for `serde`.
//!
//! Real serde decouples data structures from formats through visitor
//! traits; this shim collapses that machinery into one concrete
//! intermediate: [`Value`], a JSON-shaped tree. [`Serialize`] lowers a
//! value into the tree and [`Deserialize`] lifts it back; the sibling
//! `serde_json` shim renders/parses the tree as JSON text, and the
//! `serde_derive` shim generates field-by-field impls for structs and
//! (externally tagged) enums, honouring `#[serde(skip)]`.
//!
//! Numbers are carried as their decimal text so that `u64::MAX` and exact
//! `f64` round-trips survive without a lossy common representation.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as decimal text for lossless round-trips.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Short description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the [`Value`] tree.
pub trait Serialize {
    /// Produce the intermediate value.
    fn to_value(&self) -> Value;
}

/// Lift `Self` out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the intermediate value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up `name` in the entries of an object.
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Decode a required named field — the helper the derive macro calls.
pub fn decode_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match get_field(obj, name) {
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        DeError::custom(format!(
                            "invalid {}: {s:?} ({e})", stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // `{:?}` prints the shortest text that parses back exactly.
                Value::Num(format!("{self:?}"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        DeError::custom(format!(
                            "invalid {}: {s:?} ({e})", stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Static string fields (machine names, citations) deserialize by
    /// leaking a small owned copy — acceptable for the shim's use of
    /// reference tables, never for bulk data.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, found {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($n),+].len();
                match v {
                    Value::Arr(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected array of {}, found {}", LEN, other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(
            usize::from_value(&usize::MAX.to_value()).unwrap(),
            usize::MAX
        );
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        let x = 0.1f64 + 0.2;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.5f64, -2.5f64), (0.0, f64::MIN_POSITIVE)];
        let back: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Num("1".into())).is_err());
        let obj = vec![("a".to_string(), Value::Num("1".into()))];
        assert_eq!(decode_field::<u32>(&obj, "a").unwrap(), 1);
        assert!(decode_field::<u32>(&obj, "b")
            .unwrap_err()
            .to_string()
            .contains("missing"));
    }
}
