//! Offline shim for `proptest`.
//!
//! Property tests in the workspace use a restricted surface: the
//! [`proptest!`] macro with `arg in strategy` bindings, numeric range and
//! `Just` strategies, [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros. This shim runs each property over
//! `ProptestConfig::cases` deterministically seeded random samples
//! (seeded per test from the test's name, so failures reproduce). There is
//! **no shrinking**: a failure reports the case index and message only.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure of a single property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] matching proptest's `Reject` arm.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply mapping; the slight modulo bias is irrelevant
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64-sized range: every bit pattern valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct OneOf<V> {
    /// The candidate strategies.
    pub options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`fn@vec`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing vectors of `element` with lengths from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The prelude the tests glob-import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, OneOf,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Assert inside a property, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::OneOf { options }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in -3.0f64..7.0,
            n in 1usize..10,
            bits in 0u16..=0xFFFF,
        ) {
            prop_assert!((-3.0..7.0).contains(&x), "x={x}");
            prop_assert!((1..10).contains(&n));
            let _ = bits; // full-domain inclusive must not panic
        }

        #[test]
        fn vec_strategy_sizes(
            ys in crate::collection::vec(-1.0f64..1.0, 2..20),
            fixed in crate::collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!((2..20).contains(&ys.len()));
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn oneof_picks_only_listed(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!(matches!(v, 1..=3));
        }
    }

    #[test]
    fn failures_report_case() {
        let err = std::panic::catch_unwind(|| {
            crate::proptest! {
                #![proptest_config(crate::ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..10) {
                    crate::prop_assert!(x > 100, "x={x} too small");
                }
            }
            always_fails();
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
