//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small `rand` surface it actually uses: [`RngCore`]/[`Rng`] with
//! `gen_range` over half-open and inclusive ranges, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not bit-compatible with the
//! real `rand::rngs::StdRng` (ChaCha12), but deterministic under a seed,
//! which is the only property the workspace relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `u64` bits → f64 in `[0, 1)` with 53-bit resolution.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * (unit_f64(rng.next_u64()) as f32)
    }
}

/// Unbiased integer sampling in `[0, bound)` by widening multiply with
/// rejection (Lemire's method).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically strong for simulation use and `Send + Sync`-friendly;
    /// not a cryptographic generator and not stream-compatible with the
    /// upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(0u16..=0xFFFF);
            let _ = v; // full-domain inclusive range must not panic
        }
        assert_eq!(rng.gen_range(5u64..6), 5);
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
    }

    #[test]
    fn works_through_unsized_reference() {
        fn draw(rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
