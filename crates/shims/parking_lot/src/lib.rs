//! Offline shim for `parking_lot`.
//!
//! Exposes [`Mutex`] and [`Condvar`] with parking_lot's calling convention
//! (`lock()` returns the guard directly, `Condvar::wait` takes `&mut guard`)
//! on top of `std::sync`. Poisoning is swallowed: a panicking critical
//! section does not poison the lock, matching parking_lot semantics.

use std::fmt;
use std::sync::{self, TryLockError};

/// Mutual exclusion with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std guard
/// out and back in around the blocking call.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                guard: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
