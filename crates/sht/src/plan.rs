//! SHT plans: precomputation and the forward/inverse transform kernels.

use crate::coeffs::HarmonicCoeffs;
use exaclim_fft::Fft;
use exaclim_mathkit::Complex64;
use exaclim_sphere::grid::{EquiangularGrid, GaussLegendreGrid, Grid};
use exaclim_sphere::harmonics::integral_iq;
use exaclim_sphere::legendre::{idx, packed_len, LegendreTable};
use exaclim_sphere::wigner::WignerPiHalf;

/// Which forward-transform algorithm a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisEngine {
    /// Quadrature with Gauss–Legendre ring weights (exact on GL grids).
    GaussLegendre,
    /// The paper's FFT + Wigner-d(π/2) method (exact on equiangular grids
    /// with `Nθ > L`, `Nϕ ≥ 2L−1`; eqs. 4–8).
    WignerFft,
}

enum GridKind {
    Equiangular(EquiangularGrid),
    GaussLegendre(GaussLegendreGrid),
}

/// Precomputed data for the paper's equiangular forward transform.
struct WignerData {
    /// FFT over the extended co-latitude circle, length `2Nθ − 2`.
    fft_theta: Fft,
    /// All `d^ℓ(π/2)` matrices for `ℓ < L`.
    delta: WignerPiHalf,
    /// `I(q)` for `q ∈ [−(2L−2), 2L−2]`, index `q + 2L − 2`.
    iq: Vec<Complex64>,
}

/// A reusable spherical-harmonic transform plan for one grid and band-limit.
///
/// Precomputes per-ring normalized Legendre values (`O(Nθ L²)` memory), the
/// longitude FFT plan, and — for the equiangular engine — the Wigner-d(π/2)
/// tensor (`O(L³)` memory, as the paper's pre-computation strategy).
pub struct ShtPlan {
    lmax: usize,
    grid: GridKind,
    engine: AnalysisEngine,
    /// `legendre[i][idx(l, m)] = λ_ℓ^m(cos θ_i)`.
    legendre: Vec<Vec<f64>>,
    fft_phi: Fft,
    wigner: Option<WignerData>,
}

impl ShtPlan {
    /// Gauss–Legendre plan at band-limit `L`: `L` rings, `2L−1` longitudes.
    pub fn gauss_legendre(lmax: usize) -> Self {
        assert!(lmax >= 1);
        let grid = GaussLegendreGrid::for_bandlimit(lmax);
        let legendre = ring_legendre(&grid, lmax);
        let fft_phi = Fft::new(grid.nphi());
        Self {
            lmax,
            grid: GridKind::GaussLegendre(grid),
            engine: AnalysisEngine::GaussLegendre,
            legendre,
            fft_phi,
            wigner: None,
        }
    }

    /// Equiangular (ERA5-style) plan at band-limit `L` on an `Nθ × Nϕ`
    /// grid. Exactness requires `Nθ > L` and `Nϕ ≥ 2L − 1`.
    pub fn equiangular(lmax: usize, ntheta: usize, nphi: usize) -> Self {
        assert!(lmax >= 1);
        assert!(
            ntheta > lmax,
            "Wigner engine needs Nθ > L (got Nθ={ntheta}, L={lmax})"
        );
        assert!(
            nphi >= 2 * lmax - 1,
            "need Nϕ ≥ 2L−1 (got Nϕ={nphi}, L={lmax})"
        );
        let grid = EquiangularGrid::new(ntheta, nphi);
        let legendre = ring_legendre(&grid, lmax);
        let fft_phi = Fft::new(nphi);
        let next = 2 * ntheta - 2;
        let iq = (-(2 * lmax as i64 - 2)..=(2 * lmax as i64 - 2))
            .map(integral_iq)
            .collect();
        let wigner = Some(WignerData {
            fft_theta: Fft::new(next),
            delta: WignerPiHalf::new(lmax - 1),
            iq,
        });
        Self {
            lmax,
            grid: GridKind::Equiangular(grid),
            engine: AnalysisEngine::WignerFft,
            legendre,
            fft_phi,
            wigner,
        }
    }

    /// Band-limit `L` (degrees `ℓ < L`).
    pub fn lmax(&self) -> usize {
        self.lmax
    }

    /// The forward engine this plan uses.
    pub fn engine(&self) -> AnalysisEngine {
        self.engine
    }

    /// The underlying grid.
    pub fn grid(&self) -> &dyn Grid {
        match &self.grid {
            GridKind::Equiangular(g) => g,
            GridKind::GaussLegendre(g) => g,
        }
    }

    /// Number of real values in one field on this plan's grid.
    pub fn field_len(&self) -> usize {
        self.grid().len()
    }

    /// Forward transform (analysis): field → coefficients.
    pub fn analysis(&self, field: &[f64]) -> HarmonicCoeffs {
        assert_eq!(field.len(), self.field_len(), "field size mismatch");
        match self.engine {
            AnalysisEngine::GaussLegendre => self.analysis_weights(field),
            AnalysisEngine::WignerFft => self.analysis_wigner(field),
        }
    }

    /// Forward transform by plain ring-weight quadrature regardless of
    /// engine. On equiangular grids near critical sampling this is
    /// *inexact* — kept as the baseline the paper's method improves on.
    pub fn analysis_quadrature(&self, field: &[f64]) -> HarmonicCoeffs {
        assert_eq!(field.len(), self.field_len(), "field size mismatch");
        self.analysis_weights(field)
    }

    /// Inverse transform (synthesis): coefficients → field (row-major
    /// `Nθ × Nϕ`).
    pub fn synthesis(&self, coeffs: &HarmonicCoeffs) -> Vec<f64> {
        assert_eq!(coeffs.lmax(), self.lmax, "band-limit mismatch");
        let g = self.grid();
        let (nt, np) = (g.ntheta(), g.nphi());
        let mut out = vec![0.0f64; nt * np];
        let nbins = np / 2 + 1;
        let mut half = vec![Complex64::ZERO; nbins];
        for i in 0..nt {
            let lam = &self.legendre[i];
            for z in half.iter_mut() {
                *z = Complex64::ZERO;
            }
            for m in 0..self.lmax.min(nbins) {
                let mut acc = Complex64::ZERO;
                for l in m..self.lmax {
                    acc += coeffs.as_slice()[idx(l, m)] * lam[idx(l, m)];
                }
                half[m] = acc * np as f64;
            }
            let row = exaclim_fft::irfft(&self.fft_phi, &half);
            out[i * np..(i + 1) * np].copy_from_slice(&row);
        }
        out
    }

    /// Ring-weight quadrature analysis shared by the GL engine and the
    /// inexact equiangular baseline.
    fn analysis_weights(&self, field: &[f64]) -> HarmonicCoeffs {
        let g = self.grid();
        let (nt, np) = (g.ntheta(), g.nphi());
        let dphi = 2.0 * std::f64::consts::PI / np as f64;
        let mut coeffs = HarmonicCoeffs::zeros(self.lmax);
        // F_m(θ_i) = ∫ Z e^{-imφ} dφ via the longitude FFT.
        let mut fm = vec![Complex64::ZERO; nt * self.lmax];
        for i in 0..nt {
            let spec = exaclim_fft::rfft(&self.fft_phi, &field[i * np..(i + 1) * np]);
            for m in 0..self.lmax.min(spec.len()) {
                fm[i * self.lmax + m] = spec[m] * dphi;
            }
        }
        // z_{ℓm} = Σ_i w_i λ_ℓ^m(θ_i) F_m(θ_i).
        let data = coeffs.as_mut_slice();
        for i in 0..nt {
            let w = g.ring_weight(i);
            let lam = &self.legendre[i];
            for m in 0..self.lmax {
                let f = fm[i * self.lmax + m] * w;
                for l in m..self.lmax {
                    data[idx(l, m)] += f * lam[idx(l, m)];
                }
            }
        }
        coeffs
    }

    /// The paper's exact equiangular analysis (eqs. 4–8).
    fn analysis_wigner(&self, field: &[f64]) -> HarmonicCoeffs {
        let wd = self
            .wigner
            .as_ref()
            .expect("wigner data on equiangular plans");
        let g = self.grid();
        let (nt, np) = (g.ntheta(), g.nphi());
        let next = 2 * nt - 2;
        let dphi = 2.0 * std::f64::consts::PI / np as f64;
        let l = self.lmax;
        let li = l as i64;
        // Step 1: G_m(θ_i) for m ∈ [0, L).
        let mut gm = vec![Complex64::ZERO; nt * l];
        for i in 0..nt {
            let spec = exaclim_fft::rfft(&self.fft_phi, &field[i * np..(i + 1) * np]);
            for m in 0..l.min(spec.len()) {
                gm[i * l + m] = spec[m] * dphi;
            }
        }
        let mut coeffs = HarmonicCoeffs::zeros(l);
        let iq0 = 2 * li - 2; // iq index offset: iq[q + iq0]
        let mut ext = vec![Complex64::ZERO; next];
        let mut jtab = vec![Complex64::ZERO; (2 * l - 1).max(1)];
        for m in 0..l {
            // Step 2: parity extension along θ and FFT → K_{m,m'}.
            for z in ext.iter_mut() {
                *z = Complex64::ZERO;
            }
            let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
            for i in 0..nt {
                ext[i] = gm[i * l + m];
            }
            for i in 1..nt - 1 {
                ext[next - i] = gm[i * l + m] * sign;
            }
            wd.fft_theta.forward(&mut ext);
            let kval =
                |mp: i64| -> Complex64 { ext[(mp.rem_euclid(next as i64)) as usize] / next as f64 };
            // Step 3a: J(m'') = Σ_{m'} K_{m,m'} I(m' + m'').
            for (jj, jslot) in jtab.iter_mut().enumerate() {
                let mpp = jj as i64 - (li - 1);
                let mut acc = Complex64::ZERO;
                for mp in -(li - 1)..=(li - 1) {
                    acc += kval(mp) * wd.iq[(mp + mpp + iq0) as usize];
                }
                *jslot = acc;
            }
            // Step 3b: z_{ℓm} = i^{−m} sqrt((2ℓ+1)/4π) Σ_{m''} Δ_{m'',0} Δ_{m'',m} J(m'').
            let phase = Complex64::i_pow(-(m as i64));
            let data = coeffs.as_mut_slice();
            for deg in m..l {
                let di = deg as i64;
                let mut acc = Complex64::ZERO;
                for mpp in -di..=di {
                    let wgt = wd.delta.get(deg, mpp, 0) * wd.delta.get(deg, mpp, m as i64);
                    acc += jtab[(mpp + li - 1) as usize] * wgt;
                }
                let norm = ((2.0 * deg as f64 + 1.0) / (4.0 * std::f64::consts::PI)).sqrt();
                data[idx(deg, m)] = phase * acc * norm;
            }
        }
        coeffs
    }
}

/// Evaluate the normalized Legendre table at every ring of a grid.
fn ring_legendre<G: Grid>(grid: &G, lmax: usize) -> Vec<Vec<f64>> {
    let table = LegendreTable::new(lmax - 1);
    (0..grid.ntheta())
        .map(|i| {
            let theta = grid.theta(i);
            let mut v = vec![0.0; packed_len(lmax - 1)];
            table.eval_into(theta.cos(), theta.sin(), &mut v);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_reports_geometry() {
        let p = ShtPlan::gauss_legendre(8);
        assert_eq!(p.lmax(), 8);
        assert_eq!(p.engine(), AnalysisEngine::GaussLegendre);
        assert_eq!(p.grid().ntheta(), 8);
        assert_eq!(p.grid().nphi(), 15);
        assert_eq!(p.field_len(), 120);

        let p = ShtPlan::equiangular(8, 10, 16);
        assert_eq!(p.engine(), AnalysisEngine::WignerFft);
        assert_eq!(p.field_len(), 160);
    }

    #[test]
    #[should_panic(expected = "Nθ > L")]
    fn equiangular_rejects_undersampled_theta() {
        let _ = ShtPlan::equiangular(8, 8, 16);
    }

    #[test]
    #[should_panic(expected = "Nϕ ≥ 2L−1")]
    fn equiangular_rejects_undersampled_phi() {
        let _ = ShtPlan::equiangular(8, 10, 14);
    }

    #[test]
    fn single_harmonic_roundtrips_through_wigner_engine() {
        // Put power in exactly one (ℓ, m); analysis must isolate it.
        let l = 10;
        let plan = ShtPlan::equiangular(l, 12, 20);
        for &(dl, dm) in &[(0usize, 0usize), (3, 0), (5, 2), (9, 9)] {
            let mut c = HarmonicCoeffs::zeros(l);
            c.set(
                dl,
                dm,
                Complex64::new(1.0, if dm == 0 { 0.0 } else { -0.7 }),
            );
            let field = plan.synthesis(&c);
            let back = plan.analysis(&field);
            assert!(
                c.max_abs_diff(&back) < 1e-10,
                "({dl},{dm}): {}",
                c.max_abs_diff(&back)
            );
        }
    }

    #[test]
    fn oversampled_grids_stay_exact() {
        // More rings/longitudes than strictly needed must not break exactness.
        let l = 6;
        let plan = ShtPlan::equiangular(l, 25, 64);
        let mut c = HarmonicCoeffs::zeros(l);
        c.set(4, 3, Complex64::new(0.3, 0.9));
        c.set(2, 0, Complex64::real(-1.1));
        let field = plan.synthesis(&c);
        let back = plan.analysis(&field);
        assert!(c.max_abs_diff(&back) < 1e-10);
    }
}
