//! Batched transforms over time slices, parallelized with rayon.
//!
//! The paper notes (§III.A.2) that the SHT "offers a linear computational
//! complexity of O(L) for computing SHT for different time points
//! simultaneously" — i.e. time slices are embarrassingly parallel. The plan
//! is `Sync`, so workers share the precomputed tables.

use crate::coeffs::HarmonicCoeffs;
use crate::plan::ShtPlan;
use rayon::prelude::*;

/// Forward-transform `t` consecutive fields stored back-to-back in `data`
/// (each of length [`ShtPlan::field_len`]).
pub fn analysis_batch(plan: &ShtPlan, data: &[f64], t: usize) -> Vec<HarmonicCoeffs> {
    let n = plan.field_len();
    assert_eq!(data.len(), n * t, "expected {t} fields of {n} values");
    data.par_chunks(n)
        .map(|field| plan.analysis(field))
        .collect()
}

/// Inverse-transform a batch of coefficient sets into back-to-back fields.
pub fn synthesis_batch(plan: &ShtPlan, coeffs: &[HarmonicCoeffs]) -> Vec<f64> {
    let n = plan.field_len();
    let mut out = vec![0.0f64; n * coeffs.len()];
    out.par_chunks_mut(n)
        .zip(coeffs.par_iter())
        .for_each(|(chunk, c)| {
            chunk.copy_from_slice(&plan.synthesis(c));
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::Complex64;

    #[test]
    fn batch_matches_sequential() {
        let l = 6;
        let plan = ShtPlan::equiangular(l, 8, 12);
        let t = 5;
        let mut sets = Vec::new();
        for k in 0..t {
            let mut c = HarmonicCoeffs::zeros(l);
            c.set(k % l, 0, Complex64::real(1.0 + k as f64));
            if k % l >= 1 {
                c.set(k % l, 1, Complex64::new(0.5, -0.25 * k as f64));
            }
            sets.push(c);
        }
        let fields = synthesis_batch(&plan, &sets);
        assert_eq!(fields.len(), t * plan.field_len());
        let back = analysis_batch(&plan, &fields, t);
        for (orig, rec) in sets.iter().zip(&back) {
            assert!(orig.max_abs_diff(rec) < 1e-10);
        }
        // Sequential reference.
        for (k, c) in sets.iter().enumerate() {
            let f = plan.synthesis(c);
            let n = plan.field_len();
            for (a, b) in f.iter().zip(&fields[k * n..(k + 1) * n]) {
                assert_eq!(a, b, "slice {k} differs from sequential");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn batch_rejects_wrong_length() {
        let plan = ShtPlan::gauss_legendre(4);
        let _ = analysis_batch(&plan, &[0.0; 10], 3);
    }
}
