//! # exaclim-sht
//!
//! Spherical harmonic transforms for real fields on the sphere — the
//! spectral engine of the climate emulator (paper §III.A.1–2).
//!
//! Two forward (analysis) engines are provided:
//!
//! * [`ShtPlan::gauss_legendre`] — classic Gauss–Legendre quadrature,
//!   exact for band-limited fields on GL grids; the baseline oracle.
//! * [`ShtPlan::equiangular`] — the paper's FFT/Wigner-d method
//!   (eqs. 4–8): FFT along longitude, parity extension and FFT along
//!   co-latitude, then contraction with precomputed `d^ℓ(π/2)` tensors and
//!   the analytic integrals `I(q)`. Exact on ERA5-style equiangular grids
//!   whenever `Nθ > L` and `Nϕ ≥ 2L−1`, where plain quadrature is *not*.
//!
//! Synthesis (inverse) is shared: Legendre recombination per ring plus an
//! inverse real FFT along longitude. All plans are `Send + Sync`; batched
//! entry points parallelize over time slices with rayon, reproducing the
//! paper's "O(L) parallel time for T slices" claim at CPU scale.

pub mod batch;
pub mod coeffs;
pub mod plan;
pub mod regrid;

pub use batch::{analysis_batch, synthesis_batch};
pub use coeffs::HarmonicCoeffs;
pub use plan::{AnalysisEngine, ShtPlan};
pub use regrid::{change_bandlimit, regrid};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Random band-limited coefficients for a real field.
    fn random_coeffs(lmax: usize, seed: u64) -> HarmonicCoeffs {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = HarmonicCoeffs::zeros(lmax);
        for l in 0..lmax {
            for m in 0..=l {
                let re = rng.gen_range(-1.0..1.0);
                let im = if m == 0 {
                    0.0
                } else {
                    rng.gen_range(-1.0..1.0)
                };
                c.set(l, m, exaclim_mathkit::Complex64::new(re, im));
            }
        }
        c
    }

    #[test]
    fn gl_roundtrip_synthesis_analysis() {
        for l in [4usize, 8, 16, 33] {
            let plan = ShtPlan::gauss_legendre(l);
            let c = random_coeffs(l, l as u64);
            let field = plan.synthesis(&c);
            let back = plan.analysis(&field);
            let err = c.max_abs_diff(&back);
            assert!(err < 1e-10, "L={l}: err={err}");
        }
    }

    #[test]
    fn equiangular_roundtrip_synthesis_analysis() {
        for (l, nt, np) in [
            (4usize, 6usize, 8usize),
            (8, 9, 16),
            (16, 18, 33),
            (24, 25, 48),
        ] {
            let plan = ShtPlan::equiangular(l, nt, np);
            let c = random_coeffs(l, 100 + l as u64);
            let field = plan.synthesis(&c);
            let back = plan.analysis(&field);
            let err = c.max_abs_diff(&back);
            assert!(err < 1e-9, "L={l} ({nt}x{np}): err={err}");
        }
    }

    #[test]
    fn engines_agree_on_shared_field() {
        // Synthesize a band-limited field on both grids from the same
        // coefficients; both analyses must return those coefficients.
        let l = 12;
        let c = random_coeffs(l, 7);
        let gl = ShtPlan::gauss_legendre(l);
        let eq = ShtPlan::equiangular(l, l + 2, 2 * l + 1);
        let f1 = gl.synthesis(&c);
        let f2 = eq.synthesis(&c);
        let c1 = gl.analysis(&f1);
        let c2 = eq.analysis(&f2);
        assert!(c1.max_abs_diff(&c2) < 1e-9);
    }

    #[test]
    fn wigner_engine_beats_plain_quadrature_near_critical_sampling() {
        // At Nθ = L + 1 (critical sampling), Clenshaw–Curtis quadrature on
        // the closed grid is inexact for the highest degrees while the
        // paper's Wigner/FFT engine stays exact. This is the point of the
        // eqs. (4)–(8) machinery.
        let l = 16;
        let plan = ShtPlan::equiangular(l, l + 1, 2 * l + 1);
        let c = random_coeffs(l, 3);
        let field = plan.synthesis(&c);
        let exact = plan.analysis(&field);
        let quad = plan.analysis_quadrature(&field);
        let err_exact = c.max_abs_diff(&exact);
        let err_quad = c.max_abs_diff(&quad);
        assert!(err_exact < 1e-9, "wigner engine err {err_exact}");
        assert!(
            err_quad > 100.0 * err_exact.max(1e-14),
            "quadrature should be visibly inexact: {err_quad} vs {err_exact}"
        );
    }

    #[test]
    fn constant_field_is_pure_y00() {
        let l = 8;
        let plan = ShtPlan::equiangular(l, 12, 24);
        let field = vec![3.5; 12 * 24];
        let c = plan.analysis(&field);
        let y00 = (4.0 * std::f64::consts::PI).sqrt() * 3.5;
        assert!((c.get(0, 0).re - y00).abs() < 1e-10);
        for l1 in 1..l {
            for m in 0..=l1 {
                assert!(c.get(l1, m as i64).abs() < 1e-10, "({l1},{m})");
            }
        }
    }

    #[test]
    fn parseval_on_sphere() {
        // ∫ |Z|² dΩ = Σ_{ℓm} |z_{ℓm}|² for band-limited Z.
        let l = 10;
        let plan = ShtPlan::gauss_legendre(l);
        let c = random_coeffs(l, 21);
        let field = plan.synthesis(&c);
        let g = plan.grid();
        let mut integral = 0.0;
        for i in 0..g.ntheta() {
            for j in 0..g.nphi() {
                let v = field[i * g.nphi() + j];
                integral += v * v * g.point_weight(i);
            }
        }
        let spec: f64 = c.total_power();
        assert!(
            (integral - spec).abs() < 1e-9 * spec.max(1.0),
            "{integral} vs {spec}"
        );
    }

    #[test]
    fn synthesized_field_is_real_valued_and_smooth_at_poles() {
        let l = 8;
        let plan = ShtPlan::equiangular(l, 10, 20);
        let c = random_coeffs(l, 5);
        let field = plan.synthesis(&c);
        assert!(field.iter().all(|v| v.is_finite()));
        // Pole rings must be constant in longitude (only m = 0 survives).
        for ring in [0usize, 9] {
            let row = &field[ring * 20..(ring + 1) * 20];
            for v in row {
                assert!((v - row[0]).abs() < 1e-10, "pole ring not constant");
            }
        }
    }
}
