//! Spherical-harmonic coefficient containers for real fields.
//!
//! A real field needs only the `m ≥ 0` coefficients; negative orders follow
//! from `z_{ℓ,−m} = (−1)^m conj(z_{ℓm})`. The emulator's VAR model works on
//! the isometric real packing `f ∈ R^{L²}` (paper §III.A.3): per degree `ℓ`
//! the entries are `z_{ℓ0}` followed by `√2·Re z_{ℓm}, √2·Im z_{ℓm}` for
//! `m = 1…ℓ` — exactly `2ℓ+1` reals, `L²` in total, preserving inner
//! products so covariance estimation in the packed space matches the complex
//! one.

use exaclim_mathkit::Complex64;
use exaclim_sphere::legendre::{idx, packed_len};

/// Coefficients `z_{ℓm}` for `0 ≤ m ≤ ℓ < L` of a real field.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicCoeffs {
    lmax: usize,
    /// Packed by [`idx`]`(l, m)` over `m ≥ 0`.
    data: Vec<Complex64>,
}

impl HarmonicCoeffs {
    /// All-zero coefficients with band-limit `L = lmax` (degrees `< lmax`).
    pub fn zeros(lmax: usize) -> Self {
        assert!(lmax >= 1, "band-limit must be at least 1");
        Self {
            lmax,
            data: vec![Complex64::ZERO; packed_len(lmax - 1)],
        }
    }

    /// Band-limit `L`: degrees run over `0 ≤ ℓ < L`.
    pub fn lmax(&self) -> usize {
        self.lmax
    }

    /// Number of stored (m ≥ 0) complex coefficients.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no coefficients are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw packed slice (m ≥ 0, [`idx`] order).
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw packed slice.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Get `z_{ℓm}` for any `|m| ≤ ℓ` (negative orders via conjugation).
    pub fn get(&self, l: usize, m: i64) -> Complex64 {
        assert!(l < self.lmax, "degree {l} out of band-limit {}", self.lmax);
        let ma = m.unsigned_abs() as usize;
        assert!(ma <= l, "|m| > l");
        let z = self.data[idx(l, ma)];
        if m >= 0 {
            z
        } else if ma.is_multiple_of(2) {
            z.conj()
        } else {
            -z.conj()
        }
    }

    /// Set `z_{ℓm}` for `m ≥ 0`. Setting `m = 0` forces a real value
    /// (required for a real field).
    pub fn set(&mut self, l: usize, m: usize, z: Complex64) {
        assert!(l < self.lmax && m <= l);
        self.data[idx(l, m)] = if m == 0 { Complex64::real(z.re) } else { z };
    }

    /// Largest absolute componentwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.lmax, other.lmax, "band-limit mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Angular power spectrum `C_ℓ = Σ_m |z_{ℓm}|²` (both signs of m).
    pub fn power_spectrum(&self) -> Vec<f64> {
        (0..self.lmax)
            .map(|l| {
                let mut p = self.data[idx(l, 0)].norm_sqr();
                for m in 1..=l {
                    p += 2.0 * self.data[idx(l, m)].norm_sqr();
                }
                p
            })
            .collect()
    }

    /// Total spectral power `Σ_ℓ C_ℓ` (= `∫|Z|²dΩ` by Parseval).
    pub fn total_power(&self) -> f64 {
        self.power_spectrum().iter().sum()
    }

    /// Isometric real packing of length `L²` (see module docs).
    pub fn to_real_vector(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.lmax * self.lmax);
        let sq2 = std::f64::consts::SQRT_2;
        for l in 0..self.lmax {
            out.push(self.data[idx(l, 0)].re);
            for m in 1..=l {
                let z = self.data[idx(l, m)];
                out.push(sq2 * z.re);
                out.push(sq2 * z.im);
            }
        }
        out
    }

    /// Inverse of [`HarmonicCoeffs::to_real_vector`].
    pub fn from_real_vector(lmax: usize, v: &[f64]) -> Self {
        assert_eq!(v.len(), lmax * lmax, "need L² entries");
        let mut c = Self::zeros(lmax);
        let inv = 1.0 / std::f64::consts::SQRT_2;
        let mut k = 0usize;
        for l in 0..lmax {
            c.data[idx(l, 0)] = Complex64::real(v[k]);
            k += 1;
            for m in 1..=l {
                c.data[idx(l, m)] = Complex64::new(v[k] * inv, v[k + 1] * inv);
                k += 2;
            }
        }
        c
    }

    /// Real-packed length for a band-limit.
    pub fn real_len(lmax: usize) -> usize {
        lmax * lmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_packing_roundtrip() {
        let mut c = HarmonicCoeffs::zeros(6);
        let mut v = 0.1;
        for l in 0..6 {
            for m in 0..=l {
                c.set(l, m, Complex64::new(v, if m == 0 { 0.0 } else { -v * 0.5 }));
                v += 0.3;
            }
        }
        let packed = c.to_real_vector();
        assert_eq!(packed.len(), 36);
        let back = HarmonicCoeffs::from_real_vector(6, &packed);
        assert!(c.max_abs_diff(&back) < 1e-14);
    }

    #[test]
    fn real_packing_is_isometric() {
        // ‖packed‖² must equal total spectral power (both-m-signs sum).
        let mut c = HarmonicCoeffs::zeros(5);
        for l in 0..5 {
            for m in 0..=l {
                c.set(
                    l,
                    m,
                    Complex64::new((l + m) as f64 * 0.2, if m == 0 { 0.0 } else { 0.7 }),
                );
            }
        }
        let packed = c.to_real_vector();
        let norm2: f64 = packed.iter().map(|x| x * x).sum();
        assert!((norm2 - c.total_power()).abs() < 1e-12);
    }

    #[test]
    fn negative_m_convention() {
        let mut c = HarmonicCoeffs::zeros(4);
        c.set(2, 1, Complex64::new(1.0, 2.0));
        c.set(2, 2, Complex64::new(-0.5, 0.25));
        assert_eq!(c.get(2, -1), Complex64::new(-1.0, 2.0)); // (−1)^1 conj
        assert_eq!(c.get(2, -2), Complex64::new(-0.5, -0.25)); // (+1) conj
    }

    #[test]
    fn m0_forced_real() {
        let mut c = HarmonicCoeffs::zeros(3);
        c.set(1, 0, Complex64::new(2.0, 5.0));
        assert_eq!(c.get(1, 0), Complex64::real(2.0));
    }

    #[test]
    fn power_spectrum_counts_both_signs() {
        let mut c = HarmonicCoeffs::zeros(3);
        c.set(1, 0, Complex64::real(3.0));
        c.set(1, 1, Complex64::new(1.0, 1.0));
        let p = c.power_spectrum();
        assert!((p[1] - (9.0 + 2.0 * 2.0)).abs() < 1e-14);
        assert_eq!(p[0], 0.0);
        assert!((c.total_power() - p[1]).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "band-limit")]
    fn get_out_of_range_panics() {
        let c = HarmonicCoeffs::zeros(3);
        let _ = c.get(3, 0);
    }
}
