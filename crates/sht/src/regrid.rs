//! Spectral regridding and filtering.
//!
//! The paper highlights that "the spectral basis also provides a unified
//! representation of data with different grid resolutions" (§II.A): any
//! band-limited field can move between grids exactly through its
//! coefficients — analysis on the source grid, synthesis on the target.
//! Included here: grid-to-grid resampling, band-limit truncation, and
//! smooth spectral tapering.

use crate::coeffs::HarmonicCoeffs;
use crate::plan::ShtPlan;
use exaclim_mathkit::Complex64;
use exaclim_sphere::legendre::idx;

/// Exactly resample a band-limited field from one plan's grid to another's.
/// The target plan's band-limit must be ≥ the source's for losslessness;
/// a smaller target band-limit truncates (spectral coarse-graining).
pub fn regrid(src: &ShtPlan, dst: &ShtPlan, field: &[f64]) -> Vec<f64> {
    let coeffs = src.analysis(field);
    let moved = change_bandlimit(&coeffs, dst.lmax());
    dst.synthesis(&moved)
}

/// Re-expand coefficients at a new band-limit: zero-pad upward, truncate
/// downward.
pub fn change_bandlimit(coeffs: &HarmonicCoeffs, new_lmax: usize) -> HarmonicCoeffs {
    let mut out = HarmonicCoeffs::zeros(new_lmax);
    let keep = coeffs.lmax().min(new_lmax);
    for l in 0..keep {
        for m in 0..=l {
            out.set(l, m, coeffs.as_slice()[idx(l, m)]);
        }
    }
    out
}

/// Apply a per-degree taper `w(ℓ)` (e.g. smoothing or high-pass) to the
/// coefficients.
pub fn taper<F: Fn(usize) -> f64>(coeffs: &HarmonicCoeffs, w: F) -> HarmonicCoeffs {
    let mut out = coeffs.clone();
    let lmax = out.lmax();
    for l in 0..lmax {
        let wl = w(l);
        for m in 0..=l {
            let z = out.as_slice()[idx(l, m)];
            out.set(l, m, Complex64::new(z.re * wl, z.im * wl));
        }
    }
    out
}

/// Gaussian smoothing taper with half-power degree `l0`:
/// `w(ℓ) = exp(−ℓ(ℓ+1)/(l0(l0+1)) · ln 2)`.
pub fn gaussian_taper(l0: usize) -> impl Fn(usize) -> f64 {
    let denom = (l0 * (l0 + 1)) as f64;
    move |l: usize| (-((l * (l + 1)) as f64) / denom * std::f64::consts::LN_2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_coeffs(lmax: usize) -> HarmonicCoeffs {
        let mut c = HarmonicCoeffs::zeros(lmax);
        let mut v = 0.4;
        for l in 0..lmax {
            for m in 0..=l {
                v = (v * 3.3f64).sin();
                c.set(l, m, Complex64::new(v, if m == 0 { 0.0 } else { v * 0.5 }));
            }
        }
        c
    }

    #[test]
    fn upsampling_regrid_is_exact() {
        let l = 8;
        let src = ShtPlan::equiangular(l, 10, 16);
        let dst = ShtPlan::equiangular(l, 21, 40);
        let c = test_coeffs(l);
        let coarse = src.synthesis(&c);
        let fine = regrid(&src, &dst, &coarse);
        // The fine field must carry exactly the same spectrum.
        let back = dst.analysis(&fine);
        assert!(c.max_abs_diff(&back) < 1e-10);
    }

    #[test]
    fn roundtrip_through_finer_grid_is_identity() {
        let l = 8;
        let src = ShtPlan::equiangular(l, 10, 16);
        let dst = ShtPlan::equiangular(l, 25, 48);
        let c = test_coeffs(l);
        let coarse = src.synthesis(&c);
        let fine = regrid(&src, &dst, &coarse);
        let back = regrid(&dst, &src, &fine);
        for (a, b) in coarse.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn truncation_removes_high_degrees() {
        let c = test_coeffs(12);
        let t = change_bandlimit(&c, 6);
        assert_eq!(t.lmax(), 6);
        for l in 0..6 {
            for m in 0..=l {
                assert_eq!(t.get(l, m as i64), c.get(l, m as i64));
            }
        }
        // Padding back up leaves zeros above the cut.
        let p = change_bandlimit(&t, 12);
        for m in 0..=8usize {
            assert_eq!(p.get(8, m as i64), Complex64::ZERO);
        }
    }

    #[test]
    fn gaussian_taper_damps_monotonically() {
        let w = gaussian_taper(10);
        assert!((w(0) - 1.0).abs() < 1e-12);
        // Half power at l0: w(10)² = 1/2 ⇒ w(10) = 2^-1/2.
        assert!((w(10) - 0.5f64).abs() < 0.01);
        let mut prev = w(0);
        for l in 1..40 {
            assert!(w(l) < prev);
            prev = w(l);
        }
    }

    #[test]
    fn taper_scales_power_spectrum() {
        let c = test_coeffs(10);
        let t = taper(&c, |l| if l < 5 { 1.0 } else { 0.0 });
        let p0 = c.power_spectrum();
        let p1 = t.power_spectrum();
        for l in 0..5 {
            assert!((p0[l] - p1[l]).abs() < 1e-12);
        }
        for l in 5..10 {
            assert_eq!(p1[l], 0.0);
        }
    }
}
