//! Payload codecs.
//!
//! Field chunks pass through two stages: a **precision stage** narrowing
//! `f64` values to the stored width (the same DP/SP/HP lattice the paper's
//! tile Cholesky uses), and an optional **compression stage** — byte
//! shuffle followed by run-length encoding with varint lengths. Shuffling
//! groups the k-th byte of every value together; on smooth geophysical
//! fields the exponent/high-mantissa planes are nearly constant along
//! space, so they collapse into long runs the RLE stage removes. Both
//! stages are exactly invertible at the stored precision: `F32` decodes
//! bit-identically to `(x as f32) as f64`.

use crate::format::ArchiveError;
use exaclim_linalg::f16::Half;

/// Precision/compression codec of a field member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Little-endian `f64`, uncompressed (8 B/value).
    Raw64,
    /// Little-endian `f32` (4 B/value) — the ERA5/CMIP archive convention.
    F32,
    /// IEEE binary16 with round-to-nearest-even (2 B/value).
    F16,
    /// `F32` + byte shuffle + RLE (the archive workhorse).
    F32Shuffle,
    /// `F16` + byte shuffle + RLE (smallest, coarsest).
    F16Shuffle,
}

impl Codec {
    /// All codecs, for sweeps in benches and tests.
    pub const ALL: [Codec; 5] = [
        Codec::Raw64,
        Codec::F32,
        Codec::F16,
        Codec::F32Shuffle,
        Codec::F16Shuffle,
    ];

    /// Wire id.
    pub fn id(self) -> u8 {
        match self {
            Codec::Raw64 => 0,
            Codec::F32 => 1,
            Codec::F16 => 2,
            Codec::F32Shuffle => 3,
            Codec::F16Shuffle => 4,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Result<Self, ArchiveError> {
        match id {
            0 => Ok(Codec::Raw64),
            1 => Ok(Codec::F32),
            2 => Ok(Codec::F16),
            3 => Ok(Codec::F32Shuffle),
            4 => Ok(Codec::F16Shuffle),
            other => Err(ArchiveError::UnknownCodec(other)),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Codec::Raw64 => "raw64",
            Codec::F32 => "f32",
            Codec::F16 => "f16",
            Codec::F32Shuffle => "f32+shuffle-rle",
            Codec::F16Shuffle => "f16+shuffle-rle",
        }
    }

    /// Bytes per value before compression.
    pub fn value_width(self) -> usize {
        match self {
            Codec::Raw64 => 8,
            Codec::F32 | Codec::F32Shuffle => 4,
            Codec::F16 | Codec::F16Shuffle => 2,
        }
    }

    /// The value a stored sample decodes to — the quantization this codec
    /// applies. `Raw64` is the identity.
    pub fn quantize(self, x: f64) -> f64 {
        match self {
            Codec::Raw64 => x,
            Codec::F32 | Codec::F32Shuffle => (x as f32) as f64,
            Codec::F16 | Codec::F16Shuffle => Half::from_f64(x).to_f64(),
        }
    }

    /// Encode a chunk of values.
    pub fn encode(self, values: &[f64]) -> Vec<u8> {
        let planar = match self {
            Codec::Raw64 => {
                let mut out = Vec::with_capacity(values.len() * 8);
                for &v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                return out;
            }
            Codec::F32 => {
                let mut out = Vec::with_capacity(values.len() * 4);
                for &v in values {
                    out.extend_from_slice(&(v as f32).to_le_bytes());
                }
                return out;
            }
            Codec::F16 => {
                let mut out = Vec::with_capacity(values.len() * 2);
                for &v in values {
                    out.extend_from_slice(&Half::from_f64(v).0.to_le_bytes());
                }
                return out;
            }
            Codec::F32Shuffle => {
                let mut raw = Vec::with_capacity(values.len() * 4);
                for &v in values {
                    raw.extend_from_slice(&(v as f32).to_le_bytes());
                }
                shuffle(&raw, 4)
            }
            Codec::F16Shuffle => {
                let mut raw = Vec::with_capacity(values.len() * 2);
                for &v in values {
                    raw.extend_from_slice(&Half::from_f64(v).0.to_le_bytes());
                }
                shuffle(&raw, 2)
            }
        };
        rle_encode(&planar)
    }

    /// Decode a chunk back to `n_values` values.
    ///
    /// Shuffle codecs decode straight from the RLE-expanded **planar**
    /// layout into the output vector: byte plane `k` of value `i` lives at
    /// `planar[k * n + i]`, so values are gathered plane-wise without ever
    /// materializing the unshuffled byte stream. One intermediate buffer
    /// (the RLE expansion) instead of the previous three-stage
    /// `rle_decode → unshuffle → copy` chain — this is the hot path of
    /// every cold chunk fetch in the serving layer.
    pub fn decode(self, bytes: &[u8], n_values: usize) -> Result<Vec<f64>, ArchiveError> {
        let width = self.value_width();
        let expected = n_values
            .checked_mul(width)
            .ok_or_else(|| ArchiveError::Corrupt("chunk size overflows".to_string()))?;
        let mut out = Vec::with_capacity(n_values);
        match self {
            Codec::Raw64 | Codec::F32 | Codec::F16 => {
                if bytes.len() != expected {
                    return Err(ArchiveError::Corrupt(format!(
                        "chunk payload is {} bytes, expected {expected} ({n_values} values × {width})",
                        bytes.len()
                    )));
                }
                match self {
                    Codec::Raw64 => {
                        for c in bytes.chunks_exact(8) {
                            out.push(f64::from_le_bytes(c.try_into().unwrap()));
                        }
                    }
                    Codec::F32 => {
                        for c in bytes.chunks_exact(4) {
                            out.push(f32::from_le_bytes(c.try_into().unwrap()) as f64);
                        }
                    }
                    _ => {
                        for c in bytes.chunks_exact(2) {
                            out.push(Half(u16::from_le_bytes(c.try_into().unwrap())).to_f64());
                        }
                    }
                }
            }
            Codec::F32Shuffle => {
                let planar = rle_decode(bytes, expected)?;
                let n = n_values;
                let (p0, rest) = planar.split_at(n);
                let (p1, rest) = rest.split_at(n);
                let (p2, p3) = rest.split_at(n);
                for i in 0..n {
                    let raw = u32::from_le_bytes([p0[i], p1[i], p2[i], p3[i]]);
                    out.push(f32::from_bits(raw) as f64);
                }
            }
            Codec::F16Shuffle => {
                let planar = rle_decode(bytes, expected)?;
                let (p0, p1) = planar.split_at(n_values);
                for i in 0..n_values {
                    out.push(Half(u16::from_le_bytes([p0[i], p1[i]])).to_f64());
                }
            }
        }
        Ok(out)
    }
}

/// Snapshot-blob codec: raw bytes or RLE-compressed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteCodec {
    /// Stored verbatim.
    Raw,
    /// Run-length encoded with varint lengths (JSON blobs compress well).
    Rle,
}

impl ByteCodec {
    /// Wire id (shares the namespace of [`Codec`] ids within snapshot
    /// members).
    pub fn id(self) -> u8 {
        match self {
            ByteCodec::Raw => 0,
            ByteCodec::Rle => 1,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Result<Self, ArchiveError> {
        match id {
            0 => Ok(ByteCodec::Raw),
            1 => Ok(ByteCodec::Rle),
            other => Err(ArchiveError::UnknownCodec(other)),
        }
    }

    /// Encode a blob chunk.
    pub fn encode(self, bytes: &[u8]) -> Vec<u8> {
        match self {
            ByteCodec::Raw => bytes.to_vec(),
            ByteCodec::Rle => rle_encode(bytes),
        }
    }

    /// Decode a blob chunk of known decoded size.
    pub fn decode(self, bytes: &[u8], raw_len: usize) -> Result<Vec<u8>, ArchiveError> {
        let mut out = Vec::with_capacity(raw_len);
        self.decode_into(bytes, raw_len, &mut out)?;
        Ok(out)
    }

    /// Decode a blob chunk, **appending** its `raw_len` decoded bytes to
    /// `out` — the multi-chunk snapshot read path concatenates chunks
    /// directly into its result buffer instead of decoding each chunk to
    /// a temporary and copying it over.
    pub fn decode_into(
        self,
        bytes: &[u8],
        raw_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), ArchiveError> {
        match self {
            ByteCodec::Raw => {
                if bytes.len() != raw_len {
                    return Err(ArchiveError::Corrupt(format!(
                        "raw blob chunk is {} bytes, expected {raw_len}",
                        bytes.len()
                    )));
                }
                out.extend_from_slice(bytes);
                Ok(())
            }
            ByteCodec::Rle => rle_decode_into(bytes, raw_len, out),
        }
    }
}

// ------------------------------------------------------------ shuffle/RLE

/// Byte shuffle: gather byte plane `k` of every `width`-byte value into a
/// contiguous run (`data.len()` must be a multiple of `width`).
fn shuffle(data: &[u8], width: usize) -> Vec<u8> {
    debug_assert_eq!(data.len() % width, 0);
    let n = data.len() / width;
    let mut out = vec![0u8; data.len()];
    for (i, v) in data.chunks_exact(width).enumerate() {
        for (k, &b) in v.iter().enumerate() {
            out[k * n + i] = b;
        }
    }
    out
}

/// Append `value` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, advancing it.
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, ArchiveError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = data
            .get(*pos)
            .ok_or_else(|| ArchiveError::Corrupt("varint past end of chunk".to_string()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(ArchiveError::Corrupt("varint overflow".to_string()));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Run-length encode: a stream of ops, each a varint `v` followed by
/// payload — `v & 1 == 0` is a *run* (`v >> 1` copies of the next byte),
/// `v & 1 == 1` is a *literal* (`v >> 1` verbatim bytes). Runs shorter
/// than 4 bytes are folded into literals so pathological inputs cost at
/// most a few bytes per 127 of payload.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    const MIN_RUN: usize = 4;
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        let run = j - i;
        if run >= MIN_RUN {
            if lit_start < i {
                let lit = &data[lit_start..i];
                put_varint(&mut out, ((lit.len() as u64) << 1) | 1);
                out.extend_from_slice(lit);
            }
            put_varint(&mut out, (run as u64) << 1);
            out.push(b);
            i = j;
            lit_start = i;
        } else {
            i = j;
        }
    }
    if lit_start < data.len() {
        let lit = &data[lit_start..];
        put_varint(&mut out, ((lit.len() as u64) << 1) | 1);
        out.extend_from_slice(lit);
    }
    out
}

/// Inverse of [`rle_encode`]; `raw_len` is the expected decoded size.
pub fn rle_decode(data: &[u8], raw_len: usize) -> Result<Vec<u8>, ArchiveError> {
    let mut out = Vec::with_capacity(raw_len);
    rle_decode_into(data, raw_len, &mut out)?;
    Ok(out)
}

/// [`rle_decode`] **appending** to an existing buffer: decodes exactly
/// `raw_len` bytes onto the end of `out`, so multi-chunk payloads can be
/// concatenated without a temporary per chunk. On error `out` is
/// truncated back to its original length.
pub fn rle_decode_into(data: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<(), ArchiveError> {
    let base = out.len();
    let result = rle_decode_append(data, raw_len, out, base);
    if result.is_err() {
        out.truncate(base);
    }
    result
}

/// Body of [`rle_decode_into`]; may leave a partial append behind on
/// error (the wrapper truncates).
fn rle_decode_append(
    data: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
    base: usize,
) -> Result<(), ArchiveError> {
    out.reserve(raw_len);
    let mut pos = 0;
    while pos < data.len() {
        let v = get_varint(data, &mut pos)?;
        let count = (v >> 1) as usize;
        if out.len() - base + count > raw_len {
            return Err(ArchiveError::Corrupt(format!(
                "RLE stream decodes past expected size {raw_len}"
            )));
        }
        if v & 1 == 0 {
            let &b = data
                .get(pos)
                .ok_or_else(|| ArchiveError::Corrupt("RLE run past end".to_string()))?;
            pos += 1;
            out.resize(out.len() + count, b);
        } else {
            let lit = data
                .get(pos..pos + count)
                .ok_or_else(|| ArchiveError::Corrupt("RLE literal past end".to_string()))?;
            pos += count;
            out.extend_from_slice(lit);
        }
    }
    if out.len() - base != raw_len {
        return Err(ArchiveError::Corrupt(format!(
            "RLE stream decodes to {} bytes, expected {raw_len}",
            out.len() - base
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(n: usize) -> Vec<f64> {
        // Smooth "temperature-like" field: 300 K baseline, gentle waves.
        (0..n)
            .map(|i| 300.0 + 15.0 * (i as f64 * 0.01).sin() + 2.0 * (i as f64 * 0.1).cos())
            .collect()
    }

    #[test]
    fn raw64_roundtrips_exactly() {
        let xs = wavy(1000);
        let enc = Codec::Raw64.encode(&xs);
        assert_eq!(enc.len(), 8000);
        assert_eq!(Codec::Raw64.decode(&enc, 1000).unwrap(), xs);
    }

    #[test]
    fn narrow_codecs_roundtrip_at_their_precision() {
        let xs = wavy(512);
        for codec in [Codec::F32, Codec::F16, Codec::F32Shuffle, Codec::F16Shuffle] {
            let enc = codec.encode(&xs);
            let dec = codec.decode(&enc, xs.len()).unwrap();
            for (a, b) in xs.iter().zip(&dec) {
                assert_eq!(codec.quantize(*a), *b, "{}", codec.label());
            }
            // Quantization is idempotent: re-encoding the decoded values
            // is lossless.
            let enc2 = codec.encode(&dec);
            assert_eq!(codec.decode(&enc2, xs.len()).unwrap(), dec);
        }
    }

    #[test]
    fn shuffle_rle_compresses_smooth_fields() {
        let xs = wavy(4096);
        let plain = Codec::F32.encode(&xs).len();
        let packed = Codec::F32Shuffle.encode(&xs).len();
        assert!(
            packed < plain,
            "shuffle+RLE must beat raw f32 on smooth data: {packed} vs {plain}"
        );
    }

    #[test]
    fn rle_handles_pathological_inputs() {
        // Incompressible pseudo-random bytes: bounded overhead, exact
        // round-trip.
        let mut x = 0x12345678u32;
        let noise: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let enc = rle_encode(&noise);
        assert!(enc.len() < noise.len() + noise.len() / 64 + 16);
        assert_eq!(rle_decode(&enc, noise.len()).unwrap(), noise);
        // All-equal input collapses to a few bytes.
        let flat = vec![7u8; 100_000];
        let enc = rle_encode(&flat);
        assert!(enc.len() < 8, "run encoding: {} bytes", enc.len());
        assert_eq!(rle_decode(&enc, flat.len()).unwrap(), flat);
        // Empty input.
        assert_eq!(rle_decode(&rle_encode(&[]), 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rle_rejects_wrong_decoded_size() {
        let enc = rle_encode(&[1, 2, 3, 4, 5]);
        assert!(matches!(rle_decode(&enc, 4), Err(ArchiveError::Corrupt(_))));
        assert!(matches!(rle_decode(&enc, 6), Err(ArchiveError::Corrupt(_))));
        assert!(matches!(
            rle_decode(&[0x80], 1),
            Err(ArchiveError::Corrupt(_))
        ));
    }

    /// Reference inverse of [`shuffle`], kept only to pin the plane-gather
    /// decode to the original two-pass definition.
    fn unshuffle(data: &[u8], width: usize) -> Vec<u8> {
        let n = data.len() / width;
        let mut out = vec![0u8; data.len()];
        for i in 0..n {
            for k in 0..width {
                out[i * width + k] = data[k * n + i];
            }
        }
        out
    }

    #[test]
    fn plane_gather_decode_matches_unshuffle_reference() {
        let xs = wavy(777);
        for codec in [Codec::F32Shuffle, Codec::F16Shuffle] {
            let width = codec.value_width();
            let enc = codec.encode(&xs);
            let got = codec.decode(&enc, xs.len()).unwrap();
            // Reference path: RLE-expand, unshuffle, then read values.
            let flat = unshuffle(&rle_decode(&enc, xs.len() * width).unwrap(), width);
            let want: Vec<f64> = match codec {
                Codec::F32Shuffle => flat
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
                    .collect(),
                _ => flat
                    .chunks_exact(2)
                    .map(|c| Half(u16::from_le_bytes(c.try_into().unwrap())).to_f64())
                    .collect(),
            };
            assert_eq!(got, want, "{}", codec.label());
        }
    }

    #[test]
    fn decode_into_appends_and_restores_on_error() {
        let blob = b"snapshot payload with runs:    aaaaaaa".to_vec();
        for bc in [ByteCodec::Raw, ByteCodec::Rle] {
            let enc = bc.encode(&blob);
            let mut out = b"prefix".to_vec();
            bc.decode_into(&enc, blob.len(), &mut out).unwrap();
            assert_eq!(&out[..6], b"prefix");
            assert_eq!(&out[6..], &blob[..]);
            // Wrong expected size: error, buffer back to the prefix.
            let mut out = b"prefix".to_vec();
            assert!(bc.decode_into(&enc, blob.len() + 1, &mut out).is_err());
            assert_eq!(out, b"prefix");
        }
    }

    #[test]
    fn byte_codec_roundtrips() {
        let blob = br#"{"config":{"lmax":8},"factor":[0.0,0.0,0.0,0.0]}"#.to_vec();
        for bc in [ByteCodec::Raw, ByteCodec::Rle] {
            let enc = bc.encode(&blob);
            assert_eq!(bc.decode(&enc, blob.len()).unwrap(), blob);
        }
    }

    #[test]
    fn codec_ids_roundtrip() {
        for c in Codec::ALL {
            assert_eq!(Codec::from_id(c.id()).unwrap(), c);
        }
        assert!(matches!(
            Codec::from_id(250),
            Err(ArchiveError::UnknownCodec(250))
        ));
    }

    #[test]
    fn varint_edge_values() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
