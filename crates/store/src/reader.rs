//! Random-access archive reader.
//!
//! Opening an archive reads only the 32-byte header and the directory;
//! payload chunks are fetched (and checksum-verified) on demand, so a
//! `(member, time-range)` slice touches exactly the chunks that overlap
//! the range — never the whole file.

use crate::chunk::MemberEntry;
use crate::codec::{ByteCodec, Codec};
use crate::format::{
    crc32, ArchiveError, MemberKind, HEADER_LEN, MAGIC, MAX_CHUNK_RAW_LEN, VERSION,
};
use bytes::{Buf, Bytes};
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;

/// Structural validation of an untrusted directory, before anything is
/// allocated from its fields: every chunk must lie inside the payload
/// region, decode to a bounded size consistent with its member's
/// geometry, and the chunks of each member must tile `[0, t_max)`
/// contiguously. After this check, read paths may trust member/chunk
/// arithmetic.
fn validate_members(members: &[MemberEntry], dir_offset: u64) -> Result<(), ArchiveError> {
    for m in members {
        let corrupt = |what: String| ArchiveError::Corrupt(format!("member `{}`: {what}", m.name));
        match m.kind {
            MemberKind::Field => {
                let codec = Codec::from_id(m.codec)?;
                if m.t_max > 0 && m.values_per_slice == 0 {
                    return Err(corrupt("zero values per slice".to_string()));
                }
                let width = codec.value_width() as u64;
                let mut next_t0 = 0u64;
                for (i, c) in m.chunks.iter().enumerate() {
                    if c.t0 != next_t0 {
                        return Err(corrupt(format!(
                            "chunk {i} starts at step {} (expected {next_t0})",
                            c.t0
                        )));
                    }
                    let expect_raw = u64::from(c.t_len)
                        .checked_mul(m.values_per_slice)
                        .and_then(|v| v.checked_mul(width));
                    if expect_raw != Some(c.raw_len) {
                        return Err(corrupt(format!(
                            "chunk {i} records raw_len {} for {} slices",
                            c.raw_len, c.t_len
                        )));
                    }
                    next_t0 += u64::from(c.t_len);
                }
                if next_t0 != m.t_max {
                    return Err(corrupt(format!(
                        "chunks cover {next_t0} steps, directory records {}",
                        m.t_max
                    )));
                }
            }
            MemberKind::Snapshot => {
                ByteCodec::from_id(m.codec)?;
                let mut next_t0 = 0u64;
                for (i, c) in m.chunks.iter().enumerate() {
                    if c.t0 != next_t0 || c.raw_len != u64::from(c.t_len) {
                        return Err(corrupt(format!("chunk {i} is not a contiguous byte run")));
                    }
                    next_t0 += u64::from(c.t_len);
                }
                if next_t0 != m.t_max {
                    return Err(corrupt(format!(
                        "chunks cover {next_t0} bytes, directory records {}",
                        m.t_max
                    )));
                }
            }
        }
        for (i, c) in m.chunks.iter().enumerate() {
            let end = c.offset.checked_add(c.stored_len);
            if c.offset < HEADER_LEN || end.is_none() || end.unwrap() > dir_offset {
                return Err(ArchiveError::TruncatedChunk {
                    member: m.name.clone(),
                    chunk: i,
                });
            }
            if c.raw_len > MAX_CHUNK_RAW_LEN {
                return Err(ArchiveError::Corrupt(format!(
                    "member `{}`: chunk {i} claims {} decoded bytes (limit {})",
                    m.name, c.raw_len, MAX_CHUNK_RAW_LEN
                )));
            }
        }
    }
    Ok(())
}

/// ECA1 reader over any `Read + Seek` source.
pub struct ArchiveReader<R: Read + Seek> {
    source: R,
    members: Vec<MemberEntry>,
    /// Container length recorded by the directory (header + payload +
    /// directory + CRC).
    total_len: u64,
}

impl<R: Read + Seek> std::fmt::Debug for ArchiveReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveReader")
            .field("members", &self.members.len())
            .field("total_len", &self.total_len)
            .finish()
    }
}

impl ArchiveReader<std::io::BufReader<std::fs::File>> {
    /// Open an archive file.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, ArchiveError> {
        let file = std::fs::File::open(path)?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: Read + Seek> ArchiveReader<R> {
    /// Validate the header, load and verify the directory.
    pub fn new(mut source: R) -> Result<Self, ArchiveError> {
        let stream_len = source.seek(SeekFrom::End(0))?;
        if stream_len < HEADER_LEN {
            return Err(ArchiveError::Corrupt(format!(
                "stream is {stream_len} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        source.seek(SeekFrom::Start(0))?;
        let mut header_buf = [0u8; HEADER_LEN as usize];
        source.read_exact(&mut header_buf)?;
        let mut header: &[u8] = &header_buf;
        let mut magic = [0u8; 4];
        header.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let version = header.get_u16_le();
        if version != VERSION {
            return Err(ArchiveError::BadVersion(version));
        }
        let _flags = header.get_u16_le();
        let dir_offset = header.get_u64_le();
        let dir_len = header.get_u64_le();
        let total = dir_offset
            .checked_add(dir_len)
            .and_then(|v| v.checked_add(4))
            .filter(|_| dir_offset >= HEADER_LEN);
        let Some(total_len) = total else {
            return Err(ArchiveError::Corrupt(
                "directory offset/length out of range (unfinished archive?)".to_string(),
            ));
        };
        if stream_len < total_len {
            return Err(ArchiveError::Corrupt(format!(
                "stream is {stream_len} bytes but the directory needs {total_len}"
            )));
        }
        if stream_len > total_len {
            return Err(ArchiveError::TrailingBytes {
                expected: total_len,
                actual: stream_len,
            });
        }
        source.seek(SeekFrom::Start(dir_offset))?;
        let mut dir = vec![0u8; dir_len as usize + 4];
        source.read_exact(&mut dir)?;
        let crc_stored = u32::from_le_bytes(dir[dir_len as usize..].try_into().unwrap());
        dir.truncate(dir_len as usize);
        if crc32(&dir) != crc_stored {
            return Err(ArchiveError::Corrupt(
                "directory checksum mismatch".to_string(),
            ));
        }
        let members = crate::chunk::decode_directory(Bytes::from(dir))?;
        validate_members(&members, dir_offset)?;
        Ok(Self {
            source,
            members,
            total_len,
        })
    }

    /// All members, in write order.
    pub fn members(&self) -> &[MemberEntry] {
        &self.members
    }

    /// Total container length in bytes.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Look up a member by name.
    pub fn member(&self, name: &str) -> Result<&MemberEntry, ArchiveError> {
        self.members
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| ArchiveError::MemberNotFound(name.to_string()))
    }

    /// Bounds-check a `(member, chunk)` index pair from an external caller.
    fn check_chunk_indices(&self, member_idx: usize, chunk_idx: usize) -> Result<(), ArchiveError> {
        let Some(m) = self.members.get(member_idx) else {
            return Err(ArchiveError::BadRequest(format!(
                "member index {member_idx} out of range ({} members)",
                self.members.len()
            )));
        };
        if chunk_idx >= m.chunks.len() {
            return Err(ArchiveError::BadRequest(format!(
                "chunk index {chunk_idx} out of range for member `{}` ({} chunks)",
                m.name,
                m.chunks.len()
            )));
        }
        Ok(())
    }

    /// Read and checksum-verify the **stored** (possibly compressed) bytes
    /// of one chunk, without decoding them.
    ///
    /// This is the raw-fetch primitive a serving layer builds on: the seek
    /// and read happen here (typically under whatever lock serializes the
    /// underlying source), while the CPU-heavy decode can run elsewhere via
    /// [`crate::Codec::decode`]. Indices are bounds-checked; the CRC32 of
    /// the stored bytes is verified before they are returned, so a caller
    /// can never observe torn or corrupted payloads.
    pub fn read_chunk_stored(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<u8>, ArchiveError> {
        self.check_chunk_indices(member_idx, chunk_idx)?;
        self.read_chunk_stored_unchecked(member_idx, chunk_idx)
    }

    /// [`ArchiveReader::read_chunk_stored`] for indices already known to be
    /// in range (internal read paths iterate validated directories).
    fn read_chunk_stored_unchecked(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<u8>, ArchiveError> {
        let m = &self.members[member_idx];
        let c = m.chunks[chunk_idx];
        let name = m.name.clone();
        self.source.seek(SeekFrom::Start(c.offset))?;
        let mut stored = vec![0u8; c.stored_len as usize];
        self.source
            .read_exact(&mut stored)
            .map_err(|_| ArchiveError::TruncatedChunk {
                member: name.clone(),
                chunk: chunk_idx,
            })?;
        if crc32(&stored) != c.crc32 {
            return Err(ArchiveError::ChecksumMismatch {
                member: name,
                chunk: chunk_idx,
            });
        }
        Ok(stored)
    }

    /// Read, checksum-verify, and decode **all** values of one field chunk
    /// (`chunks[chunk_idx].t_len × values_per_slice` values, time-major).
    ///
    /// This is the unit a chunk cache stores: whole decoded chunks keyed by
    /// `(member, chunk)`, from which any overlapping time-range slice can
    /// be assembled without touching the source again.
    pub fn read_field_chunk(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ArchiveError> {
        self.check_chunk_indices(member_idx, chunk_idx)?;
        self.decode_field_chunk(member_idx, chunk_idx)
    }

    /// Decode all values of one field chunk (indices already validated).
    fn decode_field_chunk(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ArchiveError> {
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Field {
            return Err(ArchiveError::BadRequest(format!(
                "member `{}` is not a field",
                m.name
            )));
        }
        let codec = Codec::from_id(m.codec)?;
        let c = m.chunks[chunk_idx];
        let n_values = c.t_len as usize * m.values_per_slice as usize;
        if c.raw_len != (n_values * codec.value_width()) as u64 {
            return Err(ArchiveError::Corrupt(format!(
                "chunk {chunk_idx} of `{}` records raw_len {} for {n_values} values",
                m.name, c.raw_len
            )));
        }
        let stored = self.read_chunk_stored(member_idx, chunk_idx)?;
        codec.decode(&stored, n_values)
    }

    /// Read time slices `range` of a field member, without touching
    /// chunks outside the range. Returns `(t1 − t0) × values_per_slice`
    /// values, time-major.
    pub fn read_field_slices(
        &mut self,
        name: &str,
        range: Range<u64>,
    ) -> Result<Vec<f64>, ArchiveError> {
        let member_idx = self
            .members
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| ArchiveError::MemberNotFound(name.to_string()))?;
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Field {
            return Err(ArchiveError::BadRequest(format!(
                "member `{name}` is not a field"
            )));
        }
        if range.start > range.end || range.end > m.t_max {
            return Err(ArchiveError::BadRequest(format!(
                "slice range {}..{} out of bounds for {} time steps",
                range.start, range.end, m.t_max
            )));
        }
        let vps = m.values_per_slice as usize;
        // Chunks tile the member contiguously (validated at open), so the
        // overlapping chunks arrive in time order and concatenating their
        // in-range parts assembles the slice. Growing the buffer from
        // decoded data (rather than pre-allocating from directory fields)
        // bounds memory by what the payload actually decodes to.
        let mut out: Vec<f64> = Vec::new();
        for chunk_idx in m.chunks_for_range(range.start, range.end) {
            let c = self.members[member_idx].chunks[chunk_idx];
            let values = self.decode_field_chunk(member_idx, chunk_idx)?;
            let lo = range.start.max(c.t0);
            let hi = range.end.min(c.t0 + u64::from(c.t_len));
            let a = (lo - c.t0) as usize * vps;
            let b = (hi - c.t0) as usize * vps;
            out.extend_from_slice(&values[a..b]);
        }
        debug_assert_eq!(out.len(), (range.end - range.start) as usize * vps);
        Ok(out)
    }

    /// Read every time slice of a field member.
    pub fn read_field_all(&mut self, name: &str) -> Result<Vec<f64>, ArchiveError> {
        let t_max = self.member(name)?.t_max;
        self.read_field_slices(name, 0..t_max)
    }

    /// Read a snapshot blob, returning `(schema_version, payload)`.
    pub fn read_snapshot(&mut self, name: &str) -> Result<(u32, Vec<u8>), ArchiveError> {
        let member_idx = self
            .members
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| ArchiveError::MemberNotFound(name.to_string()))?;
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Snapshot {
            return Err(ArchiveError::BadRequest(format!(
                "member `{name}` is not a snapshot"
            )));
        }
        let codec = ByteCodec::from_id(m.codec)?;
        let version = m.snapshot_version;
        let total = m.t_max as usize;
        let chunk_count = m.chunks.len();
        // Grow from decoded chunks; `total` comes from the directory and
        // is only trusted as a final consistency check.
        let mut out = Vec::new();
        for chunk_idx in 0..chunk_count {
            let c = self.members[member_idx].chunks[chunk_idx];
            let stored = self.read_chunk_stored(member_idx, chunk_idx)?;
            let part = codec.decode(&stored, c.raw_len as usize)?;
            out.extend_from_slice(&part);
        }
        if out.len() != total {
            return Err(ArchiveError::Corrupt(format!(
                "snapshot `{name}` decodes to {} bytes, directory records {total}",
                out.len()
            )));
        }
        Ok((version, out))
    }

    /// Verify every chunk checksum in the archive.
    pub fn verify(&mut self) -> Result<(), ArchiveError> {
        for member_idx in 0..self.members.len() {
            for chunk_idx in 0..self.members[member_idx].chunks.len() {
                self.read_chunk_stored(member_idx, chunk_idx)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::FieldMeta;
    use crate::writer::ArchiveWriter;
    use std::io::Cursor;

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 280.0 + 10.0 * (i as f64 * 0.02).sin())
            .collect()
    }

    fn build(codec: Codec) -> (Vec<u8>, Vec<f64>) {
        let meta = FieldMeta {
            ntheta: 4,
            nphi: 5,
            start_year: 1990,
            tau: 365,
        };
        let data = smooth(20 * 17); // 17 slices of 20 values, chunk_t 5
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("t2m", codec, meta, 20, 5, &data).unwrap();
        w.add_snapshot("model", 3, ByteCodec::Rle, b"{\"k\":[1,2,3]}", 8)
            .unwrap();
        let (cursor, total) = w.finish().unwrap();
        let raw = cursor.into_inner();
        assert_eq!(raw.len() as u64, total);
        (raw, data)
    }

    #[test]
    fn full_and_sliced_reads_roundtrip() {
        for codec in Codec::ALL {
            let (raw, data) = build(codec);
            let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
            let m = r.member("t2m").unwrap();
            assert_eq!(m.t_max, 17);
            assert_eq!(m.chunks.len(), 4); // 5+5+5+2
            let all = r.read_field_all("t2m").unwrap();
            let expect: Vec<f64> = data.iter().map(|&x| codec.quantize(x)).collect();
            assert_eq!(all, expect, "{}", codec.label());
            // A slice crossing a chunk boundary.
            let part = r.read_field_slices("t2m", 4..11).unwrap();
            assert_eq!(part, expect[4 * 20..11 * 20]);
            // Snapshot back.
            let (version, blob) = r.read_snapshot("model").unwrap();
            assert_eq!(version, 3);
            assert_eq!(blob, b"{\"k\":[1,2,3]}");
            r.verify().unwrap();
        }
    }

    #[test]
    fn bad_magic_and_version_are_detected() {
        let (mut raw, _) = build(Codec::F32);
        let pristine = raw.clone();
        raw[0] = b'X';
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::BadMagic
        ));
        let mut raw = pristine.clone();
        raw[4] = 99;
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::BadVersion(99)
        ));
        let mut short = pristine.clone();
        short.truncate(10);
        assert!(matches!(
            ArchiveReader::new(Cursor::new(short)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum_only_for_its_chunk() {
        let (mut raw, _) = build(Codec::F32);
        // Flip one byte inside the second chunk of `t2m`.
        let (off, t0) = {
            let r = ArchiveReader::new(Cursor::new(raw.clone())).unwrap();
            let c = r.member("t2m").unwrap().chunks[1];
            (c.offset as usize, c.t0)
        };
        raw[off + 3] ^= 0x40;
        let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
        // Chunk 0 still reads fine.
        let ok = r.read_field_slices("t2m", 0..t0).unwrap();
        assert_eq!(ok.len() as u64, t0 * 20);
        // Any read touching chunk 1 reports the checksum failure.
        let err = r.read_field_all("t2m").unwrap_err();
        assert_eq!(
            err,
            ArchiveError::ChecksumMismatch {
                member: "t2m".to_string(),
                chunk: 1
            }
        );
        assert!(r.verify().is_err());
    }

    #[test]
    fn overflowing_directory_offsets_are_corrupt() {
        // dir_offset + dir_len passes a single checked_add but the +4 for
        // the CRC would overflow: must error, not panic.
        let mut raw = Vec::new();
        raw.extend_from_slice(b"ECA1");
        raw.extend_from_slice(&1u16.to_le_bytes());
        raw.extend_from_slice(&0u16.to_le_bytes());
        raw.extend_from_slice(&(u64::MAX - 5).to_le_bytes()); // dir offset
        raw.extend_from_slice(&2u64.to_le_bytes()); // dir len
        raw.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn truncated_and_trailing_streams_are_detected() {
        let (raw, _) = build(Codec::Raw64);
        let mut long = raw.clone();
        long.extend_from_slice(b"garbage");
        assert!(matches!(
            ArchiveReader::new(Cursor::new(long)).unwrap_err(),
            ArchiveError::TrailingBytes { .. }
        ));
        let mut short = raw.clone();
        short.truncate(raw.len() - 3);
        assert!(matches!(
            ArchiveReader::new(Cursor::new(short)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn hostile_directories_are_rejected_before_allocation() {
        use crate::chunk::ChunkEntry;
        // Writer refuses chunks beyond the decoded-size limit.
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        assert!(matches!(
            w.begin_field("x", Codec::Raw64, FieldMeta::default(), 1 << 27, 1 << 27),
            Err(ArchiveError::BadRequest(_))
        ));
        // A directory claiming huge t_max with no chunks backing it.
        let phantom = MemberEntry {
            name: "phantom".to_string(),
            kind: MemberKind::Field,
            codec: Codec::Raw64.id(),
            snapshot_version: 0,
            meta: crate::chunk::FieldMeta::default(),
            t_max: 1 << 20,
            chunk_t: 1,
            values_per_slice: 1 << 40,
            chunks: vec![],
        };
        assert!(matches!(
            validate_members(std::slice::from_ref(&phantom), 1000),
            Err(ArchiveError::Corrupt(_))
        ));
        // A self-consistent chunk whose decoded size exceeds the limit.
        let giant = MemberEntry {
            t_max: 1,
            values_per_slice: 1 << 30,
            chunks: vec![ChunkEntry {
                offset: 32,
                stored_len: 10,
                raw_len: (1u64 << 30) * 8,
                t0: 0,
                t_len: 1,
                crc32: 0,
            }],
            ..phantom.clone()
        };
        assert!(matches!(
            validate_members(&[giant], 1000),
            Err(ArchiveError::Corrupt(_))
        ));
        // Non-contiguous chunks (a gap in time coverage).
        let gappy = MemberEntry {
            t_max: 4,
            values_per_slice: 1,
            chunks: vec![
                ChunkEntry {
                    offset: 32,
                    stored_len: 16,
                    raw_len: 16,
                    t0: 0,
                    t_len: 2,
                    crc32: 0,
                },
                ChunkEntry {
                    offset: 48,
                    stored_len: 8,
                    raw_len: 8,
                    t0: 3,
                    t_len: 1,
                    crc32: 0,
                },
            ],
            ..phantom
        };
        assert!(matches!(
            validate_members(&[gappy], 1000),
            Err(ArchiveError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_requests_are_bad_requests() {
        let (raw, _) = build(Codec::F32);
        let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
        assert!(matches!(
            r.read_field_slices("t2m", 5..100),
            Err(ArchiveError::BadRequest(_))
        ));
        assert!(matches!(
            r.read_field_slices("nope", 0..1),
            Err(ArchiveError::MemberNotFound(_))
        ));
        assert!(matches!(
            r.read_snapshot("t2m"),
            Err(ArchiveError::BadRequest(_))
        ));
    }
}
