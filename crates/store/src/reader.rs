//! Random-access archive reader (exclusive-handle API).
//!
//! [`ArchiveReader`] is the original `&mut self` reader over any
//! `Read + Seek` source: opening an archive reads only the 32-byte header
//! and the directory; payload chunks are fetched (and checksum-verified)
//! on demand, so a `(member, time-range)` slice touches exactly the chunks
//! that overlap the range — never the whole file.
//!
//! Since the [`crate::source::ChunkSource`] refactor it is a thin wrapper
//! over [`Archive`]`<`[`LockedReader`]`<R>>`: the same parse, validation,
//! and decode paths as the shared reader, with the mutex always
//! uncontended because this type's `&mut self` methods guarantee a single
//! caller. Use [`Archive`] directly for concurrent or zero-copy access.

use crate::archive::Archive;
use crate::format::ArchiveError;
use crate::source::LockedReader;
use crate::MemberEntry;
use std::io::{Read, Seek};
use std::ops::Range;

/// ECA1 reader over any `Read + Seek` source.
pub struct ArchiveReader<R: Read + Seek> {
    inner: Archive<LockedReader<R>>,
}

impl<R: Read + Seek> std::fmt::Debug for ArchiveReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveReader")
            .field("members", &self.members().len())
            .field("total_len", &self.total_len())
            .finish()
    }
}

impl ArchiveReader<std::io::BufReader<std::fs::File>> {
    /// Open an archive file.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, ArchiveError> {
        let file = std::fs::File::open(path)?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: Read + Seek> ArchiveReader<R> {
    /// Validate the header, load and verify the directory.
    pub fn new(source: R) -> Result<Self, ArchiveError> {
        Ok(Self {
            inner: Archive::from_source(LockedReader::new(source)?)?,
        })
    }

    /// All members, in write order.
    pub fn members(&self) -> &[MemberEntry] {
        self.inner.members()
    }

    /// Total container length in bytes.
    pub fn total_len(&self) -> u64 {
        self.inner.total_len()
    }

    /// Look up a member by name.
    pub fn member(&self, name: &str) -> Result<&MemberEntry, ArchiveError> {
        self.inner.member(name)
    }

    /// Read and checksum-verify the **stored** (possibly compressed) bytes
    /// of one chunk, without decoding them. Indices are bounds-checked;
    /// the CRC32 of the stored bytes is verified before they are returned,
    /// so a caller can never observe torn or corrupted payloads.
    pub fn read_chunk_stored(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<u8>, ArchiveError> {
        Ok(self
            .inner
            .read_chunk_stored(member_idx, chunk_idx)?
            .into_vec())
    }

    /// Read, checksum-verify, and decode **all** values of one field chunk
    /// (`chunks[chunk_idx].t_len × values_per_slice` values, time-major).
    pub fn read_field_chunk(
        &mut self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ArchiveError> {
        self.inner.read_field_chunk(member_idx, chunk_idx)
    }

    /// Read time slices `range` of a field member, without touching
    /// chunks outside the range. Returns `(t1 − t0) × values_per_slice`
    /// values, time-major.
    pub fn read_field_slices(
        &mut self,
        name: &str,
        range: Range<u64>,
    ) -> Result<Vec<f64>, ArchiveError> {
        self.inner.read_field_slices(name, range)
    }

    /// Read every time slice of a field member.
    pub fn read_field_all(&mut self, name: &str) -> Result<Vec<f64>, ArchiveError> {
        self.inner.read_field_all(name)
    }

    /// Read a snapshot blob, returning `(schema_version, payload)`.
    pub fn read_snapshot(&mut self, name: &str) -> Result<(u32, Vec<u8>), ArchiveError> {
        self.inner.read_snapshot(name)
    }

    /// Verify every chunk checksum in the archive.
    pub fn verify(&mut self) -> Result<(), ArchiveError> {
        self.inner.verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::validate_members;
    use crate::chunk::FieldMeta;
    use crate::codec::{ByteCodec, Codec};
    use crate::format::MemberKind;
    use crate::writer::ArchiveWriter;
    use std::io::Cursor;

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 280.0 + 10.0 * (i as f64 * 0.02).sin())
            .collect()
    }

    fn build(codec: Codec) -> (Vec<u8>, Vec<f64>) {
        let meta = FieldMeta {
            ntheta: 4,
            nphi: 5,
            start_year: 1990,
            tau: 365,
        };
        let data = smooth(20 * 17); // 17 slices of 20 values, chunk_t 5
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("t2m", codec, meta, 20, 5, &data).unwrap();
        w.add_snapshot("model", 3, ByteCodec::Rle, b"{\"k\":[1,2,3]}", 8)
            .unwrap();
        let (cursor, total) = w.finish().unwrap();
        let raw = cursor.into_inner();
        assert_eq!(raw.len() as u64, total);
        (raw, data)
    }

    #[test]
    fn full_and_sliced_reads_roundtrip() {
        for codec in Codec::ALL {
            let (raw, data) = build(codec);
            let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
            let m = r.member("t2m").unwrap();
            assert_eq!(m.t_max, 17);
            assert_eq!(m.chunks.len(), 4); // 5+5+5+2
            let all = r.read_field_all("t2m").unwrap();
            let expect: Vec<f64> = data.iter().map(|&x| codec.quantize(x)).collect();
            assert_eq!(all, expect, "{}", codec.label());
            // A slice crossing a chunk boundary.
            let part = r.read_field_slices("t2m", 4..11).unwrap();
            assert_eq!(part, expect[4 * 20..11 * 20]);
            // Snapshot back.
            let (version, blob) = r.read_snapshot("model").unwrap();
            assert_eq!(version, 3);
            assert_eq!(blob, b"{\"k\":[1,2,3]}");
            r.verify().unwrap();
        }
    }

    #[test]
    fn bad_magic_and_version_are_detected() {
        let (mut raw, _) = build(Codec::F32);
        let pristine = raw.clone();
        raw[0] = b'X';
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::BadMagic
        ));
        let mut raw = pristine.clone();
        raw[4] = 99;
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::BadVersion(99)
        ));
        let mut short = pristine.clone();
        short.truncate(10);
        assert!(matches!(
            ArchiveReader::new(Cursor::new(short)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum_only_for_its_chunk() {
        let (mut raw, _) = build(Codec::F32);
        // Flip one byte inside the second chunk of `t2m`.
        let (off, t0) = {
            let r = ArchiveReader::new(Cursor::new(raw.clone())).unwrap();
            let c = r.member("t2m").unwrap().chunks[1];
            (c.offset as usize, c.t0)
        };
        raw[off + 3] ^= 0x40;
        let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
        // Chunk 0 still reads fine.
        let ok = r.read_field_slices("t2m", 0..t0).unwrap();
        assert_eq!(ok.len() as u64, t0 * 20);
        // Any read touching chunk 1 reports the checksum failure.
        let err = r.read_field_all("t2m").unwrap_err();
        assert_eq!(
            err,
            ArchiveError::ChecksumMismatch {
                member: "t2m".to_string(),
                chunk: 1
            }
        );
        assert!(r.verify().is_err());
    }

    #[test]
    fn overflowing_directory_offsets_are_corrupt() {
        // dir_offset + dir_len passes a single checked_add but the +4 for
        // the CRC would overflow: must error, not panic.
        let mut raw = Vec::new();
        raw.extend_from_slice(b"ECA1");
        raw.extend_from_slice(&1u16.to_le_bytes());
        raw.extend_from_slice(&0u16.to_le_bytes());
        raw.extend_from_slice(&(u64::MAX - 5).to_le_bytes()); // dir offset
        raw.extend_from_slice(&2u64.to_le_bytes()); // dir len
        raw.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn truncated_and_trailing_streams_are_detected() {
        let (raw, _) = build(Codec::Raw64);
        let mut long = raw.clone();
        long.extend_from_slice(b"garbage");
        assert!(matches!(
            ArchiveReader::new(Cursor::new(long)).unwrap_err(),
            ArchiveError::TrailingBytes { .. }
        ));
        let mut short = raw.clone();
        short.truncate(raw.len() - 3);
        assert!(matches!(
            ArchiveReader::new(Cursor::new(short)).unwrap_err(),
            ArchiveError::Corrupt(_)
        ));
    }

    #[test]
    fn hostile_directories_are_rejected_before_allocation() {
        use crate::chunk::ChunkEntry;
        // Writer refuses chunks beyond the decoded-size limit.
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        assert!(matches!(
            w.begin_field("x", Codec::Raw64, FieldMeta::default(), 1 << 27, 1 << 27),
            Err(ArchiveError::BadRequest(_))
        ));
        // A directory claiming huge t_max with no chunks backing it.
        let phantom = MemberEntry {
            name: "phantom".to_string(),
            kind: MemberKind::Field,
            codec: Codec::Raw64.id(),
            snapshot_version: 0,
            meta: crate::chunk::FieldMeta::default(),
            t_max: 1 << 20,
            chunk_t: 1,
            values_per_slice: 1 << 40,
            chunks: vec![],
        };
        assert!(matches!(
            validate_members(std::slice::from_ref(&phantom), 1000),
            Err(ArchiveError::Corrupt(_))
        ));
        // A self-consistent chunk whose decoded size exceeds the limit.
        let giant = MemberEntry {
            t_max: 1,
            values_per_slice: 1 << 30,
            chunks: vec![ChunkEntry {
                offset: 32,
                stored_len: 10,
                raw_len: (1u64 << 30) * 8,
                t0: 0,
                t_len: 1,
                crc32: 0,
            }],
            ..phantom.clone()
        };
        assert!(matches!(
            validate_members(&[giant], 1000),
            Err(ArchiveError::Corrupt(_))
        ));
        // Non-contiguous chunks (a gap in time coverage).
        let gappy = MemberEntry {
            t_max: 4,
            values_per_slice: 1,
            chunks: vec![
                ChunkEntry {
                    offset: 32,
                    stored_len: 16,
                    raw_len: 16,
                    t0: 0,
                    t_len: 2,
                    crc32: 0,
                },
                ChunkEntry {
                    offset: 48,
                    stored_len: 8,
                    raw_len: 8,
                    t0: 3,
                    t_len: 1,
                    crc32: 0,
                },
            ],
            ..phantom
        };
        assert!(matches!(
            validate_members(&[gappy], 1000),
            Err(ArchiveError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_requests_are_bad_requests() {
        let (raw, _) = build(Codec::F32);
        let mut r = ArchiveReader::new(Cursor::new(raw)).unwrap();
        assert!(matches!(
            r.read_field_slices("t2m", 5..100),
            Err(ArchiveError::BadRequest(_))
        ));
        assert!(matches!(
            r.read_field_slices("nope", 0..1),
            Err(ArchiveError::MemberNotFound(_))
        ));
        assert!(matches!(
            r.read_snapshot("t2m"),
            Err(ArchiveError::BadRequest(_))
        ));
    }
}
