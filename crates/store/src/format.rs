//! ECA1 constants, member kinds, the error type, and CRC32.

/// File magic: the literal bytes `ECA1` at offset 0.
pub const MAGIC: [u8; 4] = *b"ECA1";

/// Container version this crate writes and accepts.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes (magic, version, flags, directory offset,
/// directory length, reserved).
pub const HEADER_LEN: u64 = 32;

/// Upper bound on one chunk's decoded size (1 GiB). The writer refuses to
/// create larger chunks and the reader rejects directories claiming them,
/// which bounds the memory a corrupt or hostile archive can make the
/// reader allocate. Real chunks sit far below this (a 0.25° ERA5 slice is
/// ~8 MB at f64; 32-slice chunks ≈ 256 MB).
pub const MAX_CHUNK_RAW_LEN: u64 = 1 << 30;

/// What a member's payload means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberKind {
    /// Gridded time-series field: chunks decode to `f64` values.
    Field,
    /// Versioned opaque blob (e.g. a trained emulator): chunks decode to
    /// raw bytes.
    Snapshot,
}

impl MemberKind {
    /// Wire id.
    pub fn id(self) -> u8 {
        match self {
            MemberKind::Field => 0,
            MemberKind::Snapshot => 1,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Result<Self, ArchiveError> {
        match id {
            0 => Ok(MemberKind::Field),
            1 => Ok(MemberKind::Snapshot),
            other => Err(ArchiveError::Corrupt(format!(
                "unknown member kind {other}"
            ))),
        }
    }
}

/// Errors surfaced by the archive subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// Underlying I/O failure (message of the `std::io::Error`).
    Io(String),
    /// The stream does not start with the `ECA1` magic.
    BadMagic,
    /// The container version is not supported.
    BadVersion(u16),
    /// Structural damage outside a chunk payload (directory, header,
    /// inconsistent sizes).
    Corrupt(String),
    /// Bytes found after the end of the container.
    TrailingBytes {
        /// Expected container length.
        expected: u64,
        /// Observed stream length.
        actual: u64,
    },
    /// A chunk's payload ends before its recorded length.
    TruncatedChunk {
        /// Owning member.
        member: String,
        /// Chunk index within the member.
        chunk: usize,
    },
    /// A chunk's payload does not match its recorded CRC32.
    ChecksumMismatch {
        /// Owning member.
        member: String,
        /// Chunk index within the member.
        chunk: usize,
    },
    /// The codec id is not known.
    UnknownCodec(u8),
    /// No member with the requested name.
    MemberNotFound(String),
    /// A member with this name already exists in the archive being written.
    DuplicateMember(String),
    /// The caller asked for something inconsistent (bad slice range,
    /// wrong payload cardinality, …).
    BadRequest(String),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(m) => write!(f, "archive I/O error: {m}"),
            ArchiveError::BadMagic => write!(f, "not an ECA1 archive (bad magic)"),
            ArchiveError::BadVersion(v) => write!(f, "unsupported ECA1 version {v}"),
            ArchiveError::Corrupt(m) => write!(f, "corrupt archive: {m}"),
            ArchiveError::TrailingBytes { expected, actual } => write!(
                f,
                "trailing bytes after container end (container is {expected} bytes, stream is {actual})"
            ),
            ArchiveError::TruncatedChunk { member, chunk } => {
                write!(f, "truncated chunk {chunk} of member `{member}`")
            }
            ArchiveError::ChecksumMismatch { member, chunk } => {
                write!(f, "checksum mismatch in chunk {chunk} of member `{member}`")
            }
            ArchiveError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            ArchiveError::MemberNotFound(name) => write!(f, "no member `{name}` in archive"),
            ArchiveError::DuplicateMember(name) => {
                write!(f, "member `{name}` already exists in archive")
            }
            ArchiveError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e.to_string())
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip/zip use, computed slice-by-8.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// The eight lookup tables of the slice-by-8 kernel. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][i]` extends `TABLES[k-1][i]`
/// by one zero byte, so eight table lookups advance the CRC over eight
/// input bytes at once.
fn crc32_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`) through
/// successive buffers, then XOR with `0xFFFF_FFFF` at the end. Splitting
/// the input at any byte boundary yields the same state as one call.
///
/// The hot loop is **slice-by-8**: eight bytes are folded per iteration
/// through eight precomputed tables — checksum verification sits on every
/// chunk fetch of the serving path, so this is worth roughly a 3–5×
/// speedup over the byte-at-a-time kernel on large chunks.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ state;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        state = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = t[0][((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"exaclim"), crc32(b"exaclim"));
        assert_ne!(crc32(b"exaclim"), crc32(b"exaclin"));
    }

    #[test]
    fn crc32_streams_like_oneshot() {
        let data = b"chunked, compressed, checksummed";
        let mut state = 0xFFFF_FFFFu32;
        for part in data.chunks(7) {
            state = crc32_update(state, part);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    /// Reference byte-at-a-time kernel, kept only to pin the slice-by-8
    /// implementation to the original definition.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for &b in data {
            state ^= u32::from(b);
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    0xEDB8_8320 ^ (state >> 1)
                } else {
                    state >> 1
                };
            }
        }
        state ^ 0xFFFF_FFFF
    }

    #[test]
    fn slice_by_8_matches_bytewise_reference() {
        // Pseudo-random buffers at every length 0..64 (covering all
        // remainder sizes) plus a large buffer, and every split point of a
        // medium one for streaming equivalence.
        let mut x = 0x2545_F491u32;
        let mut noise = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    x as u8
                })
                .collect()
        };
        for n in 0..64 {
            let buf = noise(n);
            assert_eq!(crc32(&buf), crc32_bytewise(&buf), "len {n}");
        }
        let big = noise(8192);
        assert_eq!(crc32(&big), crc32_bytewise(&big));
        let medium = noise(41);
        let want = crc32(&medium);
        for split in 0..=medium.len() {
            let state = crc32_update(0xFFFF_FFFF, &medium[..split]);
            let state = crc32_update(state, &medium[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, want, "split {split}");
        }
    }

    #[test]
    fn member_kind_roundtrip() {
        for k in [MemberKind::Field, MemberKind::Snapshot] {
            assert_eq!(MemberKind::from_id(k.id()).unwrap(), k);
        }
        assert!(matches!(
            MemberKind::from_id(9),
            Err(ArchiveError::Corrupt(_))
        ));
    }
}
