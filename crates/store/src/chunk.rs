//! Directory model: members, chunks, and their binary encoding.
//!
//! The directory is written after the last payload chunk and located via
//! the header. All integers are little-endian. Per member:
//!
//! ```text
//! u16 name_len | name utf-8 | u8 kind | u8 codec | u32 snapshot_version
//! u32 ntheta | u32 nphi | i64 start_year | u32 tau
//! u64 t_max | u32 chunk_t | u64 values_per_slice | u32 chunk_count
//! chunk_count × { u64 offset | u64 stored_len | u64 raw_len
//!                 | u64 t0 | u32 t_len | u32 crc32 }
//! ```
//!
//! For snapshot members the grid fields are zero, `t_max` is the payload
//! byte length, `chunk_t` the chunk byte size, and `values_per_slice` 0.

use crate::format::{crc32, ArchiveError, MemberKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Grid/time metadata of a field member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldMeta {
    /// Co-latitude rings.
    pub ntheta: usize,
    /// Longitudes.
    pub nphi: usize,
    /// Calendar year of step 0.
    pub start_year: i64,
    /// Steps per year.
    pub tau: usize,
}

/// One chunk of a member's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the stored chunk.
    pub offset: u64,
    /// Stored (possibly compressed) byte length.
    pub stored_len: u64,
    /// Decoded byte length (values × width for fields, blob bytes for
    /// snapshots).
    pub raw_len: u64,
    /// First time step covered (fields) / first payload byte (snapshots).
    pub t0: u64,
    /// Time steps covered (fields) / payload bytes (snapshots).
    pub t_len: u32,
    /// CRC32 of the stored bytes.
    pub crc32: u32,
}

/// One member of the archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberEntry {
    /// Unique member name.
    pub name: String,
    /// Payload interpretation.
    pub kind: MemberKind,
    /// Codec id (a [`crate::Codec`] for fields, a [`crate::ByteCodec`]
    /// for snapshots).
    pub codec: u8,
    /// Schema version of a snapshot payload (0 for fields).
    pub snapshot_version: u32,
    /// Grid/time metadata (zeros for snapshots).
    pub meta: FieldMeta,
    /// Total time steps (fields) or payload bytes (snapshots).
    pub t_max: u64,
    /// Time steps per full chunk (fields) or bytes per chunk (snapshots).
    pub chunk_t: u32,
    /// Values per time slice (`ntheta × nphi`; 0 for snapshots).
    pub values_per_slice: u64,
    /// The chunks, in payload order.
    pub chunks: Vec<ChunkEntry>,
}

impl MemberEntry {
    /// Indices of the chunks overlapping time steps `[t0, t1)`, with the
    /// member-relative sub-range each contributes.
    pub fn chunks_for_range(&self, t0: u64, t1: u64) -> Vec<usize> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.t0 < t1 && c.t0 + u64::from(c.t_len) > t0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Serialize the directory (without its trailing CRC).
pub fn encode_directory(members: &[MemberEntry]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64 + members.len() * 96);
    buf.put_u32_le(members.len() as u32);
    for m in members {
        let name = m.name.as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(m.kind.id());
        buf.put_u8(m.codec);
        buf.put_u32_le(m.snapshot_version);
        buf.put_u32_le(m.meta.ntheta as u32);
        buf.put_u32_le(m.meta.nphi as u32);
        buf.put_i64_le(m.meta.start_year);
        buf.put_u32_le(m.meta.tau as u32);
        buf.put_u64_le(m.t_max);
        buf.put_u32_le(m.chunk_t);
        buf.put_u64_le(m.values_per_slice);
        buf.put_u32_le(m.chunks.len() as u32);
        for c in &m.chunks {
            buf.put_u64_le(c.offset);
            buf.put_u64_le(c.stored_len);
            buf.put_u64_le(c.raw_len);
            buf.put_u64_le(c.t0);
            buf.put_u32_le(c.t_len);
            buf.put_u32_le(c.crc32);
        }
    }
    buf
}

/// Parse a directory blob (without its trailing CRC; the caller has
/// already verified that).
pub fn decode_directory(raw: Bytes) -> Result<Vec<MemberEntry>, ArchiveError> {
    let mut raw = raw;
    let need = |r: &Bytes, n: usize, what: &str| -> Result<(), ArchiveError> {
        if r.remaining() < n {
            Err(ArchiveError::Corrupt(format!(
                "directory truncated reading {what}"
            )))
        } else {
            Ok(())
        }
    };
    need(&raw, 4, "member count")?;
    let count = raw.get_u32_le() as usize;
    let mut members = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        need(&raw, 2, "name length")?;
        let name_len = raw.get_u16_le() as usize;
        need(&raw, name_len, "name")?;
        let mut name_bytes = vec![0u8; name_len];
        raw.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|_| ArchiveError::Corrupt("member name is not UTF-8".to_string()))?;
        need(
            &raw,
            1 + 1 + 4 + 4 + 4 + 8 + 4 + 8 + 4 + 8 + 4,
            "member header",
        )?;
        let kind = MemberKind::from_id(raw.get_u8())?;
        let codec = raw.get_u8();
        let snapshot_version = raw.get_u32_le();
        let meta = FieldMeta {
            ntheta: raw.get_u32_le() as usize,
            nphi: raw.get_u32_le() as usize,
            start_year: raw.get_i64_le(),
            tau: raw.get_u32_le() as usize,
        };
        let t_max = raw.get_u64_le();
        let chunk_t = raw.get_u32_le();
        let values_per_slice = raw.get_u64_le();
        let chunk_count = raw.get_u32_le() as usize;
        let mut chunks = Vec::with_capacity(chunk_count.min(65_536));
        for _ in 0..chunk_count {
            need(&raw, 8 + 8 + 8 + 8 + 4 + 4, "chunk entry")?;
            chunks.push(ChunkEntry {
                offset: raw.get_u64_le(),
                stored_len: raw.get_u64_le(),
                raw_len: raw.get_u64_le(),
                t0: raw.get_u64_le(),
                t_len: raw.get_u32_le(),
                crc32: raw.get_u32_le(),
            });
        }
        members.push(MemberEntry {
            name,
            kind,
            codec,
            snapshot_version,
            meta,
            t_max,
            chunk_t,
            values_per_slice,
            chunks,
        });
    }
    if raw.remaining() != 0 {
        return Err(ArchiveError::Corrupt(format!(
            "{} unexpected bytes after last directory entry",
            raw.remaining()
        )));
    }
    Ok(members)
}

/// Directory bytes + trailing CRC32, ready to append to the payload.
pub fn encode_directory_with_crc(members: &[MemberEntry]) -> Bytes {
    let mut buf = encode_directory(members);
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_members() -> Vec<MemberEntry> {
        vec![
            MemberEntry {
                name: "t2m/member0".to_string(),
                kind: MemberKind::Field,
                codec: 3,
                snapshot_version: 0,
                meta: FieldMeta {
                    ntheta: 19,
                    nphi: 36,
                    start_year: 1979,
                    tau: 365,
                },
                t_max: 100,
                chunk_t: 32,
                values_per_slice: 19 * 36,
                chunks: vec![
                    ChunkEntry {
                        offset: 32,
                        stored_len: 1000,
                        raw_len: 32 * 19 * 36 * 4,
                        t0: 0,
                        t_len: 32,
                        crc32: 0xDEAD_BEEF,
                    },
                    ChunkEntry {
                        offset: 1032,
                        stored_len: 900,
                        raw_len: 32 * 19 * 36 * 4,
                        t0: 32,
                        t_len: 32,
                        crc32: 1,
                    },
                ],
            },
            MemberEntry {
                name: "snapshot/em".to_string(),
                kind: MemberKind::Snapshot,
                codec: 1,
                snapshot_version: 7,
                meta: FieldMeta::default(),
                t_max: 12345,
                chunk_t: 1 << 20,
                values_per_slice: 0,
                chunks: vec![],
            },
        ]
    }

    #[test]
    fn directory_roundtrips() {
        let members = sample_members();
        let enc = encode_directory(&members).freeze();
        let back = decode_directory(enc).unwrap();
        assert_eq!(back, members);
    }

    #[test]
    fn truncated_directory_is_corrupt() {
        let enc = encode_directory(&sample_members()).freeze();
        for cut in [0, 3, 10, enc.len() - 1] {
            let r = decode_directory(enc.slice(0..cut.min(enc.len())));
            if cut == 0 {
                assert!(matches!(r, Err(ArchiveError::Corrupt(_))));
            } else {
                assert!(r.is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_directory_bytes_are_corrupt() {
        let mut enc = encode_directory(&sample_members());
        enc.put_u8(0);
        assert!(matches!(
            decode_directory(enc.freeze()),
            Err(ArchiveError::Corrupt(_))
        ));
    }

    #[test]
    fn range_query_selects_overlapping_chunks() {
        let m = &sample_members()[0];
        assert_eq!(m.chunks_for_range(0, 100), vec![0, 1]);
        assert_eq!(m.chunks_for_range(0, 32), vec![0]);
        assert_eq!(m.chunks_for_range(31, 33), vec![0, 1]);
        assert_eq!(m.chunks_for_range(32, 64), vec![1]);
        assert!(m.chunks_for_range(64, 100).is_empty());
    }
}
