//! Shared, concurrent archive access over any [`ChunkSource`].
//!
//! [`Archive`] is the `&self` counterpart of [`crate::ArchiveReader`]:
//! the directory is parsed and validated once at open, after which every
//! read method takes `&self` and may run from any number of threads at
//! once. How concurrent reads behave is entirely the source's property —
//! a memory map or in-memory buffer serves borrowed, lock-free views
//! ([`SourceBytes::Borrowed`]); a wrapped stream serializes reads on its
//! internal mutex and hands out owned buffers.
//!
//! Chunk payloads remain checksum-verified on **every** fetch, whatever
//! the backend: a flipped bit in a mapped page is detected exactly like a
//! corrupt read from a stream.

use crate::chunk::MemberEntry;
use crate::codec::{ByteCodec, Codec};
use crate::format::{
    crc32, ArchiveError, MemberKind, HEADER_LEN, MAGIC, MAX_CHUNK_RAW_LEN, VERSION,
};
use crate::mmap::{mmap_enabled, open_file_source};
use crate::source::{ChunkSource, LockedReader, SharedBytes, SourceBytes};
use bytes::{Buf, Bytes};
use std::ops::Range;

/// Structural validation of an untrusted directory, before anything is
/// allocated from its fields: every chunk must lie inside the payload
/// region, decode to a bounded size consistent with its member's
/// geometry, and the chunks of each member must tile `[0, t_max)`
/// contiguously. After this check, read paths may trust member/chunk
/// arithmetic.
pub(crate) fn validate_members(
    members: &[MemberEntry],
    dir_offset: u64,
) -> Result<(), ArchiveError> {
    for m in members {
        let corrupt = |what: String| ArchiveError::Corrupt(format!("member `{}`: {what}", m.name));
        match m.kind {
            MemberKind::Field => {
                let codec = Codec::from_id(m.codec)?;
                if m.t_max > 0 && m.values_per_slice == 0 {
                    return Err(corrupt("zero values per slice".to_string()));
                }
                let width = codec.value_width() as u64;
                let mut next_t0 = 0u64;
                for (i, c) in m.chunks.iter().enumerate() {
                    if c.t0 != next_t0 {
                        return Err(corrupt(format!(
                            "chunk {i} starts at step {} (expected {next_t0})",
                            c.t0
                        )));
                    }
                    let expect_raw = u64::from(c.t_len)
                        .checked_mul(m.values_per_slice)
                        .and_then(|v| v.checked_mul(width));
                    if expect_raw != Some(c.raw_len) {
                        return Err(corrupt(format!(
                            "chunk {i} records raw_len {} for {} slices",
                            c.raw_len, c.t_len
                        )));
                    }
                    next_t0 += u64::from(c.t_len);
                }
                if next_t0 != m.t_max {
                    return Err(corrupt(format!(
                        "chunks cover {next_t0} steps, directory records {}",
                        m.t_max
                    )));
                }
            }
            MemberKind::Snapshot => {
                ByteCodec::from_id(m.codec)?;
                let mut next_t0 = 0u64;
                for (i, c) in m.chunks.iter().enumerate() {
                    if c.t0 != next_t0 || c.raw_len != u64::from(c.t_len) {
                        return Err(corrupt(format!("chunk {i} is not a contiguous byte run")));
                    }
                    next_t0 += u64::from(c.t_len);
                }
                if next_t0 != m.t_max {
                    return Err(corrupt(format!(
                        "chunks cover {next_t0} bytes, directory records {}",
                        m.t_max
                    )));
                }
            }
        }
        for (i, c) in m.chunks.iter().enumerate() {
            let end = c.offset.checked_add(c.stored_len);
            if c.offset < HEADER_LEN || end.is_none() || end.unwrap() > dir_offset {
                return Err(ArchiveError::TruncatedChunk {
                    member: m.name.clone(),
                    chunk: i,
                });
            }
            if c.raw_len > MAX_CHUNK_RAW_LEN {
                return Err(ArchiveError::Corrupt(format!(
                    "member `{}`: chunk {i} claims {} decoded bytes (limit {})",
                    m.name, c.raw_len, MAX_CHUNK_RAW_LEN
                )));
            }
        }
    }
    Ok(())
}

/// A boxed source, for archives whose backend is chosen at run time
/// (mmap vs. buffered file, per [`mmap_enabled`]).
pub type DynSource = Box<dyn ChunkSource + Send + Sync>;

/// An ECA1 archive opened for shared (`&self`) reads over a
/// [`ChunkSource`].
///
/// ```
/// use exaclim_store::{Archive, ArchiveWriter, Codec, FieldMeta};
/// use std::io::Cursor;
///
/// let data: Vec<f64> = (0..6 * 10).map(|i| 280.0 + i as f64).collect();
/// let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
/// w.add_field("t2m", Codec::F32, FieldMeta::default(), 6, 4, &data).unwrap();
/// let (cursor, _) = w.finish().unwrap();
///
/// // In-memory archives serve borrowed, lock-free chunk views.
/// let archive = Archive::from_bytes(cursor.into_inner()).unwrap();
/// let slice = archive.read_field_slices("t2m", 3..7).unwrap();
/// assert_eq!(slice.len(), 4 * 6);
/// assert!(archive.read_chunk_stored(0, 0).unwrap().is_borrowed());
/// ```
pub struct Archive<S = DynSource> {
    source: S,
    members: Vec<MemberEntry>,
    /// Container length recorded by the directory (header + payload +
    /// directory + CRC).
    total_len: u64,
}

impl<S: ChunkSource> std::fmt::Debug for Archive<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Archive")
            .field("members", &self.members.len())
            .field("total_len", &self.total_len)
            .field("backend", &self.source.backend())
            .finish()
    }
}

impl Archive<DynSource> {
    /// Open the archive file at `path`, memory-mapping it when the
    /// platform supports it and `EXACLIM_MMAP` does not opt out, and
    /// falling back to a buffered reader behind a mutex otherwise.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, ArchiveError> {
        Self::open_with(path, mmap_enabled())
    }

    /// [`Archive::open`] with the mmap decision made by the caller
    /// (benches and tests compare the two backends directly).
    pub fn open_with(
        path: impl AsRef<std::path::Path>,
        use_mmap: bool,
    ) -> Result<Self, ArchiveError> {
        Self::from_source(open_file_source(path, use_mmap)?)
    }

    /// Open an in-memory archive (zero-copy, lock-free reads).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ArchiveError> {
        Self::from_source(Box::new(SharedBytes::from(bytes)))
    }

    /// Open an archive over any seekable stream (reads serialize on an
    /// internal mutex and return owned buffers).
    pub fn from_reader<R>(stream: R) -> Result<Self, ArchiveError>
    where
        R: std::io::Read + std::io::Seek + Send + 'static,
    {
        Self::from_source(Box::new(LockedReader::new(stream)?))
    }
}

impl<S: ChunkSource> Archive<S> {
    /// Validate the header, load and verify the directory.
    pub fn from_source(source: S) -> Result<Self, ArchiveError> {
        let stream_len = source.len();
        if stream_len < HEADER_LEN {
            return Err(ArchiveError::Corrupt(format!(
                "stream is {stream_len} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        let header_buf = source.read_at(0, HEADER_LEN as usize)?;
        let mut header: &[u8] = &header_buf;
        let mut magic = [0u8; 4];
        header.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let version = header.get_u16_le();
        if version != VERSION {
            return Err(ArchiveError::BadVersion(version));
        }
        let _flags = header.get_u16_le();
        let dir_offset = header.get_u64_le();
        let dir_len = header.get_u64_le();
        let total = dir_offset
            .checked_add(dir_len)
            .and_then(|v| v.checked_add(4))
            .filter(|_| dir_offset >= HEADER_LEN);
        let Some(total_len) = total else {
            return Err(ArchiveError::Corrupt(
                "directory offset/length out of range (unfinished archive?)".to_string(),
            ));
        };
        if stream_len < total_len {
            return Err(ArchiveError::Corrupt(format!(
                "stream is {stream_len} bytes but the directory needs {total_len}"
            )));
        }
        if stream_len > total_len {
            return Err(ArchiveError::TrailingBytes {
                expected: total_len,
                actual: stream_len,
            });
        }
        let mut dir = source.read_at(dir_offset, dir_len as usize + 4)?.into_vec();
        let crc_stored = u32::from_le_bytes(dir[dir_len as usize..].try_into().unwrap());
        dir.truncate(dir_len as usize);
        if crc32(&dir) != crc_stored {
            return Err(ArchiveError::Corrupt(
                "directory checksum mismatch".to_string(),
            ));
        }
        let members = crate::chunk::decode_directory(Bytes::from(dir))?;
        validate_members(&members, dir_offset)?;
        Ok(Self {
            source,
            members,
            total_len,
        })
    }

    /// All members, in write order.
    pub fn members(&self) -> &[MemberEntry] {
        &self.members
    }

    /// Total container length in bytes.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Short label of the byte-source backend ("mmap", "bytes", "stream").
    pub fn backend(&self) -> &'static str {
        self.source.backend()
    }

    /// True when chunk fetches are borrowed views served without locking
    /// (memory map, in-memory buffer) rather than copies read under a
    /// mutex.
    pub fn is_zero_copy(&self) -> bool {
        self.source.is_zero_copy()
    }

    /// Look up a member by name.
    pub fn member(&self, name: &str) -> Result<&MemberEntry, ArchiveError> {
        self.members
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| ArchiveError::MemberNotFound(name.to_string()))
    }

    /// Member index by name.
    pub fn member_index(&self, name: &str) -> Result<usize, ArchiveError> {
        self.members
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| ArchiveError::MemberNotFound(name.to_string()))
    }

    /// Bounds-check a `(member, chunk)` index pair from an external caller.
    fn check_chunk_indices(&self, member_idx: usize, chunk_idx: usize) -> Result<(), ArchiveError> {
        let Some(m) = self.members.get(member_idx) else {
            return Err(ArchiveError::BadRequest(format!(
                "member index {member_idx} out of range ({} members)",
                self.members.len()
            )));
        };
        if chunk_idx >= m.chunks.len() {
            return Err(ArchiveError::BadRequest(format!(
                "chunk index {chunk_idx} out of range for member `{}` ({} chunks)",
                m.name,
                m.chunks.len()
            )));
        }
        Ok(())
    }

    /// Fetch and checksum-verify the **stored** (possibly compressed)
    /// bytes of one chunk, without decoding them.
    ///
    /// This is the raw-fetch primitive the serving layer builds on. Over a
    /// zero-copy source the returned [`SourceBytes`] borrows straight from
    /// the mapping — no lock is taken and nothing is copied; over a
    /// [`LockedReader`] the read serializes on the source's mutex and an
    /// owned buffer comes back. Either way the CRC32 of the stored bytes
    /// is verified before they are returned, so a caller can never observe
    /// torn or corrupted payloads.
    pub fn read_chunk_stored(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<SourceBytes<'_>, ArchiveError> {
        self.check_chunk_indices(member_idx, chunk_idx)?;
        self.read_chunk_stored_unchecked(member_idx, chunk_idx)
    }

    /// [`Archive::read_chunk_stored`] for indices already known to be in
    /// range (internal read paths iterate validated directories).
    fn read_chunk_stored_unchecked(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<SourceBytes<'_>, ArchiveError> {
        let m = &self.members[member_idx];
        let c = m.chunks[chunk_idx];
        let stored = self
            .source
            .read_at(c.offset, c.stored_len as usize)
            .map_err(|e| match e {
                ArchiveError::Io(_) => ArchiveError::TruncatedChunk {
                    member: m.name.clone(),
                    chunk: chunk_idx,
                },
                other => other,
            })?;
        if crc32(&stored) != c.crc32 {
            return Err(ArchiveError::ChecksumMismatch {
                member: m.name.clone(),
                chunk: chunk_idx,
            });
        }
        Ok(stored)
    }

    /// Read, checksum-verify, and decode **all** values of one field chunk
    /// (`chunks[chunk_idx].t_len × values_per_slice` values, time-major).
    ///
    /// This is the unit a chunk cache stores: whole decoded chunks keyed by
    /// `(member, chunk)`, from which any overlapping time-range slice can
    /// be assembled without touching the source again.
    pub fn read_field_chunk(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ArchiveError> {
        self.check_chunk_indices(member_idx, chunk_idx)?;
        self.decode_field_chunk(member_idx, chunk_idx)
    }

    /// Decode all values of one field chunk (indices already validated).
    fn decode_field_chunk(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ArchiveError> {
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Field {
            return Err(ArchiveError::BadRequest(format!(
                "member `{}` is not a field",
                m.name
            )));
        }
        let codec = Codec::from_id(m.codec)?;
        let c = m.chunks[chunk_idx];
        let n_values = c.t_len as usize * m.values_per_slice as usize;
        if c.raw_len != (n_values * codec.value_width()) as u64 {
            return Err(ArchiveError::Corrupt(format!(
                "chunk {chunk_idx} of `{}` records raw_len {} for {n_values} values",
                m.name, c.raw_len
            )));
        }
        let stored = self.read_chunk_stored_unchecked(member_idx, chunk_idx)?;
        codec.decode(&stored, n_values)
    }

    /// Read time slices `range` of a field member, without touching
    /// chunks outside the range. Returns `(t1 − t0) × values_per_slice`
    /// values, time-major.
    pub fn read_field_slices(
        &self,
        name: &str,
        range: Range<u64>,
    ) -> Result<Vec<f64>, ArchiveError> {
        let member_idx = self.member_index(name)?;
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Field {
            return Err(ArchiveError::BadRequest(format!(
                "member `{name}` is not a field"
            )));
        }
        if range.start > range.end || range.end > m.t_max {
            return Err(ArchiveError::BadRequest(format!(
                "slice range {}..{} out of bounds for {} time steps",
                range.start, range.end, m.t_max
            )));
        }
        let vps = m.values_per_slice as usize;
        // Chunks tile the member contiguously (validated at open), so the
        // overlapping chunks arrive in time order and concatenating their
        // in-range parts assembles the slice. Growing the buffer from
        // decoded data (rather than pre-allocating from directory fields)
        // bounds memory by what the payload actually decodes to.
        let mut out: Vec<f64> = Vec::new();
        for chunk_idx in m.chunks_for_range(range.start, range.end) {
            let c = m.chunks[chunk_idx];
            let values = self.decode_field_chunk(member_idx, chunk_idx)?;
            let lo = range.start.max(c.t0);
            let hi = range.end.min(c.t0 + u64::from(c.t_len));
            let a = (lo - c.t0) as usize * vps;
            let b = (hi - c.t0) as usize * vps;
            out.extend_from_slice(&values[a..b]);
        }
        debug_assert_eq!(out.len(), (range.end - range.start) as usize * vps);
        Ok(out)
    }

    /// Read every time slice of a field member.
    pub fn read_field_all(&self, name: &str) -> Result<Vec<f64>, ArchiveError> {
        let t_max = self.member(name)?.t_max;
        self.read_field_slices(name, 0..t_max)
    }

    /// Read a snapshot blob, returning `(schema_version, payload)`.
    pub fn read_snapshot(&self, name: &str) -> Result<(u32, Vec<u8>), ArchiveError> {
        let member_idx = self.member_index(name)?;
        let m = &self.members[member_idx];
        if m.kind != MemberKind::Snapshot {
            return Err(ArchiveError::BadRequest(format!(
                "member `{name}` is not a snapshot"
            )));
        }
        let codec = ByteCodec::from_id(m.codec)?;
        let version = m.snapshot_version;
        let total = m.t_max as usize;
        // Decode every chunk straight into the result buffer; `total`
        // comes from the directory and is only trusted as a final
        // consistency check.
        let mut out = Vec::new();
        for chunk_idx in 0..m.chunks.len() {
            let c = m.chunks[chunk_idx];
            let stored = self.read_chunk_stored_unchecked(member_idx, chunk_idx)?;
            codec.decode_into(&stored, c.raw_len as usize, &mut out)?;
        }
        if out.len() != total {
            return Err(ArchiveError::Corrupt(format!(
                "snapshot `{name}` decodes to {} bytes, directory records {total}",
                out.len()
            )));
        }
        Ok((version, out))
    }

    /// Verify every chunk checksum in the archive.
    pub fn verify(&self) -> Result<(), ArchiveError> {
        for member_idx in 0..self.members.len() {
            for chunk_idx in 0..self.members[member_idx].chunks.len() {
                self.read_chunk_stored_unchecked(member_idx, chunk_idx)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::FieldMeta;
    use crate::writer::ArchiveWriter;
    use std::io::Cursor;

    fn build(codec: Codec) -> (Vec<u8>, Vec<f64>) {
        let data: Vec<f64> = (0..20 * 17)
            .map(|i| 280.0 + 10.0 * (i as f64 * 0.02).sin())
            .collect();
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("t2m", codec, FieldMeta::default(), 20, 5, &data)
            .unwrap();
        w.add_snapshot("model", 3, ByteCodec::Rle, b"{\"k\":[1,2,3]}", 8)
            .unwrap();
        let (cursor, _) = w.finish().unwrap();
        (cursor.into_inner(), data)
    }

    #[test]
    fn shared_archive_reads_match_for_all_codecs() {
        for codec in Codec::ALL {
            let (raw, data) = build(codec);
            let archive = Archive::from_bytes(raw).unwrap();
            assert!(archive.is_zero_copy());
            assert_eq!(archive.backend(), "bytes");
            let expect: Vec<f64> = data.iter().map(|&x| codec.quantize(x)).collect();
            assert_eq!(archive.read_field_all("t2m").unwrap(), expect);
            let part = archive.read_field_slices("t2m", 4..11).unwrap();
            assert_eq!(part, expect[4 * 20..11 * 20]);
            let (version, blob) = archive.read_snapshot("model").unwrap();
            assert_eq!(
                (version, blob.as_slice()),
                (3, b"{\"k\":[1,2,3]}".as_slice())
            );
            archive.verify().unwrap();
        }
    }

    #[test]
    fn stored_chunk_views_borrow_from_shared_bytes() {
        let (raw, _) = build(Codec::F32Shuffle);
        let archive = Archive::from_bytes(raw).unwrap();
        let view = archive.read_chunk_stored(0, 0).unwrap();
        assert!(view.is_borrowed(), "in-memory fetches must be zero-copy");
    }

    #[test]
    fn reader_backed_archive_reads_owned_buffers() {
        let (raw, data) = build(Codec::Raw64);
        let archive = Archive::from_reader(Cursor::new(raw)).unwrap();
        assert!(!archive.is_zero_copy());
        assert_eq!(archive.backend(), "stream");
        assert!(!archive.read_chunk_stored(0, 0).unwrap().is_borrowed());
        assert_eq!(archive.read_field_all("t2m").unwrap(), data);
    }

    #[test]
    fn concurrent_shared_reads_are_bit_identical() {
        let (raw, data) = build(Codec::F32);
        let archive = std::sync::Arc::new(Archive::from_bytes(raw).unwrap());
        let expect: Vec<f64> = data.iter().map(|&x| Codec::F32.quantize(x)).collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let archive = std::sync::Arc::clone(&archive);
                let expect = expect.clone();
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let lo = (i * 3) as u64;
                        let got = archive.read_field_slices("t2m", lo..17).unwrap();
                        assert_eq!(got, expect[lo as usize * 20..]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapped_and_buffered_file_opens_agree() {
        let (raw, _) = build(Codec::F16Shuffle);
        let path =
            std::env::temp_dir().join(format!("exaclim_archive_open_{}.eca1", std::process::id()));
        std::fs::write(&path, &raw).unwrap();
        let mapped = Archive::open_with(&path, true).unwrap();
        let buffered = Archive::open_with(&path, false).unwrap();
        assert_eq!(mapped.backend(), "mmap");
        assert_eq!(buffered.backend(), "stream");
        assert_eq!(
            mapped.read_field_all("t2m").unwrap(),
            buffered.read_field_all("t2m").unwrap()
        );
        assert_eq!(
            mapped.read_snapshot("model").unwrap(),
            buffered.read_snapshot("model").unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_chunk_is_detected_through_any_source() {
        let (mut raw, _) = build(Codec::F32);
        let offset = {
            let archive = Archive::from_bytes(raw.clone()).unwrap();
            archive.members()[0].chunks[1].offset as usize
        };
        raw[offset + 2] ^= 0x10;
        let archive = Archive::from_bytes(raw).unwrap();
        assert!(archive.read_field_slices("t2m", 0..5).is_ok());
        assert_eq!(
            archive.read_field_all("t2m").unwrap_err(),
            ArchiveError::ChecksumMismatch {
                member: "t2m".to_string(),
                chunk: 1
            }
        );
        assert!(archive.verify().is_err());
    }
}
