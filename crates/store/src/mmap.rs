//! Memory-mapped archive bytes (64-bit unix).
//!
//! A mapped archive turns every chunk fetch into a borrowed `&[u8]` view
//! of the page cache: no seek, no read syscall, no copy, and — because
//! views are handed out from `&self` — no lock. This is the zero-copy
//! fast path the serving layer prefers for file-backed archives.
//!
//! The container has no registry access, so instead of `memmap2` this
//! module carries its own minimal FFI surface: `mmap`/`munmap` from the C
//! library (always linked by `std` on unix), wrapped in [`Mmap`], a safe
//! owner that unmaps on drop. The wrapper only ever creates read-only
//! private mappings, and the borrow checker ties every view's lifetime to
//! the mapping — reads after an unmap are impossible by construction, not
//! by discipline. The FFI declares the file offset as `i64`, which
//! matches `off_t` only where it is 64-bit, so the backend is gated to
//! `target_pointer_width = "64"` — 32-bit unix targets take the buffered
//! fallback rather than risk an ABI mismatch.
//!
//! **Mapped files must not change underneath the mapping.** A mapping
//! reflects the file's pages live: another process truncating or
//! rewriting the archive mid-serve can turn a chunk fetch into a fatal
//! `SIGBUS` instead of the clean [`ArchiveError`] the buffered path
//! returns. Treat served `.eca1` files as immutable while open (the
//! writer's create-then-finish discipline already produces
//! write-once artifacts); replace archives by renaming a new file into
//! place and reopening, never by editing in place.
//!
//! On other targets (or when the `EXACLIM_MMAP=0` escape hatch is set —
//! see [`mmap_enabled`]) file-backed archives fall back to the buffered
//! [`crate::source::LockedReader`] path; [`open_file_source`] encapsulates
//! that policy.

use crate::format::ArchiveError;
use crate::source::{ChunkSource, LockedReader, SourceBytes};
use std::path::Path;

/// True when this build target has the memory-mapped backend at all
/// (64-bit unix); other targets always serve files through the buffered
/// fallback, whatever `EXACLIM_MMAP` says.
pub const MMAP_SUPPORTED: bool = cfg!(all(unix, target_pointer_width = "64"));

/// True unless `EXACLIM_MMAP=0` disables memory-mapped archive reads
/// (useful to force the portable buffered path for A/B comparisons and
/// CI coverage of the fallback).
pub fn mmap_enabled() -> bool {
    mmap_flag(std::env::var_os("EXACLIM_MMAP").as_deref())
}

/// Policy behind [`mmap_enabled`], split out for direct testing: only the
/// literal value `0` opts out.
fn mmap_flag(var: Option<&std::ffi::OsStr>) -> bool {
    var.is_none_or(|v| v != "0")
}

/// Open the archive file at `path` as a boxed [`ChunkSource`], preferring
/// a memory map when `use_mmap` is set and the platform supports it, and
/// falling back to a buffered reader behind a mutex otherwise.
pub fn open_file_source(
    path: impl AsRef<Path>,
    use_mmap: bool,
) -> Result<Box<dyn ChunkSource + Send + Sync>, ArchiveError> {
    let file = std::fs::File::open(path.as_ref())?;
    #[cfg(all(unix, target_pointer_width = "64"))]
    if use_mmap {
        return Ok(Box::new(Mmap::map(&file)?));
    }
    let _ = use_mmap; // unsupported target: the flag has nothing to select
    Ok(Box::new(LockedReader::new(std::io::BufReader::new(file))?))
}

#[cfg(all(unix, target_pointer_width = "64"))]
pub use unix::Mmap;

#[cfg(all(unix, target_pointer_width = "64"))]
mod unix {
    use super::*;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::ptr::NonNull;

    // Minimal FFI surface of the C library's mapping calls. `std` links
    // libc on every unix target, so no external crate is needed. The
    // constant values below are shared by Linux and the BSDs/macOS for
    // the flags this module uses.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private memory mapping of one file, unmapped on drop.
    ///
    /// The mapping is immutable for its whole lifetime and owned uniquely
    /// by this value, so handing out `&[u8]` views from `&self` is sound;
    /// `Send + Sync` because concurrent reads of immutable pages race with
    /// nothing.
    pub struct Mmap {
        /// Mapping base; dangling (and never passed to `munmap`) for the
        /// zero-length mapping, which `mmap(2)` itself refuses to create.
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is read-only and uniquely owned; views are tied
    // to `&self` borrows, so aliasing is the ordinary shared-read kind.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl std::fmt::Debug for Mmap {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mmap").field("len", &self.len).finish()
        }
    }

    impl Mmap {
        /// Map the whole of `file` read-only.
        pub fn map(file: &File) -> Result<Self, ArchiveError> {
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(ArchiveError::Corrupt(format!(
                    "file of {len} bytes cannot be mapped on this platform"
                )));
            }
            let len = len as usize;
            if len == 0 {
                // mmap(2) rejects zero-length mappings; an empty file is
                // simply an empty (and invalid) archive.
                return Ok(Self {
                    ptr: NonNull::dangling(),
                    len: 0,
                });
            }
            // SAFETY: requesting a fresh read-only private mapping of a
            // file descriptor we hold open; the kernel picks the address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(ArchiveError::Io(format!(
                    "mmap failed: {}",
                    std::io::Error::last_os_error()
                )));
            }
            let ptr = NonNull::new(ptr.cast::<u8>())
                .ok_or_else(|| ArchiveError::Io("mmap returned a null mapping".to_string()))?;
            Ok(Self { ptr, len })
        }

        /// Map the archive file at `path` read-only.
        pub fn open(path: impl AsRef<Path>) -> Result<Self, ArchiveError> {
            Self::map(&File::open(path)?)
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live read-only mapping of `len` bytes for
            // as long as `self` exists, and no mutable alias can exist.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: unmapping the exact region this value mapped;
                // all views borrowed from it have ended (borrow checker).
                unsafe { munmap(self.ptr.as_ptr().cast(), self.len) };
            }
        }
    }

    impl ChunkSource for Mmap {
        fn len(&self) -> u64 {
            self.len as u64
        }
        fn read_at(&self, offset: u64, len: usize) -> Result<SourceBytes<'_>, ArchiveError> {
            let range = crate::source::checked_range(offset, len, self.len as u64)?;
            Ok(SourceBytes::Borrowed(&self.as_slice()[range]))
        }
        fn is_zero_copy(&self) -> bool {
            true
        }
        fn backend(&self) -> &'static str {
            "mmap"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_flag_parses() {
        assert!(mmap_flag(None));
        assert!(mmap_flag(Some(std::ffi::OsStr::new("1"))));
        assert!(mmap_flag(Some(std::ffi::OsStr::new(""))));
        assert!(!mmap_flag(Some(std::ffi::OsStr::new("0"))));
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapped_file_reads_back_bit_identically() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("exaclim_mmap_test_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), 4096);
        assert!(map.is_zero_copy());
        assert_eq!(map.backend(), "mmap");
        assert_eq!(map.as_slice(), &payload[..]);
        let view = map.read_at(100, 32).unwrap();
        assert!(view.is_borrowed());
        assert_eq!(&view[..], &payload[100..132]);
        assert!(map.read_at(4090, 10).is_err());
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn empty_files_map_to_empty_slices() {
        let path =
            std::env::temp_dir().join(format!("exaclim_mmap_empty_{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), 0);
        assert!(map.as_slice().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_respects_the_mmap_switch() {
        let path = std::env::temp_dir().join(format!("exaclim_srcsel_{}.bin", std::process::id()));
        std::fs::write(&path, b"0123456789").unwrap();
        let buffered = open_file_source(&path, false).unwrap();
        assert_eq!(buffered.backend(), "stream");
        assert_eq!(&buffered.read_at(2, 3).unwrap()[..], b"234");
        let preferred = open_file_source(&path, true).unwrap();
        assert_eq!(
            preferred.backend(),
            if MMAP_SUPPORTED { "mmap" } else { "stream" }
        );
        assert_eq!(&preferred.read_at(2, 3).unwrap()[..], b"234");
        std::fs::remove_file(&path).ok();
    }
}
