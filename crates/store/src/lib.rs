//! # exaclim-store
//!
//! The durable layer of the storage-savings story. The paper's headline is
//! replacing petabyte-scale ESM archives with a trained emulator
//! (conf_sc_AbdulahBBCCGKKL24 §I/§VI); this crate supplies the on-disk
//! artifact for both sides of that ledger: a self-describing container
//! ("ECA1") holding
//!
//! * **field members** — time-chunked gridded payloads in one of several
//!   precision codecs (the same f64/f32/f16 discipline the paper applies
//!   to the tile Cholesky), optionally byte-shuffled and run-length
//!   compressed, each chunk protected by a CRC32 checksum, and
//! * **snapshot members** — versioned opaque blobs (trained emulators),
//!   so a model trained once can be reloaded and re-emulate bit-identically.
//!
//! Layout (byte-exact details in the repository README):
//!
//! ```text
//! header (32 B) | chunk payloads … | directory | directory CRC32
//! ```
//!
//! The directory lives at the end so [`writer::ArchiveWriter`] can stream
//! chunks without knowing member sizes up front; the header is patched
//! with the directory offset on [`writer::ArchiveWriter::finish`].
//! [`reader::ArchiveReader`] seeks straight to any `(member, time-range)`
//! slice and decodes only the chunks that overlap it.
//!
//! ## Format invariants
//!
//! * Every chunk's CRC32 covers its **stored** bytes, so corruption is
//!   detected before decoding and attributed to one `(member, chunk)`;
//!   intact chunks of a damaged archive stay readable.
//! * A member's chunks tile `[0, t_max)` contiguously; the reader rejects
//!   gaps, overlaps, and size claims inconsistent with the member's codec
//!   and geometry at open time ([`format::MAX_CHUNK_RAW_LEN`] bounds what a
//!   hostile directory can make it allocate).
//! * The stream must end exactly at `directory offset + length + CRC` —
//!   truncation and trailing garbage are both errors, never silent.
//! * Codec ids are stable wire values ([`Codec::id`]): 0 = `Raw64`,
//!   1 = `F32`, 2 = `F16`, 3 = `F32Shuffle`, 4 = `F16Shuffle`; snapshot
//!   members use [`ByteCodec::id`] (0 = raw, 1 = RLE) in the same field.
//!
//! ## Example
//!
//! Write an archive to any `Write + Seek` sink and slice it back:
//!
//! ```
//! use exaclim_store::{ArchiveReader, ArchiveWriter, Codec, FieldMeta};
//! use std::io::Cursor;
//!
//! let meta = FieldMeta { ntheta: 2, nphi: 3, start_year: 2000, tau: 365 };
//! let data: Vec<f64> = (0..6 * 10).map(|i| 280.0 + i as f64).collect();
//!
//! let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
//! w.add_field("t2m", Codec::Raw64, meta, 6, 4, &data).unwrap();
//! let (cursor, total) = w.finish().unwrap();
//!
//! let bytes = cursor.into_inner();
//! assert_eq!(bytes.len() as u64, total);
//! let mut r = ArchiveReader::new(Cursor::new(bytes)).unwrap();
//! // Steps 3..7 of the field: 4 slices × 6 values, crossing a chunk seam.
//! let part = r.read_field_slices("t2m", 3..7).unwrap();
//! assert_eq!(part, data[3 * 6..7 * 6]);
//! ```
//!
//! Modules:
//!
//! * [`mod@format`] — magic/version constants, error type, CRC32
//!   (slice-by-8),
//! * [`chunk`] — directory model and its binary encoding,
//! * [`codec`] — payload codecs (`Raw64`, `F32`, `F16`, shuffled+RLE),
//! * [`writer`] / [`reader`] — streaming append and exclusive-handle
//!   random-access read,
//! * [`mod@source`] / [`mod@mmap`] — byte-source backends: zero-copy
//!   in-memory and memory-mapped sources, and the mutex-guarded stream
//!   fallback,
//! * [`mod@archive`] — shared `&self` reads over any source (the serving
//!   layer's concurrent fast path),
//! * [`snapshot`] — versioned save/load of opaque snapshot blobs.

#![warn(missing_docs)]

pub mod archive;
pub mod chunk;
pub mod codec;
pub mod format;
pub mod mmap;
pub mod reader;
pub mod snapshot;
pub mod source;
pub mod writer;

pub use archive::{Archive, DynSource};
pub use chunk::{ChunkEntry, FieldMeta, MemberEntry};
pub use codec::{ByteCodec, Codec};
pub use format::{crc32, crc32_update, ArchiveError, MemberKind};
pub use mmap::{mmap_enabled, open_file_source, MMAP_SUPPORTED};
pub use reader::ArchiveReader;
pub use snapshot::{read_snapshot_file, write_snapshot_file, Snapshot};
pub use source::{ChunkSource, LockedReader, SharedBytes, SourceBytes};
pub use writer::ArchiveWriter;

#[cfg(all(unix, target_pointer_width = "64"))]
pub use mmap::Mmap;
