//! # exaclim-store
//!
//! The durable layer of the storage-savings story. The paper's headline is
//! replacing petabyte-scale ESM archives with a trained emulator
//! (conf_sc_AbdulahBBCCGKKL24 §I/§VI); this crate supplies the on-disk
//! artifact for both sides of that ledger: a self-describing container
//! ("ECA1") holding
//!
//! * **field members** — time-chunked gridded payloads in one of several
//!   precision codecs (the same f64/f32/f16 discipline the paper applies
//!   to the tile Cholesky), optionally byte-shuffled and run-length
//!   compressed, each chunk protected by a CRC32 checksum, and
//! * **snapshot members** — versioned opaque blobs (trained emulators),
//!   so a model trained once can be reloaded and re-emulate bit-identically.
//!
//! Layout (byte-exact details in the repository README):
//!
//! ```text
//! header (32 B) | chunk payloads … | directory | directory CRC32
//! ```
//!
//! The directory lives at the end so [`writer::ArchiveWriter`] can stream
//! chunks without knowing member sizes up front; the header is patched
//! with the directory offset on [`writer::ArchiveWriter::finish`].
//! [`reader::ArchiveReader`] seeks straight to any `(member, time-range)`
//! slice and decodes only the chunks that overlap it.
//!
//! Modules:
//!
//! * [`format`] — magic/version constants, error type, CRC32,
//! * [`chunk`] — directory model and its binary encoding,
//! * [`codec`] — payload codecs (`Raw64`, `F32`, `F16`, shuffled+RLE),
//! * [`writer`] / [`reader`] — streaming append and random-access read,
//! * [`snapshot`] — versioned save/load of opaque snapshot blobs.

pub mod chunk;
pub mod codec;
pub mod format;
pub mod reader;
pub mod snapshot;
pub mod writer;

pub use chunk::{ChunkEntry, FieldMeta, MemberEntry};
pub use codec::{ByteCodec, Codec};
pub use format::{ArchiveError, MemberKind};
pub use reader::ArchiveReader;
pub use snapshot::{read_snapshot_file, write_snapshot_file, Snapshot};
pub use writer::ArchiveWriter;
