//! Streaming archive writer.
//!
//! Chunks are written to the stream as soon as they fill, so an ensemble
//! member larger than memory can be appended slice-by-slice; the directory
//! is held in memory (a few hundred bytes per member) and written at
//! [`ArchiveWriter::finish`], which then patches the header with its
//! location.

use crate::chunk::{encode_directory_with_crc, ChunkEntry, FieldMeta, MemberEntry};
use crate::codec::{ByteCodec, Codec};
use crate::format::{
    crc32, ArchiveError, MemberKind, HEADER_LEN, MAGIC, MAX_CHUNK_RAW_LEN, VERSION,
};
use bytes::{BufMut, BytesMut};
use std::io::{Seek, SeekFrom, Write};

/// A field member currently being appended to.
struct OpenField {
    entry: MemberEntry,
    codec: Codec,
    /// Pending values not yet forming a full chunk.
    pending: Vec<f64>,
}

/// Streaming ECA1 writer over any `Write + Seek` sink.
///
/// Fields can be appended slice-by-slice; chunks are encoded and flushed
/// as soon as they fill, so peak memory is one chunk regardless of member
/// size:
///
/// ```
/// use exaclim_store::{ArchiveReader, ArchiveWriter, Codec, FieldMeta};
/// use std::io::Cursor;
///
/// let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
/// w.begin_field("u10", Codec::F32, FieldMeta::default(), 4, 2).unwrap();
/// for step in 0..5 {
///     let slice = [step as f64; 4]; // one 4-value time slice
///     w.append_slices(&slice).unwrap();
/// }
/// w.finish_field().unwrap();
/// let (cursor, _total) = w.finish().unwrap();
///
/// let mut r = ArchiveReader::new(cursor).unwrap();
/// let m = r.member("u10").unwrap();
/// assert_eq!((m.t_max, m.chunks.len()), (5, 3)); // 2 + 2 + 1 steps
/// assert_eq!(r.read_field_slices("u10", 4..5).unwrap(), [4.0; 4]);
/// ```
pub struct ArchiveWriter<W: Write + Seek> {
    sink: W,
    /// Next payload byte offset.
    pos: u64,
    members: Vec<MemberEntry>,
    open: Option<OpenField>,
}

impl ArchiveWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) an archive file.
    pub fn create(path: impl AsRef<std::path::Path>) -> Result<Self, ArchiveError> {
        let file = std::fs::File::create(path)?;
        Self::new(std::io::BufWriter::new(file))
    }
}

impl<W: Write + Seek> ArchiveWriter<W> {
    /// Start an archive on `sink`, writing the placeholder header.
    pub fn new(mut sink: W) -> Result<Self, ArchiveError> {
        let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
        header.put_slice(&MAGIC);
        header.put_u16_le(VERSION);
        header.put_u16_le(0); // flags, reserved
        header.put_u64_le(0); // directory offset, patched in finish()
        header.put_u64_le(0); // directory length, patched in finish()
        header.put_u64_le(0); // reserved
        sink.write_all(&header)?;
        Ok(Self {
            sink,
            pos: HEADER_LEN,
            members: Vec::new(),
            open: None,
        })
    }

    fn check_name(&self, name: &str) -> Result<(), ArchiveError> {
        if name.is_empty() || name.len() > u16::MAX as usize {
            return Err(ArchiveError::BadRequest(format!(
                "member name length {} out of range",
                name.len()
            )));
        }
        if self.members.iter().any(|m| m.name == name)
            || self.open.as_ref().is_some_and(|o| o.entry.name == name)
        {
            return Err(ArchiveError::DuplicateMember(name.to_string()));
        }
        Ok(())
    }

    /// Begin a streaming field member. `values_per_slice` is the grid size
    /// of one time slice, `chunk_t` the number of slices per chunk.
    pub fn begin_field(
        &mut self,
        name: &str,
        codec: Codec,
        meta: FieldMeta,
        values_per_slice: usize,
        chunk_t: usize,
    ) -> Result<(), ArchiveError> {
        if self.open.is_some() {
            return Err(ArchiveError::BadRequest(
                "a field member is already open; call finish_field first".to_string(),
            ));
        }
        self.check_name(name)?;
        if values_per_slice == 0 || chunk_t == 0 || chunk_t > u32::MAX as usize {
            return Err(ArchiveError::BadRequest(
                "values_per_slice and chunk_t must be positive (chunk_t ≤ u32::MAX)".to_string(),
            ));
        }
        let chunk_raw = (chunk_t as u64)
            .checked_mul(values_per_slice as u64)
            .and_then(|v| v.checked_mul(codec.value_width() as u64));
        if chunk_raw.is_none_or(|v| v > MAX_CHUNK_RAW_LEN) {
            return Err(ArchiveError::BadRequest(format!(
                "chunk of {chunk_t} × {values_per_slice} values exceeds the \
                 {MAX_CHUNK_RAW_LEN}-byte chunk limit; lower chunk_t"
            )));
        }
        self.open = Some(OpenField {
            entry: MemberEntry {
                name: name.to_string(),
                kind: MemberKind::Field,
                codec: codec.id(),
                snapshot_version: 0,
                meta,
                t_max: 0,
                chunk_t: chunk_t as u32,
                values_per_slice: values_per_slice as u64,
                chunks: Vec::new(),
            },
            codec,
            pending: Vec::new(),
        });
        Ok(())
    }

    /// Append whole time slices (`values.len()` must be a multiple of
    /// `values_per_slice`) to the open field member.
    pub fn append_slices(&mut self, values: &[f64]) -> Result<(), ArchiveError> {
        let open = self.open.as_mut().ok_or_else(|| {
            ArchiveError::BadRequest("no field member open; call begin_field".to_string())
        })?;
        let vps = open.entry.values_per_slice as usize;
        if !values.len().is_multiple_of(vps) {
            return Err(ArchiveError::BadRequest(format!(
                "{} values is not a whole number of {vps}-value slices",
                values.len()
            )));
        }
        let chunk_values = open.entry.chunk_t as usize * vps;
        let mut input = values;
        // Top up a pending partial chunk first (invariant: pending holds
        // less than one chunk between calls).
        if !open.pending.is_empty() {
            let take = (chunk_values - open.pending.len()).min(input.len());
            open.pending.extend_from_slice(&input[..take]);
            input = &input[take..];
            if open.pending.len() == chunk_values {
                let full = std::mem::take(&mut open.pending);
                Self::write_chunk_of(&mut self.sink, &mut self.pos, open, &full)?;
            }
        }
        // Encode full chunks straight out of the caller's slice — no
        // buffering, no per-chunk copies of the remaining tail.
        while input.len() >= chunk_values {
            let (chunk, rest) = input.split_at(chunk_values);
            Self::write_chunk_of(&mut self.sink, &mut self.pos, open, chunk)?;
            input = rest;
        }
        // Buffer only the final partial chunk.
        open.pending.extend_from_slice(input);
        Ok(())
    }

    /// Encode `values` (a whole number of slices) as one chunk of `open`.
    fn write_chunk_of(
        sink: &mut W,
        pos: &mut u64,
        open: &mut OpenField,
        values: &[f64],
    ) -> Result<(), ArchiveError> {
        let vps = open.entry.values_per_slice as usize;
        let t_len = values.len() / vps;
        let stored = open.codec.encode(values);
        sink.write_all(&stored)?;
        open.entry.chunks.push(ChunkEntry {
            offset: *pos,
            stored_len: stored.len() as u64,
            raw_len: (values.len() * open.codec.value_width()) as u64,
            t0: open.entry.t_max,
            t_len: t_len as u32,
            crc32: crc32(&stored),
        });
        open.entry.t_max += t_len as u64;
        *pos += stored.len() as u64;
        Ok(())
    }

    /// Close the open field member, flushing any partial final chunk.
    pub fn finish_field(&mut self) -> Result<(), ArchiveError> {
        let mut open = self
            .open
            .take()
            .ok_or_else(|| ArchiveError::BadRequest("no field member open".to_string()))?;
        if !open.pending.is_empty() {
            let tail = std::mem::take(&mut open.pending);
            Self::write_chunk_of(&mut self.sink, &mut self.pos, &mut open, &tail)?;
        }
        self.members.push(open.entry);
        Ok(())
    }

    /// Convenience: write a complete field member in one call.
    pub fn add_field(
        &mut self,
        name: &str,
        codec: Codec,
        meta: FieldMeta,
        values_per_slice: usize,
        chunk_t: usize,
        data: &[f64],
    ) -> Result<(), ArchiveError> {
        self.begin_field(name, codec, meta, values_per_slice, chunk_t)?;
        self.append_slices(data)?;
        self.finish_field()
    }

    /// Add a versioned snapshot blob, chunked every `chunk_bytes`.
    pub fn add_snapshot(
        &mut self,
        name: &str,
        version: u32,
        codec: ByteCodec,
        payload: &[u8],
        chunk_bytes: usize,
    ) -> Result<(), ArchiveError> {
        if self.open.is_some() {
            return Err(ArchiveError::BadRequest(
                "a field member is open; call finish_field first".to_string(),
            ));
        }
        self.check_name(name)?;
        if chunk_bytes == 0 || chunk_bytes as u64 > MAX_CHUNK_RAW_LEN {
            return Err(ArchiveError::BadRequest(format!(
                "chunk_bytes must be positive and ≤ {MAX_CHUNK_RAW_LEN}"
            )));
        }
        let mut entry = MemberEntry {
            name: name.to_string(),
            kind: MemberKind::Snapshot,
            codec: codec.id(),
            snapshot_version: version,
            meta: FieldMeta::default(),
            t_max: payload.len() as u64,
            chunk_t: chunk_bytes as u32,
            values_per_slice: 0,
            chunks: Vec::new(),
        };
        let mut t0 = 0u64;
        // `chunks(…)` never yields an empty slice, so an empty payload
        // stores zero chunks and decodes back to an empty blob.
        for part in payload.chunks(chunk_bytes) {
            let stored = codec.encode(part);
            self.sink.write_all(&stored)?;
            entry.chunks.push(ChunkEntry {
                offset: self.pos,
                stored_len: stored.len() as u64,
                raw_len: part.len() as u64,
                t0,
                t_len: part.len() as u32,
                crc32: crc32(&stored),
            });
            t0 += part.len() as u64;
            self.pos += stored.len() as u64;
        }
        self.members.push(entry);
        Ok(())
    }

    /// Bytes of payload written so far (excluding header and directory).
    pub fn payload_bytes(&self) -> u64 {
        self.pos - HEADER_LEN
    }

    /// Write the directory, patch the header, flush, and return the sink.
    /// The total container length is the returned value.
    pub fn finish(mut self) -> Result<(W, u64), ArchiveError> {
        if self.open.is_some() {
            return Err(ArchiveError::BadRequest(
                "a field member is still open; call finish_field first".to_string(),
            ));
        }
        let dir = encode_directory_with_crc(&self.members);
        let dir_offset = self.pos;
        let dir_len = (dir.len() - 4) as u64; // directory proper, sans CRC
        self.sink.write_all(&dir)?;
        self.sink.seek(SeekFrom::Start(8))?;
        let mut patch = BytesMut::with_capacity(16);
        patch.put_u64_le(dir_offset);
        patch.put_u64_le(dir_len);
        self.sink.write_all(&patch)?;
        self.sink.flush()?;
        let total = dir_offset + dir_len + 4;
        Ok((self.sink, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn streaming_appends_match_one_shot() {
        let meta = FieldMeta {
            ntheta: 3,
            nphi: 4,
            start_year: 2000,
            tau: 365,
        };
        let data: Vec<f64> = (0..12 * 10).map(|i| i as f64 * 0.25).collect();

        let mut one = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        one.add_field("x", Codec::Raw64, meta, 12, 4, &data)
            .unwrap();
        let (one, len_one) = one.finish().unwrap();

        let mut streamed = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        streamed
            .begin_field("x", Codec::Raw64, meta, 12, 4)
            .unwrap();
        for slice in data.chunks(12) {
            streamed.append_slices(slice).unwrap();
        }
        streamed.finish_field().unwrap();
        let (streamed, len_streamed) = streamed.finish().unwrap();

        assert_eq!(one.into_inner(), streamed.into_inner());
        assert_eq!(len_one, len_streamed);
    }

    #[test]
    fn partial_final_chunk_is_flushed() {
        let meta = FieldMeta::default();
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.begin_field("x", Codec::Raw64, meta, 2, 4).unwrap();
        w.append_slices(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap(); // 3 slices
        w.finish_field().unwrap();
        assert_eq!(w.members[0].chunks.len(), 1);
        assert_eq!(w.members[0].t_max, 3);
        assert_eq!(w.members[0].chunks[0].t_len, 3);
    }

    #[test]
    fn guards_reject_misuse() {
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        assert!(matches!(
            w.append_slices(&[0.0]),
            Err(ArchiveError::BadRequest(_))
        ));
        w.begin_field("x", Codec::F32, FieldMeta::default(), 4, 2)
            .unwrap();
        assert!(matches!(
            w.begin_field("y", Codec::F32, FieldMeta::default(), 4, 2),
            Err(ArchiveError::BadRequest(_))
        ));
        assert!(matches!(
            w.append_slices(&[0.0; 3]),
            Err(ArchiveError::BadRequest(_))
        ));
        w.finish_field().unwrap();
        assert!(matches!(
            w.add_field("x", Codec::F32, FieldMeta::default(), 1, 1, &[0.0]),
            Err(ArchiveError::DuplicateMember(_))
        ));
    }

    #[test]
    fn empty_snapshot_is_representable() {
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_snapshot("s", 1, ByteCodec::Raw, &[], 1024).unwrap();
        assert_eq!(w.members[0].chunks.len(), 0);
        assert_eq!(w.members[0].t_max, 0);
        w.finish().unwrap();
    }
}
