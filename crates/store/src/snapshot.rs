//! Versioned snapshots of trained models.
//!
//! A snapshot is an opaque payload (typically a serialized
//! `TrainedEmulator`) stored as an ECA1 snapshot member together with a
//! schema version. The version is the *payload's* schema, independent of
//! the container version: readers accept a container they understand and
//! then decide whether they can interpret the payload, so old snapshots
//! stay loadable as the model evolves.

use crate::codec::ByteCodec;
use crate::format::ArchiveError;
use crate::reader::ArchiveReader;
use crate::writer::ArchiveWriter;

/// Default chunk size for snapshot payloads (1 MiB).
pub const SNAPSHOT_CHUNK_BYTES: usize = 1 << 20;

/// A named, versioned blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Member name inside the archive.
    pub name: String,
    /// Schema version of the payload.
    pub version: u32,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Build a snapshot.
    pub fn new(name: impl Into<String>, version: u32, payload: Vec<u8>) -> Self {
        Self {
            name: name.into(),
            version,
            payload,
        }
    }
}

/// Write a single-snapshot archive to `path` (RLE-compressed payload).
/// Returns the container size in bytes.
pub fn write_snapshot_file(
    path: impl AsRef<std::path::Path>,
    snapshot: &Snapshot,
) -> Result<u64, ArchiveError> {
    let mut w = ArchiveWriter::create(path)?;
    w.add_snapshot(
        &snapshot.name,
        snapshot.version,
        ByteCodec::Rle,
        &snapshot.payload,
        SNAPSHOT_CHUNK_BYTES,
    )?;
    let (_, total) = w.finish()?;
    Ok(total)
}

/// Read the snapshot member `name` from the archive at `path`.
pub fn read_snapshot_file(
    path: impl AsRef<std::path::Path>,
    name: &str,
) -> Result<Snapshot, ArchiveError> {
    let mut r = ArchiveReader::open(path)?;
    let (version, payload) = r.read_snapshot(name)?;
    Ok(Snapshot {
        name: name.to_string(),
        version,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_snapshot_roundtrips_and_compresses() {
        let path = std::env::temp_dir().join("exaclim_store_snapshot_test.eca1");
        // JSON-like payload with plenty of byte runs.
        let payload = format!("{{\"mask\":\"{}\"}}", "0".repeat(20_000)).into_bytes();
        let snap = Snapshot::new("trained_emulator", 2, payload.clone());
        let total = write_snapshot_file(&path, &snap).unwrap();
        assert!(
            (total as usize) < payload.len(),
            "RLE snapshot should compress repetitive JSON: {total} vs {}",
            payload.len()
        );
        let back = read_snapshot_file(&path, "trained_emulator").unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, snap);
    }

    #[test]
    fn missing_member_is_reported() {
        let path = std::env::temp_dir().join("exaclim_store_snapshot_missing.eca1");
        write_snapshot_file(&path, &Snapshot::new("a", 1, b"x".to_vec())).unwrap();
        let err = read_snapshot_file(&path, "b").unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, ArchiveError::MemberNotFound(_)));
    }
}
