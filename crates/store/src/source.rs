//! Byte sources an archive can be read from.
//!
//! [`crate::Archive`] is generic over a [`ChunkSource`]: anything that can
//! hand out the bytes at `offset .. offset + len` of a finished container.
//! The trait deliberately takes `&self` — a source that can serve stable
//! views of its bytes (a memory map, an in-memory buffer) serves
//! **concurrent readers with no locking and no copying**, returning
//! [`SourceBytes::Borrowed`] slices; a source that owns a seekable stream
//! wraps it in [`LockedReader`], whose internal mutex restores the
//! exclusive seek+read discipline and returns [`SourceBytes::Owned`]
//! buffers.
//!
//! Backends shipped here:
//!
//! * [`SharedBytes`] — an immutable in-memory container (zero-copy,
//!   lock-free),
//! * [`LockedReader`] — any `Read + Seek` stream behind a mutex (the
//!   portable fallback),
//! * [`crate::mmap::Mmap`] — a memory-mapped file (zero-copy, lock-free;
//!   unix only, see [`crate::mmap`]).

use crate::format::ArchiveError;
use parking_lot::Mutex;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::sync::Arc;

/// Bytes handed out by a [`ChunkSource`]: a borrowed view into the
/// source's stable storage (zero-copy), or an owned buffer read out of a
/// stream. Both deref to `&[u8]`; callers that need ownership use
/// [`SourceBytes::into_vec`], which is free for the owned case.
#[derive(Debug)]
pub enum SourceBytes<'a> {
    /// A view into storage owned by the source (mmap, in-memory bytes).
    /// Valid for as long as the source is borrowed — the compiler ties the
    /// lifetime to the archive, so a view can never outlive an unmap.
    Borrowed(&'a [u8]),
    /// A buffer copied out of a streamed source.
    Owned(Vec<u8>),
}

impl SourceBytes<'_> {
    /// The bytes, as an owned vector (copies only in the borrowed case).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            SourceBytes::Borrowed(s) => s.to_vec(),
            SourceBytes::Owned(v) => v,
        }
    }

    /// True when this is a borrowed (zero-copy) view.
    pub fn is_borrowed(&self) -> bool {
        matches!(self, SourceBytes::Borrowed(_))
    }
}

impl Deref for SourceBytes<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            SourceBytes::Borrowed(s) => s,
            SourceBytes::Owned(v) => v,
        }
    }
}

impl AsRef<[u8]> for SourceBytes<'_> {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A finished container's bytes, addressable by `(offset, len)`.
///
/// Implementations must serve overlapping `read_at` calls from `&self`;
/// whether that is lock-free (stable storage) or serialized (an internal
/// mutex around a seekable stream) is the implementation's choice, visible
/// through [`ChunkSource::is_zero_copy`].
pub trait ChunkSource {
    /// Total length of the container in bytes.
    fn len(&self) -> u64;

    /// True when the container is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes at `offset .. offset + len`. Must fail (not truncate) if
    /// the range leaves the container.
    fn read_at(&self, offset: u64, len: usize) -> Result<SourceBytes<'_>, ArchiveError>;

    /// True when `read_at` returns borrowed views without locking — the
    /// property the serving layer keys its lock-free fast path on.
    fn is_zero_copy(&self) -> bool {
        false
    }

    /// Short backend label for diagnostics ("mmap", "bytes", "stream").
    fn backend(&self) -> &'static str;
}

impl<T: ChunkSource + ?Sized> ChunkSource for Box<T> {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn read_at(&self, offset: u64, len: usize) -> Result<SourceBytes<'_>, ArchiveError> {
        (**self).read_at(offset, len)
    }
    fn is_zero_copy(&self) -> bool {
        (**self).is_zero_copy()
    }
    fn backend(&self) -> &'static str {
        (**self).backend()
    }
}

/// Checked `offset .. offset + len` range over a container of `total`
/// bytes, shared by the slice-backed sources.
pub(crate) fn checked_range(
    offset: u64,
    len: usize,
    total: u64,
) -> Result<std::ops::Range<usize>, ArchiveError> {
    let end = offset.checked_add(len as u64).filter(|&e| e <= total);
    match end {
        Some(end) => Ok(offset as usize..end as usize),
        None => Err(ArchiveError::Corrupt(format!(
            "read of {len} bytes at offset {offset} leaves the {total}-byte container"
        ))),
    }
}

/// An immutable in-memory container. Reads are borrowed views into the
/// shared buffer: zero-copy and lock-free, with no platform requirements —
/// the in-memory analogue of a memory map.
#[derive(Debug, Clone)]
pub struct SharedBytes(Arc<[u8]>);

impl SharedBytes {
    /// Wrap a finished container.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        Self(bytes.into())
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(bytes: Vec<u8>) -> Self {
        Self(bytes.into())
    }
}

impl ChunkSource for SharedBytes {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }
    fn read_at(&self, offset: u64, len: usize) -> Result<SourceBytes<'_>, ArchiveError> {
        let range = checked_range(offset, len, self.len())?;
        Ok(SourceBytes::Borrowed(&self.0[range]))
    }
    fn is_zero_copy(&self) -> bool {
        true
    }
    fn backend(&self) -> &'static str {
        "bytes"
    }
}

/// The portable fallback: any `Read + Seek` stream behind a mutex.
///
/// Every `read_at` locks, seeks, and copies into a fresh buffer — exactly
/// the discipline the pre-mmap serving layer applied, now encapsulated in
/// the source so the archive above it can stay `&self`. Concurrent readers
/// of a `LockedReader` archive serialize on this mutex; readers of
/// zero-copy sources never touch one.
pub struct LockedReader<R> {
    stream: Mutex<R>,
    len: u64,
}

impl<R> std::fmt::Debug for LockedReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedReader")
            .field("len", &self.len)
            .finish()
    }
}

impl<R: Read + Seek> LockedReader<R> {
    /// Wrap a stream, measuring its length once.
    pub fn new(mut stream: R) -> Result<Self, ArchiveError> {
        let len = stream.seek(SeekFrom::End(0))?;
        Ok(Self {
            stream: Mutex::new(stream),
            len,
        })
    }
}

impl<R: Read + Seek> ChunkSource for LockedReader<R> {
    fn len(&self) -> u64 {
        self.len
    }
    fn read_at(&self, offset: u64, len: usize) -> Result<SourceBytes<'_>, ArchiveError> {
        checked_range(offset, len, self.len)?;
        let mut stream = self.stream.lock();
        stream.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf)?;
        Ok(SourceBytes::Owned(buf))
    }
    fn backend(&self) -> &'static str {
        "stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn shared_bytes_are_borrowed_and_bounds_checked() {
        let src = SharedBytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(src.len(), 5);
        assert!(src.is_zero_copy());
        let view = src.read_at(1, 3).unwrap();
        assert!(view.is_borrowed());
        assert_eq!(&view[..], &[2, 3, 4]);
        assert!(src.read_at(3, 3).is_err());
        assert!(src.read_at(u64::MAX, 2).is_err());
        // Zero-length read at the end is fine.
        assert_eq!(src.read_at(5, 0).unwrap().len(), 0);
    }

    #[test]
    fn locked_reader_reads_owned_buffers() {
        let src = LockedReader::new(Cursor::new(vec![9u8, 8, 7, 6])).unwrap();
        assert_eq!(src.len(), 4);
        assert!(!src.is_zero_copy());
        let buf = src.read_at(2, 2).unwrap();
        assert!(!buf.is_borrowed());
        assert_eq!(buf.into_vec(), vec![7, 6]);
        assert!(src.read_at(2, 3).is_err());
    }

    #[test]
    fn boxed_sources_delegate() {
        let boxed: Box<dyn ChunkSource + Send + Sync> =
            Box::new(SharedBytes::from(vec![1u8, 2, 3]));
        assert_eq!(boxed.len(), 3);
        assert!(boxed.is_zero_copy());
        assert_eq!(boxed.backend(), "bytes");
        assert_eq!(&boxed.read_at(0, 3).unwrap()[..], &[1, 2, 3]);
    }
}
