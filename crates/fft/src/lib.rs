//! # exaclim-fft
//!
//! In-house complex FFT used by the spherical harmonic transform:
//!
//! * recursive mixed-radix Cooley–Tukey for sizes whose prime factors are
//!   small (the SHT grids are `Nϕ` and `2Nθ − 2`, e.g. 1440 = 2⁵·3²·5),
//! * Bluestein's chirp-z algorithm for sizes with a large prime factor,
//! * plan objects that precompute twiddles once and are `Send + Sync`, so
//!   one plan can serve all rayon workers transforming time slices.
//!
//! Conventions: `forward` computes `X_k = Σ_j x_j e^{-2πi jk/n}` (no
//! scaling); `inverse` computes `x_j = (1/n) Σ_k X_k e^{+2πi jk/n}` so that
//! `inverse(forward(x)) == x`.

pub mod plan;
pub mod real;

pub use plan::Fft;
pub use real::{irfft, rfft};

use exaclim_mathkit::Complex64;

/// One-shot forward FFT (plans and reuses nothing; prefer [`Fft`] in loops).
pub fn fft_forward(data: &mut [Complex64]) {
    Fft::new(data.len()).forward(data);
}

/// One-shot inverse FFT with 1/n scaling.
pub fn fft_inverse(data: &mut [Complex64]) {
    Fft::new(data.len()).inverse(data);
}

/// Naive O(n²) DFT — the reference oracle for tests and a correct fallback
/// for tiny sizes.
pub fn dft_naive(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (j * k % n.max(1)) as f64 / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *o = if inverse { acc / n as f64 } else { acc };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::Complex64;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_many_sizes() {
        // Powers of two, smooth composites, primes, and SHT-typical sizes.
        for &n in &[
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 25, 27, 30, 32, 45, 64, 97, 100, 101, 120, 128,
            144, 180, 240, 251, 360,
        ] {
            let x = random_signal(n, n as u64);
            let mut y = x.clone();
            fft_forward(&mut y);
            let expect = dft_naive(&x, false);
            let err = max_err(&y, &expect);
            assert!(err < 1e-9 * (n as f64).max(1.0), "n={n}: err={err}");
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        for &n in &[4usize, 15, 64, 97, 210, 720, 1440] {
            let x = random_signal(n, 1000 + n as u64);
            let mut y = x.clone();
            let plan = Fft::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let n = 48;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        fft_forward(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let n = 60;
        let mut x = vec![Complex64::ONE; n];
        fft_forward(&mut x);
        assert!((x[0] - Complex64::real(n as f64)).abs() < 1e-10);
        for z in &x[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 90;
        let k0 = 17;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut y = x.clone();
        fft_forward(&mut y);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((*z - Complex64::real(n as f64)).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-8, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_holds() {
        for &n in &[33usize, 128, 250] {
            let x = random_signal(n, 5 + n as u64);
            let mut y = x.clone();
            fft_forward(&mut y);
            let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((ex - ey).abs() < 1e-9 * ex.max(1.0), "n={n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 75;
        let a = random_signal(n, 2);
        let b = random_signal(n, 3);
        let alpha = Complex64::new(0.3, -1.2);
        let combo: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| alpha * *x + *y).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fc = combo.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fc);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| alpha * *x + *y).collect();
        assert!(max_err(&fc, &expect) < 1e-9);
    }

    #[test]
    fn naive_dft_inverse_consistent() {
        let x = random_signal(12, 8);
        let f = dft_naive(&x, false);
        let b = dft_naive(&f, true);
        assert!(max_err(&x, &b) < 1e-12);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = Fft::new(100);
        let x = random_signal(100, 77);
        let mut y1 = x.clone();
        let mut y2 = x.clone();
        plan.forward(&mut y1);
        plan.forward(&mut y2);
        assert!(
            max_err(&y1, &y2) == 0.0,
            "same plan, same input, same output"
        );
    }

    #[test]
    fn plans_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fft>();
    }
}
