//! FFT plans: factorization, twiddle precomputation, and execution.

use exaclim_mathkit::Complex64;

/// Largest prime factor handled by the mixed-radix path; anything bigger
/// falls back to Bluestein (O(p²) base cases would dominate otherwise).
const MAX_DIRECT_PRIME: usize = 37;

/// A reusable FFT plan for a fixed length. Construction precomputes all
/// twiddle factors; execution allocates a scratch buffer per call (callers
/// with tight loops can reuse via [`Fft::forward_with_scratch`]).
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    /// n ∈ {0, 1}: nothing to do.
    Trivial,
    /// Recursive mixed-radix Cooley–Tukey over the given prime factors with
    /// a master twiddle table `w^k = exp(-2πik/n)`.
    MixedRadix { twiddles: Vec<Complex64> },
    /// Bluestein chirp-z: convolution through a power-of-two inner FFT.
    Bluestein {
        /// `chirp[k] = exp(-iπ k² / n)`.
        chirp: Vec<Complex64>,
        /// Forward inner-FFT of the (Hermitian-extended) conjugate chirp.
        chirp_spectrum: Vec<Complex64>,
        inner: Box<Fft>,
        m: usize,
    },
}

impl Fft {
    /// Plan an FFT of length `n`.
    pub fn new(n: usize) -> Self {
        if n <= 1 {
            return Self {
                n,
                kind: Kind::Trivial,
            };
        }
        let factors = factorize(n);
        let max_prime = *factors.last().expect("n > 1 has factors");
        if max_prime <= MAX_DIRECT_PRIME {
            let twiddles = (0..n)
                .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
                .collect();
            Self {
                n,
                kind: Kind::MixedRadix { twiddles },
            }
        } else {
            // Bluestein: inner power-of-two length m >= 2n - 1.
            let m = (2 * n - 1).next_power_of_two();
            let chirp: Vec<Complex64> = (0..n)
                .map(|k| {
                    // k² mod 2n keeps the angle argument small and accurate.
                    let k2 = (k as u128 * k as u128 % (2 * n as u128)) as f64;
                    Complex64::cis(-std::f64::consts::PI * k2 / n as f64)
                })
                .collect();
            let inner = Box::new(Fft::new(m));
            let mut b = vec![Complex64::ZERO; m];
            b[0] = chirp[0].conj();
            for k in 1..n {
                b[k] = chirp[k].conj();
                b[m - k] = chirp[k].conj();
            }
            inner.forward(&mut b);
            Self {
                n,
                kind: Kind::Bluestein {
                    chirp,
                    chirp_spectrum: b,
                    inner,
                    m,
                },
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform in place (no scaling).
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length must match the plan");
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.forward_with_scratch(data, &mut scratch);
    }

    /// Inverse transform in place, scaled by `1/n`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length must match the plan");
        // inverse(x) = conj(forward(conj(x))) / n
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale(s);
        }
    }

    /// Scratch length needed by [`Fft::forward_with_scratch`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Trivial => 0,
            Kind::MixedRadix { .. } => 2 * self.n,
            Kind::Bluestein { m, inner, .. } => 2 * m + inner.scratch_len(),
        }
    }

    /// Forward transform using caller-provided scratch (len ≥
    /// [`Fft::scratch_len`]); hot loops avoid per-call allocation this way.
    pub fn forward_with_scratch(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n);
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        match &self.kind {
            Kind::Trivial => {}
            Kind::MixedRadix { twiddles } => {
                let (work, rest) = scratch.split_at_mut(self.n);
                work.copy_from_slice(data);
                rec_fft(work, 1, data, self.n, 1, self.n, twiddles, rest);
            }
            Kind::Bluestein {
                chirp,
                chirp_spectrum,
                inner,
                m,
            } => {
                let (a, rest) = scratch.split_at_mut(*m);
                let (inner_scratch, _) = rest.split_at_mut(inner.scratch_len().max(*m));
                for z in a.iter_mut() {
                    *z = Complex64::ZERO;
                }
                for k in 0..self.n {
                    a[k] = data[k] * chirp[k];
                }
                inner.forward_with_scratch(a, inner_scratch);
                for (z, b) in a.iter_mut().zip(chirp_spectrum) {
                    *z *= *b;
                }
                // Inverse inner FFT via the conjugation identity.
                for z in a.iter_mut() {
                    *z = z.conj();
                }
                inner.forward_with_scratch(a, inner_scratch);
                let s = 1.0 / *m as f64;
                for k in 0..self.n {
                    data[k] = a[k].conj().scale(s) * chirp[k];
                }
            }
        }
    }
}

/// Prime factorization in ascending order (with multiplicity).
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2usize;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Recursive decimation-in-time mixed-radix step.
///
/// Computes `dst[k] = Σ_{j<n} src[j·stride] · w^{j·k·ts}` where `w` is the
/// master root `exp(-2πi/N)` stored in `tw` and `ts = N/n` is the twiddle
/// stride of this recursion level.
#[allow(clippy::too_many_arguments)]
fn rec_fft(
    src: &[Complex64],
    stride: usize,
    dst: &mut [Complex64],
    n: usize,
    ts: usize,
    master_n: usize,
    tw: &[Complex64],
    scratch: &mut [Complex64],
) {
    debug_assert_eq!(dst.len(), n);
    if n == 1 {
        dst[0] = src[0];
        return;
    }
    let r = smallest_prime_factor(n);
    if r == n {
        // Prime base case: naive DFT via the master table.
        for (k, d) in dst.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for j in 0..n {
                let idx = (j * k % n) * ts % master_n;
                acc += src[j * stride] * tw[idx];
            }
            *d = acc;
        }
        return;
    }
    let m = n / r;
    // Children: F_i = FFT_m of the i-th decimated subsequence.
    for i in 0..r {
        let (sub_dst, _) = dst[i * m..].split_at_mut(m);
        rec_fft(
            &src[i * stride..],
            stride * r,
            sub_dst,
            m,
            ts * r,
            master_n,
            tw,
            scratch,
        );
    }
    // Combine: X[k1 + m k2] = Σ_i (F_i[k1]·w^{ts·i·k1}) · w^{ts·m·i·k2}.
    let mut t = [Complex64::ZERO; MAX_DIRECT_PRIME + 1];
    let (out, _) = scratch.split_at_mut(n);
    for k1 in 0..m {
        for (i, ti) in t[..r].iter_mut().enumerate() {
            let idx = ts * i * k1 % master_n;
            *ti = dst[i * m + k1] * tw[idx];
        }
        for k2 in 0..r {
            let mut acc = Complex64::ZERO;
            for (i, ti) in t[..r].iter().enumerate() {
                let idx = ts * m % master_n * (i * k2 % r) % master_n;
                acc += *ti * tw[idx];
            }
            out[k1 + m * k2] = acc;
        }
    }
    dst.copy_from_slice(out);
}

#[inline]
fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_basics() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(1440), vec![2, 2, 2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn smallest_prime_factor_basics() {
        assert_eq!(smallest_prime_factor(2), 2);
        assert_eq!(smallest_prime_factor(9), 3);
        assert_eq!(smallest_prime_factor(35), 5);
        assert_eq!(smallest_prime_factor(101), 101);
    }

    #[test]
    fn bluestein_is_selected_for_large_primes() {
        let plan = Fft::new(1009); // prime > MAX_DIRECT_PRIME
        assert!(matches!(plan.kind, Kind::Bluestein { .. }));
        let plan = Fft::new(1024);
        assert!(matches!(plan.kind, Kind::MixedRadix { .. }));
    }

    #[test]
    fn scratch_reuse_matches_allocating_path() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for &n in &[64usize, 120, 1009] {
            let plan = Fft::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut a = x.clone();
            let mut b = x.clone();
            plan.forward(&mut a);
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward_with_scratch(&mut b, &mut scratch);
            for (u, v) in a.iter().zip(&b) {
                assert!((*u - *v).abs() < 1e-12);
            }
        }
    }
}
