//! Real-input transform helpers.
//!
//! Climate fields are real, so along longitude only the `m >= 0` Fourier
//! coefficients are independent (`X_{n-m} = conj(X_m)`). These helpers keep
//! that half-spectrum representation.

use crate::Fft;
use exaclim_mathkit::Complex64;

/// Forward FFT of a real signal; returns the `n/2 + 1` non-redundant bins.
pub fn rfft(plan: &Fft, input: &[f64]) -> Vec<Complex64> {
    assert_eq!(input.len(), plan.len());
    let mut buf: Vec<Complex64> = input.iter().map(|&x| Complex64::real(x)).collect();
    plan.forward(&mut buf);
    buf.truncate(plan.len() / 2 + 1);
    buf
}

/// Inverse of [`rfft`]: reconstruct the length-`n` real signal from its
/// `n/2 + 1` non-redundant bins.
pub fn irfft(plan: &Fft, half_spectrum: &[Complex64]) -> Vec<f64> {
    let n = plan.len();
    assert_eq!(
        half_spectrum.len(),
        n / 2 + 1,
        "need n/2+1 bins for length {n}"
    );
    let mut buf = vec![Complex64::ZERO; n];
    buf[..half_spectrum.len()].copy_from_slice(half_spectrum);
    for k in 1..n.div_ceil(2) {
        buf[n - k] = half_spectrum[k].conj();
    }
    plan.inverse(&mut buf);
    buf.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn rfft_roundtrip_even_and_odd() {
        let mut rng = StdRng::seed_from_u64(11);
        for &n in &[8usize, 9, 64, 99, 144] {
            let plan = Fft::new(n);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let spec = rfft(&plan, &x);
            assert_eq!(spec.len(), n / 2 + 1);
            let back = irfft(&plan, &spec);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn rfft_of_cosine_is_real_spike() {
        let n = 64;
        let plan = Fft::new(n);
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&plan, &x);
        for (k, z) in spec.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64 / 2.0).abs() < 1e-9);
                assert!(z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "bin {k}");
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let n = 31;
        let plan = Fft::new(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let spec = rfft(&plan, &x);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }
}
