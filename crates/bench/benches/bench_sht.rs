//! SHT scaling benches: forward (both engines) and inverse transforms
//! across band-limits, verifying the O(L³)-per-slice behaviour of
//! §III.A.2, plus the batched (rayon) path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_mathkit::Complex64;
use exaclim_sht::{analysis_batch, HarmonicCoeffs, ShtPlan};
use std::hint::black_box;

fn random_coeffs(lmax: usize) -> HarmonicCoeffs {
    let mut c = HarmonicCoeffs::zeros(lmax);
    let mut v = 0.37f64;
    for l in 0..lmax {
        for m in 0..=l {
            v = (v * 997.0).fract() - 0.5;
            c.set(l, m, Complex64::new(v, if m == 0 { 0.0 } else { v * 0.5 }));
        }
    }
    c
}

fn bench_sht(c: &mut Criterion) {
    let mut group = c.benchmark_group("sht");
    group.sample_size(10);
    for lmax in [16usize, 24, 32, 48] {
        let plan_eq = ShtPlan::equiangular(lmax, lmax + 2, 2 * lmax + 1);
        let plan_gl = ShtPlan::gauss_legendre(lmax);
        let coeffs = random_coeffs(lmax);
        let field_eq = plan_eq.synthesis(&coeffs);
        let field_gl = plan_gl.synthesis(&coeffs);

        group.bench_with_input(BenchmarkId::new("analysis_wigner", lmax), &lmax, |b, _| {
            b.iter(|| black_box(plan_eq.analysis(black_box(&field_eq))));
        });
        group.bench_with_input(BenchmarkId::new("analysis_gl", lmax), &lmax, |b, _| {
            b.iter(|| black_box(plan_gl.analysis(black_box(&field_gl))));
        });
        group.bench_with_input(BenchmarkId::new("synthesis", lmax), &lmax, |b, _| {
            b.iter(|| black_box(plan_eq.synthesis(black_box(&coeffs))));
        });
    }
    group.finish();

    // Batched transforms over time slices (the paper's parallel dimension).
    let mut group = c.benchmark_group("sht_batch");
    group.sample_size(10);
    let lmax = 24;
    let plan = ShtPlan::equiangular(lmax, lmax + 2, 2 * lmax + 1);
    let coeffs = random_coeffs(lmax);
    let one = plan.synthesis(&coeffs);
    for t in [8usize, 32, 128] {
        let mut data = Vec::with_capacity(one.len() * t);
        for _ in 0..t {
            data.extend_from_slice(&one);
        }
        group.bench_with_input(BenchmarkId::new("analysis_slices", t), &t, |b, &t| {
            b.iter(|| black_box(analysis_batch(&plan, black_box(&data), t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sht);
criterion_main!(benches);
