//! Figure 1 counterpart: measured training cost of the real emulator across
//! band-limits, confirming the cost model's growth exponents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use std::hint::black_box;

fn bench_costmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator_training_cost");
    group.sample_size(10);
    for lmax in [6usize, 8, 10] {
        let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(lmax + 4));
        let training = generator.generate_member(0, 365);
        group.bench_with_input(BenchmarkId::new("train_L", lmax), &lmax, |bch, &lmax| {
            bch.iter(|| {
                black_box(ClimateEmulator::train(&training, EmulatorConfig::small(lmax)).unwrap())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("emulation_cost");
    group.sample_size(10);
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 365);
    let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    for t in [30usize, 365] {
        group.bench_with_input(BenchmarkId::new("emulate_days", t), &t, |bch, &t| {
            bch.iter(|| black_box(em.emulate(t, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_costmodel);
criterion_main!(benches);
