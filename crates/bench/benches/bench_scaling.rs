//! Figure 7 counterpart on real CPU hardware: strong scaling of the
//! task-parallel tile Cholesky over worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{exp_covariance, TiledMatrix};
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_scaling_cpu");
    group.sample_size(10);
    let n = 512;
    let a = exp_covariance(n, 24.0, 1e-3);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |bch, &w| {
            bch.iter(|| {
                let mut tm = TiledMatrix::from_dense(&a, n, 64, &PrecisionPolicy::dp());
                black_box(parallel_tile_cholesky(&mut tm, w, SchedulerKind::WorkStealing).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
