//! Tile Cholesky benches: sequential vs task-parallel, across matrix sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_linalg::cholesky::tile_cholesky;
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{exp_covariance, TiledMatrix};
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use std::hint::black_box;

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for n in [256usize, 512] {
        let a = exp_covariance(n, n as f64 / 16.0, 1e-3);
        group.bench_with_input(BenchmarkId::new("sequential_dp", n), &n, |bch, _| {
            bch.iter(|| {
                let mut tm = TiledMatrix::from_dense(&a, n, 64, &PrecisionPolicy::dp());
                black_box(tile_cholesky(&mut tm).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel_dp", n), &n, |bch, _| {
            bch.iter(|| {
                let mut tm = TiledMatrix::from_dense(&a, n, 64, &PrecisionPolicy::dp());
                black_box(parallel_tile_cholesky(&mut tm, 4, SchedulerKind::PriorityHeap).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cholesky);
criterion_main!(benches);
