//! Tile Cholesky benches: sequential vs task-parallel, across matrix sizes.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use exaclim_linalg::cholesky::tile_cholesky;
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{TiledMatrix, exp_covariance};
use exaclim_runtime::{SchedulerKind, parallel_tile_cholesky};
use std::hint::black_box;

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for n in [256usize, 512] {
        let a = exp_covariance(n, n as f64 / 16.0, 1e-3);
        group.bench_with_input(BenchmarkId::new("sequential_dp", n), &n, |bch, _| {
            bch.iter(|| {
                let mut tm = TiledMatrix::from_dense(&a, n, 64, &PrecisionPolicy::dp());
                black_box(tile_cholesky(&mut tm).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel_dp", n), &n, |bch, _| {
            bch.iter(|| {
                let mut tm = TiledMatrix::from_dense(&a, n, 64, &PrecisionPolicy::dp());
                black_box(
                    parallel_tile_cholesky(&mut tm, 4, SchedulerKind::PriorityHeap).unwrap(),
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cholesky);
criterion_main!(benches);
