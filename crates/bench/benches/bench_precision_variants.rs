//! Figure 6 counterpart on real CPU kernels: the four precision variants of
//! the tile Cholesky. On CPUs the f32 path is ~2× the f64 path and the
//! software-f16 path pays conversion costs, so the *memory* savings (not
//! tensor-core speedups) are the observable; the GPU-rate speedups live in
//! the cluster model (`--bin fig6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{exp_covariance, TiledMatrix};
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("precision_variants");
    group.sample_size(10);
    let n = 512;
    let b = 64;
    let nt = n / b;
    let a = exp_covariance(n, 24.0, 1e-3);
    let policies = [
        ("dp", PrecisionPolicy::dp()),
        ("dp_sp", PrecisionPolicy::dp_sp()),
        ("dp_sp_hp", PrecisionPolicy::dp_sp_hp(nt)),
        ("dp_hp", PrecisionPolicy::dp_hp()),
    ];
    for (label, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("variant", label),
            &policy,
            |bch, policy| {
                bch.iter(|| {
                    let mut tm = TiledMatrix::from_dense(&a, n, b, policy);
                    black_box(
                        parallel_tile_cholesky(&mut tm, 4, SchedulerKind::PriorityHeap).unwrap(),
                    );
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
