//! Serving-layer throughput: cold (cache-disabled) vs. warm-cache slice
//! reads, and batch coalescing vs. naive per-request serving.
//!
//! The cold/warm pair isolates what the chunk cache buys: a cold read
//! pays seek + CRC + decode per touched chunk, a warm read only the LRU
//! lookup and the slice assembly copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::{Catalog, Request, ServeConfig, Server, SliceRequest};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use std::hint::black_box;
use std::io::Cursor;

const T_MAX: usize = 256;
const CHUNK_T: usize = 16;

fn build_server(codec: Codec, cache_bytes: usize) -> Server {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(16));
    let data = generator.generate_member(0, T_MAX);
    let meta = FieldMeta {
        ntheta: data.ntheta,
        nphi: data.nphi,
        start_year: data.start_year,
        tau: data.tau,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    w.add_field("t2m", codec, meta, data.npoints, CHUNK_T, &data.data)
        .unwrap();
    let (cursor, _) = w.finish().unwrap();
    let mut catalog = Catalog::new();
    catalog
        .open_archive_bytes("a", cursor.into_inner())
        .unwrap();
    Server::new(
        catalog,
        ServeConfig {
            cache_bytes,
            cache_shards: 8,
            ..ServeConfig::default()
        },
    )
}

/// A batch of 32 overlapping slice reads across the member.
fn slice_batch() -> Vec<Request> {
    (0..32u64)
        .map(|i| {
            let t0 = (i * 7) % (T_MAX as u64 - 48);
            Request::Slice(SliceRequest {
                archive: "a".to_string(),
                member: "t2m".to_string(),
                range: t0..t0 + 48,
            })
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let batch = slice_batch();
    let slice_bytes: u64 = 32 * 48 * 18 * 33 * 8; // requests × steps × grid × f64
    for codec in [Codec::F32Shuffle, Codec::Raw64] {
        let label = codec.label();
        group.throughput(Throughput::Bytes(slice_bytes));

        // Cold: zero cache budget, every chunk decoded on every batch.
        let cold = build_server(codec, 0);
        group.bench_with_input(BenchmarkId::new("cold_read", label), &cold, |b, server| {
            b.iter(|| black_box(server.handle_batch(&batch)));
        });

        // Warm: generous budget, primed once; batches are pure cache hits.
        let warm = build_server(codec, 64 << 20);
        warm.handle_batch(&batch);
        group.bench_with_input(BenchmarkId::new("warm_read", label), &warm, |b, server| {
            b.iter(|| black_box(server.handle_batch(&batch)));
        });
    }

    // Coalescing: the same 32 overlapping requests as one batch vs. 32
    // single-request batches, both uncached.
    let naive = build_server(Codec::F32Shuffle, 0);
    group.bench_function("uncached_one_batch", |b| {
        b.iter(|| black_box(naive.handle_batch(&batch)));
    });
    group.bench_function("uncached_per_request", |b| {
        b.iter(|| {
            for request in &batch {
                black_box(naive.handle(request).unwrap());
            }
        });
    });

    // Byte-source backends on the cold path: mmap'd file (lock-free
    // borrowed views) vs. buffered file behind the fallback mutex. The
    // multi-threaded version of this comparison lives in the `serve_perf`
    // bin (`--json` writes BENCH_serve.json).
    let path =
        std::env::temp_dir().join(format!("exaclim_bench_serve_{}.eca1", std::process::id()));
    {
        let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(16));
        let data = generator.generate_member(0, T_MAX);
        let meta = FieldMeta {
            ntheta: data.ntheta,
            nphi: data.nphi,
            start_year: data.start_year,
            tau: data.tau,
        };
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field(
            "t2m",
            Codec::F32Shuffle,
            meta,
            data.npoints,
            CHUNK_T,
            &data.data,
        )
        .unwrap();
        std::fs::write(&path, w.finish().unwrap().0.into_inner()).unwrap();
    }
    for (label, use_mmap) in [("file_mutexed", false), ("file_mmap", true)] {
        let mut catalog = Catalog::new();
        catalog
            .open_archive_source(
                "a",
                exaclim_store::open_file_source(&path, use_mmap).unwrap(),
            )
            .unwrap();
        let server = Server::new(
            catalog,
            ServeConfig {
                cache_bytes: 0,
                cache_shards: 8,
                ..ServeConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cold_read", label),
            &server,
            |b, server| {
                b.iter(|| black_box(server.handle_batch(&batch)));
            },
        );
    }
    std::fs::remove_file(&path).ok();
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
