//! Figure 5 counterpart: message-ledger and timing-model costs of sender-
//! vs receiver-side precision conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_runtime::distsim::{simulate_distribution, ConversionSide, DistConfig};
use std::hint::black_box;

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion_ledger");
    for side in [ConversionSide::Sender, ConversionSide::Receiver] {
        let cfg = DistConfig {
            p: 8,
            q: 16,
            conversion: side,
        };
        let label = format!("{side:?}");
        group.bench_with_input(BenchmarkId::new("ledger", &label), &cfg, |bch, cfg| {
            bch.iter(|| {
                black_box(simulate_distribution(
                    64,
                    512,
                    &PrecisionPolicy::dp_hp(),
                    cfg,
                ))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("timing_model");
    let spec = MachineSpec::of(Machine::Summit);
    for n in [1_060_000usize, 8_390_000] {
        group.bench_with_input(BenchmarkId::new("simulate", n), &n, |bch, &n| {
            bch.iter(|| {
                black_box(simulate_cholesky(
                    &spec,
                    &SimConfig::new(n, 128, Variant::DpHp),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
