//! Runtime scheduling overhead: per-task cost of the three schedulers on
//! the Cholesky DAG shape, the pool-backed `par_chunks` training path
//! against its sequential equivalent, and the FFT substrate's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_fft::Fft;
use exaclim_mathkit::Complex64;
use exaclim_runtime::{graph::cholesky_graph, Executor, SchedulerKind};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_overhead");
    group.sample_size(10);
    let g = cholesky_graph(16); // 816 tasks
    for sched in [
        SchedulerKind::WorkStealing,
        SchedulerKind::PriorityHeap,
        SchedulerKind::Fifo,
    ] {
        let label = format!("{sched:?}");
        group.bench_with_input(
            BenchmarkId::new("empty_tasks", &label),
            &sched,
            |bch, &s| {
                let exec = Executor::new(4, s);
                bch.iter(|| {
                    black_box(exec.run(&g, |_, _| Ok(())).unwrap());
                });
            },
        );
    }
    group.finish();

    // The rayon shim's data-parallel chunk traversal (the trend/SHT hot-path
    // shape) against the identical sequential loop. With `EXACLIM_THREADS=1`
    // the two should coincide; with N lanes on real cores, par_chunks should
    // approach N× on this embarrassingly parallel kernel.
    let mut group = c.benchmark_group("data_parallel");
    group.sample_size(10);
    let lanes = exaclim_runtime::pool::global().threads();
    let npoints = 4096usize;
    let nslices = 64usize;
    let mut field = vec![0.0f64; npoints * nslices];
    let heavy = |slice_idx: usize, row: &mut [f64]| {
        for (p, v) in row.iter_mut().enumerate() {
            let x = (slice_idx * 31 + p) as f64 * 1e-3;
            *v = (x.sin() * x.cos()).mul_add(x.sqrt(), x.exp().recip());
        }
    };
    group.bench_with_input(
        BenchmarkId::new("seq_chunks", npoints),
        &npoints,
        |bch, &n| {
            bch.iter(|| {
                for (t, row) in field.chunks_mut(n).enumerate() {
                    heavy(t, row);
                }
                black_box(field[0]);
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("par_chunks_{lanes}lanes"), npoints),
        &npoints,
        |bch, &n| {
            bch.iter(|| {
                field
                    .par_chunks_mut(n)
                    .enumerate()
                    .for_each(|(t, row)| heavy(t, row));
                black_box(field[0]);
            });
        },
    );
    group.finish();

    let mut group = c.benchmark_group("fft");
    for n in [256usize, 720, 1440, 1009] {
        let plan = Fft::new(n);
        let data: Vec<Complex64> = (0..n).map(|k| Complex64::cis(k as f64 * 0.1)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |bch, _| {
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            bch.iter(|| {
                let mut x = data.clone();
                plan.forward_with_scratch(&mut x, &mut scratch);
                black_box(x);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
