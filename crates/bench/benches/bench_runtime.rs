//! Runtime scheduling overhead: per-task cost of the three schedulers on
//! the Cholesky DAG shape, and the FFT substrate's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaclim_fft::Fft;
use exaclim_mathkit::Complex64;
use exaclim_runtime::{graph::cholesky_graph, Executor, SchedulerKind};
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_overhead");
    group.sample_size(10);
    let g = cholesky_graph(16); // 816 tasks
    for sched in [
        SchedulerKind::WorkStealing,
        SchedulerKind::PriorityHeap,
        SchedulerKind::Fifo,
    ] {
        let label = format!("{sched:?}");
        group.bench_with_input(
            BenchmarkId::new("empty_tasks", &label),
            &sched,
            |bch, &s| {
                let exec = Executor::new(4, s);
                bch.iter(|| {
                    black_box(exec.run(&g, |_, _| Ok(())).unwrap());
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fft");
    for n in [256usize, 720, 1440, 1009] {
        let plan = Fft::new(n);
        let data: Vec<Complex64> = (0..n).map(|k| Complex64::cis(k as f64 * 0.1)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |bch, _| {
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            bch.iter(|| {
                let mut x = data.clone();
                plan.forward_with_scratch(&mut x, &mut scratch);
                black_box(x);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
