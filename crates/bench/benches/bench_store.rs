//! ECA1 archive write/read throughput per codec at small grid sizes.
//!
//! Measures the full container path (encode + checksum + directory on
//! write; directory + checksum + decode on read) over an in-memory sink,
//! so the numbers isolate codec cost from disk speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_store::{ArchiveReader, ArchiveWriter, Codec, FieldMeta};
use std::hint::black_box;
use std::io::Cursor;

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for lmax in [8usize, 16] {
        let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(lmax));
        let data = generator.generate_member(0, 64);
        let meta = FieldMeta {
            ntheta: data.ntheta,
            nphi: data.nphi,
            start_year: data.start_year,
            tau: data.tau,
        };
        let raw_bytes = (data.data.len() * 8) as u64;
        for codec in Codec::ALL {
            let label = format!("L{lmax}/{}", codec.label());
            group.throughput(Throughput::Bytes(raw_bytes));
            group.bench_with_input(BenchmarkId::new("write", &label), &codec, |bch, &codec| {
                bch.iter(|| {
                    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
                    w.add_field("t2m", codec, meta, data.npoints, 16, &data.data)
                        .unwrap();
                    black_box(w.finish().unwrap().1)
                });
            });
            let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
            w.add_field("t2m", codec, meta, data.npoints, 16, &data.data)
                .unwrap();
            let (cursor, _) = w.finish().unwrap();
            let archive = cursor.into_inner();
            group.bench_with_input(BenchmarkId::new("read", &label), &codec, |bch, _| {
                bch.iter(|| {
                    let mut r = ArchiveReader::new(Cursor::new(archive.clone())).unwrap();
                    black_box(r.read_field_all("t2m").unwrap())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
