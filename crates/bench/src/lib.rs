//! Benchmark harness for the exaclim workspace (see `src/bin` and `benches`).
