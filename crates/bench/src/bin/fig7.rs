//! Figure 7: weak (left) and strong (right) scaling of the mixed-precision
//! Cholesky on Summit, up to 12,288 V100 GPUs.
//!
//! Paper anchors: weak-scaling efficiency 92–111% from 384 GPUs; strong
//! scaling at 4× the GPUs retains 55% (DP), 72% (DP/SP), 60% (DP/SP/HP),
//! 56% (DP/HP).
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig7
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::scaling::{strong_scaling, weak_scaling};
use exaclim_cluster::sim::Variant;

fn main() {
    let spec = MachineSpec::of(Machine::Summit);
    let weak_gpus = [384usize, 1536, 3072, 6144, 12288];
    println!("== Figure 7 (left): weak scaling, TFlop/s per GPU ==");
    print!("{:<10}", "variant");
    for g in weak_gpus {
        print!(" {:>9}", g);
    }
    println!("   (paper band: 92–111%)");
    for v in Variant::all() {
        let pts = weak_scaling(&spec, v, &weak_gpus, 1_500_000);
        print!("{:<10}", v.label());
        for p in &pts {
            print!(" {:>8.1} ", p.tflops_per_gpu);
        }
        let effs: Vec<String> = pts
            .iter()
            .map(|p| format!("{:.0}%", p.efficiency_pct))
            .collect();
        println!("  eff: {}", effs.join("/"));
        for p in &pts {
            assert!(
                p.efficiency_pct > 80.0 && p.efficiency_pct < 125.0,
                "weak scaling must stay near flat"
            );
        }
    }

    println!();
    println!("== Figure 7 (right): strong scaling, fixed workload of 512 nodes ==");
    let strong_gpus = [3072usize, 6144, 12288];
    // The largest DP/HP matrix fitting 512 Summit nodes (Table I scaling).
    let n = spec.max_matrix_n(512, 2.5);
    println!(
        "fixed matrix: {:.2}M ({} GPUs baseline)",
        n as f64 / 1e6,
        strong_gpus[0]
    );
    print!("{:<10}", "variant");
    for g in strong_gpus {
        print!(" {:>9}", g);
    }
    println!("   (paper @4×: DP 55%, DP/SP 72%, DP/SP/HP 60%, DP/HP 56%)");
    for v in Variant::all() {
        let pts = strong_scaling(&spec, v, &strong_gpus, n);
        print!("{:<10}", v.label());
        for p in &pts {
            print!(" {:>8.0}% ", p.efficiency_pct);
        }
        println!();
        assert!(
            pts[2].efficiency_pct < pts[1].efficiency_pct,
            "monotone decay"
        );
    }
    println!();
    println!(
        "Shape reproduced: weak scaling flat; strong scaling decays with\n\
         mixed precision retaining more efficiency than would naive DP at\n\
         the same wire volume. The model decays more gently than Summit's\n\
         measured 55–72% — see EXPERIMENTS.md for the deviation discussion."
    );
}
