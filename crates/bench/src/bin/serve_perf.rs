//! Serving-path performance report: multi-threaded cold/warm slice reads
//! over the mutexed (buffered-file) and zero-copy (mmap) byte-source
//! backends, a scenario-engine workload (ensemble fan-out + derived
//! statistics through the product cache), plus a hot-chunk stampede
//! showing single-flight dedup.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin serve_perf [-- --json]
//! ```
//!
//! With `--json`, machine-readable results land in `BENCH_serve.json` in
//! the current directory, so the serving layer's perf trajectory is
//! recorded PR over PR. Knobs: `--threads N` (client threads, default 8),
//! `--batches N` (batches per thread, default 24), `--idle N` (standing
//! keep-alive connections in the `serve_net_idle` scenario, default 300),
//! `--shards N` (backend shards behind the `serve_cluster` router
//! scenario, default 4; 1/2/4-shard scaling is always recorded).

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_cluster::{Machine, MachineSpec};
use exaclim_runtime::{faults, FaultAction, FaultPlan};
use exaclim_serve::{
    Catalog, Client, ClientConfig, KeyWeight, NetConfig, NetServer, ProductDescriptor,
    ProductSource, ProductStat, Request, Response, RetryPolicy, Router, RouterConfig, ScenarioSpec,
    ServeConfig, Server, ShardSpec, SliceRequest,
};
use exaclim_store::{open_file_source, ArchiveWriter, Codec, FieldMeta};
use std::io::Cursor;
use std::sync::Arc;
use std::time::{Duration, Instant};

const T_MAX: usize = 256;
const CHUNK_T: usize = 16;
const SLICE_T: u64 = 48;
const BATCH: usize = 32;

/// Scenario-engine workload shape: ensemble size and horizon per request.
const ENS_T: u64 = 64;
const ENS_R: u32 = 4;

/// One measured scenario.
struct Scenario {
    name: &'static str,
    backend: &'static str,
    threads: usize,
    batches_per_thread: usize,
    elapsed_s: f64,
    served_mib: f64,
    requests: u64,
    p50_us: f64,
    p95_us: f64,
}

impl Scenario {
    fn mib_per_s(&self) -> f64 {
        self.served_mib / self.elapsed_s
    }
    fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn build_archive_file(path: &std::path::Path) -> (u64, usize) {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(16));
    let data = generator.generate_member(0, T_MAX);
    let meta = FieldMeta {
        ntheta: data.ntheta,
        nphi: data.nphi,
        start_year: data.start_year,
        tau: data.tau,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    w.add_field(
        "t2m",
        Codec::F32Shuffle,
        meta,
        data.npoints,
        CHUNK_T,
        &data.data,
    )
    .unwrap();
    let (cursor, total) = w.finish().unwrap();
    std::fs::write(path, cursor.into_inner()).unwrap();
    (total, data.npoints)
}

/// Streaming-path counters captured from the hot `serve_net` scenario:
/// how many responses went out as CRC-checked stream fragments, the
/// fragment count, the per-connection owned-bytes high-water mark, and
/// the frames-per-response histogram (buckets 1, 2, 3–4, 5–8, 9–16,
/// 17–32, 33–64, 65+).
struct StreamCounters {
    streamed_responses: u64,
    stream_frames_out: u64,
    peak_conn_buffered_bytes: u64,
    frames_per_response: [u64; 8],
}

/// Drive the same workload as [`run_scenario`], but through the framed-TCP
/// wire over loopback: one reused connection per client thread.
fn run_net_scenario(
    server: Arc<Server>,
    threads: usize,
    batches_per_thread: usize,
    npoints: usize,
) -> (Scenario, StreamCounters) {
    let handle = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
        .unwrap()
        .spawn();
    let addr = handle.addr();
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let batch = slice_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = client.batch(&batch).unwrap();
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            assert!(matches!(r, Ok(Response::Slice(_))));
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = handle.net_stats();
    let streaming = StreamCounters {
        streamed_responses: stats.streamed_responses,
        stream_frames_out: stats.stream_frames_out,
        peak_conn_buffered_bytes: stats.peak_conn_buffered_bytes,
        frames_per_response: stats.frames_per_response,
    };
    handle.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * BATCH) as u64;
    let served_mib = requests as f64 * SLICE_T as f64 * npoints as f64 * 8.0 / (1 << 20) as f64;
    (
        Scenario {
            name: "serve_net",
            backend: "mmap",
            threads,
            batches_per_thread,
            elapsed_s,
            served_mib,
            requests,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
        },
        streaming,
    )
}

/// Connection-level gauges captured from the `serve_net_idle` scenario:
/// what a standing keep-alive fleet costs and how the reaper handles it.
struct NetCounters {
    open_connections: u64,
    peak_connections: u64,
    reactor_wakeups: u64,
    reaped_idle: u64,
}

/// The wire workload again, but with a fleet of idle keep-alive
/// connections standing alongside the hot clients — the "millions of
/// users" shape: most connections do nothing most of the time. Hot
/// throughput is measured with the fleet standing; then the server's
/// idle deadline reaps the fleet while the bench watches the gauges.
fn run_net_idle_scenario(
    server: Arc<Server>,
    threads: usize,
    batches_per_thread: usize,
    npoints: usize,
    idle_conns: usize,
) -> (Scenario, NetCounters) {
    let idle_timeout = Duration::from_millis(750);
    let config = NetConfig {
        max_connections: (idle_conns + threads + 16).max(1024),
        idle_timeout: Some(idle_timeout),
        ..NetConfig::default()
    };
    let handle = NetServer::bind("127.0.0.1:0", server, config)
        .unwrap()
        .spawn();
    let addr = handle.addr();
    let idle: Vec<Client> = (0..idle_conns)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let batch = slice_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = client.batch(&batch).unwrap();
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            assert!(matches!(r, Ok(Response::Slice(_))));
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    // The fleet sent nothing the whole run: give the idle deadline a
    // chance to reap all of it (bounded wait) so the artifact records
    // the reaper actually working, then count what's left.
    let reap_deadline = Instant::now() + Duration::from_secs(15);
    while handle.net_stats().reaped_idle < idle_conns as u64 && Instant::now() < reap_deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = handle.net_stats();
    let counters = NetCounters {
        open_connections: stats.open_connections,
        peak_connections: stats.peak_connections,
        reactor_wakeups: stats.reactor_wakeups,
        reaped_idle: stats.reaped_idle,
    };
    drop(idle);
    handle.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * BATCH) as u64;
    let served_mib = requests as f64 * SLICE_T as f64 * npoints as f64 * 8.0 / (1 << 20) as f64;
    (
        Scenario {
            name: "serve_net_idle",
            backend: "mmap",
            threads,
            batches_per_thread,
            elapsed_s,
            served_mib,
            requests,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
        },
        counters,
    )
}

/// Resilience counters recorded from the `serve_chaos` scenario: what
/// the seeded fault plan injected, how much work the saturated dispatch
/// queue shed, and what the self-healing clients spent absorbing it.
struct ChaosCounters {
    faults_injected: u64,
    shed: u64,
    client_retries: u64,
    client_reconnects: u64,
}

/// The wire workload under chaos: a deliberately starved dispatch path
/// (one worker, backlog cap of 1, every batch slowed by an injected
/// queue delay) plus seeded socket faults, driven by self-healing
/// clients. Throughput here is the *survivable* serve rate — every
/// response still checked — and the counters record the turbulence the
/// retry layer absorbed.
fn run_chaos_scenario(
    server: Arc<Server>,
    threads: usize,
    batches_per_thread: usize,
    npoints: usize,
) -> (Scenario, ChaosCounters) {
    let handle = NetServer::bind(
        "127.0.0.1:0",
        server,
        NetConfig {
            dispatch_threads: 1,
            max_dispatch_backlog: 1,
            shed_retry_after_ms: 2,
            ..NetConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let addr = handle.addr();
    let injected_before = faults::injected();
    faults::install(
        FaultPlan::seeded(0xEC0C4A05)
            .rule("net.read", FaultAction::ShortRead, 0.02)
            .rule("net.read", FaultAction::Interrupt, 0.02)
            .rule("net.read", FaultAction::Reset, 0.005)
            .rule(
                "net.write",
                FaultAction::Delay(Duration::from_micros(100)),
                0.02,
            )
            .rule(
                "dispatch",
                FaultAction::Delay(Duration::from_micros(500)),
                1.0,
            ),
    );
    let start = Instant::now();
    let results: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect_with(
                        addr,
                        ClientConfig {
                            connect_timeout: Some(Duration::from_secs(5)),
                            read_timeout: Some(Duration::from_secs(5)),
                            write_timeout: Some(Duration::from_secs(5)),
                            retry: Some(RetryPolicy {
                                max_retries: 64,
                                base_delay: Duration::from_millis(1),
                                max_delay: Duration::from_millis(20),
                                seed: t,
                            }),
                            ..ClientConfig::default()
                        },
                    )
                    .unwrap();
                    let batch = slice_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = client.batch(&batch).unwrap();
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            assert!(matches!(r, Ok(Response::Slice(_))));
                        }
                    }
                    let stats = client.client_stats();
                    (lat, stats.retries, stats.reconnects)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = handle.net_stats();
    let counters = ChaosCounters {
        faults_injected: faults::injected() - injected_before,
        shed: stats.shed,
        client_retries: results.iter().map(|(_, r, _)| r).sum(),
        client_reconnects: results.iter().map(|(_, _, r)| r).sum(),
    };
    faults::clear();
    handle.shutdown();
    let mut latencies: Vec<f64> = results.into_iter().flat_map(|(l, _, _)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * BATCH) as u64;
    let served_mib = requests as f64 * SLICE_T as f64 * npoints as f64 * 8.0 / (1 << 20) as f64;
    (
        Scenario {
            name: "serve_chaos",
            backend: "mmap",
            threads,
            batches_per_thread,
            elapsed_s,
            served_mib,
            requests,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
        },
        counters,
    )
}

/// Members in the sharded-cluster archive: enough distinct routing keys
/// that a consistent-hash ring spreads the workload over every shard.
const CLUSTER_MEMBERS: usize = 64;
/// Grid points per step in the cluster archive (kept small: the cluster
/// scenario measures routing and scatter-gather, not decode).
const CLUSTER_VPS: usize = 64;

/// Router/cluster counters and the placement simulation's verdict,
/// recorded from the `serve_cluster` scenario.
struct ClusterCounters {
    shards: usize,
    routed: u64,
    fanout_batches: u64,
    failovers: u64,
    rebalance_events: u64,
    sim_skew: f64,
    sim_fanout: f64,
    sim_speedup: f64,
    sim_efficiency: f64,
    /// Measured `(shards, mib_per_s)` at 1, 2, and 4 shards.
    scaling: Vec<(usize, f64)>,
}

/// An 8-member archive for the cluster scenario, so slice requests hash
/// to distinct `(archive, member)` ring keys.
fn cluster_archive_bytes() -> Vec<u8> {
    let meta = FieldMeta {
        ntheta: 8,
        nphi: 16,
        start_year: 2000,
        tau: 365,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for m in 0..CLUSTER_MEMBERS {
        let phase = m as f64 * 0.7;
        let data: Vec<f64> = (0..CLUSTER_VPS * T_MAX)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.013 + phase).sin())
            .collect();
        w.add_field(
            &format!("m{m}"),
            Codec::F32Shuffle,
            meta,
            CLUSTER_VPS,
            CHUNK_T,
            &data,
        )
        .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

/// A batch of slices spread over the cluster archive's members, so the
/// router scatter-gathers nearly every batch.
fn cluster_slice_batch(thread: u64) -> Vec<Request> {
    (0..BATCH as u64)
        .map(|i| {
            let t0 = (thread * 13 + i * 7) % (T_MAX as u64 - SLICE_T);
            Request::Slice(SliceRequest {
                archive: "a".to_string(),
                member: format!("m{}", (thread + i * 3) % CLUSTER_MEMBERS as u64),
                range: t0..t0 + SLICE_T,
            })
        })
        .collect()
}

/// Drive the wire workload through a router-backed front end over
/// `shards` backend `NetServer`s (every shard opens the same archive;
/// layout chosen by the placement planner). Returns throughput plus the
/// router's counters and the placement report.
fn run_cluster_once(
    archive: &[u8],
    shards: usize,
    threads: usize,
    batches_per_thread: usize,
) -> (
    f64,
    f64,
    Vec<f64>,
    exaclim_serve::RouterStats,
    exaclim_cluster::PlacementReport,
) {
    let backends: Vec<_> = (0..shards)
        .map(|_| {
            let mut catalog = Catalog::new();
            catalog.open_archive_bytes("a", archive.to_vec()).unwrap();
            let server = Arc::new(Server::new(catalog, ServeConfig::default()));
            NetServer::bind("127.0.0.1:0", server, NetConfig::default())
                .unwrap()
                .spawn()
        })
        .collect();
    let specs: Vec<ShardSpec> = backends
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::numbered(i, h.addr()))
        .collect();
    let keys: Vec<KeyWeight> = (0..CLUSTER_MEMBERS)
        .map(|m| KeyWeight::unit("a", format!("m{m}")))
        .collect();
    let machine = MachineSpec::of(Machine::Frontier);
    let (router, report) =
        Router::connect_placed(specs, &keys, &machine, RouterConfig::default()).unwrap();
    let router = Arc::new(router);
    let front = NetServer::bind_router("127.0.0.1:0", Arc::clone(&router), NetConfig::default())
        .unwrap()
        .spawn();
    let addr = front.addr();

    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let batch = cluster_slice_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = client.batch(&batch).unwrap();
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            assert!(matches!(r, Ok(Response::Slice(_))));
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = router.router_stats();
    front.shutdown();
    for h in backends {
        h.shutdown();
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = (threads * batches_per_thread * BATCH) as u64;
    let served_mib = requests as f64 * SLICE_T as f64 * CLUSTER_VPS as f64 * 8.0 / (1 << 20) as f64;
    (elapsed_s, served_mib, latencies, stats, report)
}

/// The `serve_cluster` scenario: throughput at `--shards`, plus a
/// 1/2/4-shard scaling sweep. Measured numbers on a shared-loopback
/// bench box are contention-bound; the placement simulation's
/// machine-model prediction (`sim_speedup`) is the deterministic scaling
/// claim CI pins.
fn run_cluster_scenario(
    shards: usize,
    threads: usize,
    batches_per_thread: usize,
) -> (Scenario, ClusterCounters) {
    let archive = cluster_archive_bytes();
    let mut scaling = Vec::new();
    let mut main_run = None;
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if !sweep.contains(&shards) {
        sweep.push(shards);
    }
    for &s in &sweep {
        let (elapsed_s, served_mib, latencies, stats, report) =
            run_cluster_once(&archive, s, threads, batches_per_thread);
        if s <= 4 {
            scaling.push((s, served_mib / elapsed_s));
        }
        if s == shards {
            main_run = Some((elapsed_s, served_mib, latencies, stats, report));
        }
    }
    let (elapsed_s, served_mib, latencies, stats, report) = main_run.unwrap();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * BATCH) as u64;
    (
        Scenario {
            name: "serve_cluster",
            backend: "memory",
            threads,
            batches_per_thread,
            elapsed_s,
            served_mib,
            requests,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
        },
        ClusterCounters {
            shards,
            routed: stats.routed,
            fanout_batches: stats.fanout_batches,
            failovers: stats.failovers,
            rebalance_events: stats.rebalance_events,
            sim_skew: report.skew,
            sim_fanout: report.fanout,
            sim_speedup: report.speedup_vs_single,
            sim_efficiency: report.efficiency,
            scaling,
        },
    )
}

fn server_for(path: &std::path::Path, use_mmap: bool, cache_bytes: usize) -> Server {
    let mut catalog = Catalog::new();
    catalog
        .open_archive_source("a", open_file_source(path, use_mmap).unwrap())
        .unwrap();
    Server::new(
        catalog,
        ServeConfig {
            cache_bytes,
            cache_shards: 8,
            ..ServeConfig::default()
        },
    )
}

/// Like [`server_for`], but with a trained emulator registered so the
/// scenario engine has an ensemble source.
fn scenario_server_for(path: &std::path::Path) -> Server {
    let mut catalog = Catalog::new();
    catalog
        .open_archive_source("a", open_file_source(path, true).unwrap())
        .unwrap();
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8))
        .expect("training succeeds at bench scale");
    catalog.register_emulator("em", emulator).unwrap();
    Server::new(catalog, ServeConfig::default())
}

/// A batch of overlapping slice reads, phase-shifted per thread so the
/// threads' working sets overlap without being identical.
fn slice_batch(thread: u64) -> Vec<Request> {
    (0..BATCH as u64)
        .map(|i| {
            let t0 = (thread * 13 + i * 7) % (T_MAX as u64 - SLICE_T);
            Request::Slice(SliceRequest {
                archive: "a".to_string(),
                member: "t2m".to_string(),
                range: t0..t0 + SLICE_T,
            })
        })
        .collect()
}

/// One scenario-engine batch: an ensemble fan-out plus derived
/// statistics over the archive and over fresh ensemble output. Seeds and
/// windows are phase-shifted per thread so threads share some product
/// descriptors (exercising the product cache) without all colliding.
fn product_batch(thread: u64) -> Vec<Request> {
    let t0 = (thread * 11) % (T_MAX as u64 - SLICE_T);
    let spec = |seed: u64| ScenarioSpec {
        emulator: "em".to_string(),
        t_max: ENS_T,
        seed,
        realizations: ENS_R,
    };
    vec![
        Request::Ensemble(spec(thread % 2)),
        Request::Product(ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::MeanStd,
            time: Some(t0..t0 + SLICE_T),
            space: None,
        }),
        Request::Product(ProductDescriptor {
            source: ProductSource::Ensemble(spec(7)),
            stat: ProductStat::TukeyExtremes { tail_per_mille: 25 },
            time: None,
            space: None,
        }),
        Request::Product(ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::Anomaly {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            },
            time: Some(t0..t0 + SLICE_T),
            space: None,
        }),
    ]
}

/// Drive the scenario-engine workload: `threads × batches_per_thread`
/// mixed ensemble + derived-statistic batches against one server, so
/// repeat descriptors hit the product cache.
fn run_scenario_products(server: &Server, threads: usize, batches_per_thread: usize) -> Scenario {
    let start = Instant::now();
    let per_thread: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let batch = product_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    let mut values = 0u64;
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = server.handle_batch(&batch);
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            match r {
                                Ok(Response::Product(p)) => values += p.values.len() as u64,
                                other => panic!("product request failed: {other:?}"),
                            }
                        }
                    }
                    (lat, values)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = per_thread.iter().flat_map(|(l, _)| l.clone()).collect();
    let values: u64 = per_thread.iter().map(|(_, v)| v).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * product_batch(0).len()) as u64;
    Scenario {
        name: "serve_scenario",
        backend: "mmap",
        threads,
        batches_per_thread,
        elapsed_s,
        served_mib: values as f64 * 8.0 / (1 << 20) as f64,
        requests,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
    }
}

/// Drive `threads × batches_per_thread` batches and collect wall time +
/// per-batch latency.
fn run_scenario(
    name: &'static str,
    backend: &'static str,
    server: &Server,
    threads: usize,
    batches_per_thread: usize,
    npoints: usize,
) -> Scenario {
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let batch = slice_batch(t);
                    let mut lat = Vec::with_capacity(batches_per_thread);
                    for _ in 0..batches_per_thread {
                        let t0 = Instant::now();
                        let responses = server.handle_batch(&batch);
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        for r in &responses {
                            assert!(matches!(r, Ok(Response::Slice(_))));
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let requests = (threads * batches_per_thread * BATCH) as u64;
    let served_mib = requests as f64 * SLICE_T as f64 * npoints as f64 * 8.0 / (1 << 20) as f64;
    Scenario {
        name,
        backend,
        threads,
        batches_per_thread,
        elapsed_s,
        served_mib,
        requests,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
    }
}

/// Product-cache counters recorded from the scenario-engine workload:
/// hits, misses, flight leads, coalesced waits, and computed products.
struct ProductCounters {
    hits: u64,
    misses: u64,
    flight_leads: u64,
    flight_waits: u64,
    computes: u64,
}

/// The non-scenario summary blocks of the JSON artifact, bundled so the
/// writer's signature stays stable as blocks accrete.
struct JsonBlocks<'a> {
    speedup_cold: f64,
    stampede: (u64, u64, u64),
    product: &'a ProductCounters,
    net: &'a NetCounters,
    streaming: &'a StreamCounters,
    chaos: &'a ChaosCounters,
    cluster: &'a ClusterCounters,
}

fn write_json(path: &str, scenarios: &[Scenario], blocks: &JsonBlocks<'_>) {
    let JsonBlocks {
        speedup_cold,
        stampede,
        product,
        net,
        streaming,
        chaos,
        cluster,
    } = blocks;
    // Schema version of this file; bump when fields change meaning. The
    // env block records the matrix leg the run came from, so CI artifacts
    // from different legs are comparable at the top level.
    let threads_env = std::env::var("EXACLIM_THREADS").unwrap_or_else(|_| "default".to_string());
    let mmap_env = std::env::var("EXACLIM_MMAP").unwrap_or_else(|_| "default".to_string());
    let mut out = format!(
        "{{\n  \"bench\": \"serve\",\n  \"version\": 7,\n  \
         \"env\": {{\"EXACLIM_THREADS\": \"{threads_env}\", \"EXACLIM_MMAP\": \"{mmap_env}\"}},\n  \
         \"scenarios\": [\n"
    );
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \"batches_per_thread\": {}, \
             \"elapsed_s\": {:.6}, \"served_mib\": {:.3}, \"mib_per_s\": {:.3}, \"req_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}}}{}\n",
            s.name,
            s.backend,
            s.threads,
            s.batches_per_thread,
            s.elapsed_s,
            s.served_mib,
            s.mib_per_s(),
            s.req_per_s(),
            s.p50_us,
            s.p95_us,
            if i + 1 < scenarios.len() { "," } else { "" },
        ));
    }
    let (decodes, leads, waits) = stampede;
    out.push_str(&format!(
        "  ],\n  \"cold_mmap_over_mutexed_speedup\": {speedup_cold:.3},\n  \
         \"stampede\": {{\"chunk_decodes\": {decodes}, \"flight_leads\": {leads}, \"flight_waits\": {waits}}},\n  \
         \"product_cache\": {{\"hits\": {}, \"misses\": {}, \"flight_leads\": {}, \"flight_waits\": {}, \"computes\": {}}},\n  \
         \"net\": {{\"open_connections\": {}, \"peak_connections\": {}, \"reactor_wakeups\": {}, \"reaped_idle\": {}}},\n  \
         \"streaming\": {{\"streamed_responses\": {}, \"stream_frames_out\": {}, \"peak_conn_buffered_bytes\": {}, \
         \"frames_per_response\": [{}]}},\n  \
         \"chaos\": {{\"faults_injected\": {}, \"shed\": {}, \"client_retries\": {}, \"client_reconnects\": {}}},\n  \
         \"cluster\": {{\"shards\": {}, \"routed\": {}, \"fanout_batches\": {}, \"failovers\": {}, \
         \"rebalance_events\": {}, \
         \"sim\": {{\"skew\": {:.4}, \"fanout\": {:.4}, \"speedup_vs_single\": {:.4}, \"efficiency\": {:.4}}}, \
         \"scaling\": [{}]}}\n}}\n",
        product.hits, product.misses, product.flight_leads, product.flight_waits, product.computes,
        net.open_connections, net.peak_connections, net.reactor_wakeups, net.reaped_idle,
        streaming.streamed_responses, streaming.stream_frames_out, streaming.peak_conn_buffered_bytes,
        streaming
            .frames_per_response
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        chaos.faults_injected, chaos.shed, chaos.client_retries, chaos.client_reconnects,
        cluster.shards, cluster.routed, cluster.fanout_batches, cluster.failovers,
        cluster.rebalance_events,
        cluster.sim_skew, cluster.sim_fanout, cluster.sim_speedup, cluster.sim_efficiency,
        cluster
            .scaling
            .iter()
            .map(|(s, mibs)| format!("{{\"shards\": {s}, \"mib_per_s\": {mibs:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    std::fs::write(path, out).unwrap();
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let threads = flag("--threads", 8);
    let batches = flag("--batches", 24);
    let idle_conns = flag("--idle", 300);
    let shards = flag("--shards", 4).max(1);

    let path = std::env::temp_dir().join(format!("exaclim_serve_perf_{}.eca1", std::process::id()));
    let (total, npoints) = build_archive_file(&path);
    println!("archive: {total} bytes on disk, {T_MAX} steps × {npoints} points, chunk_t {CHUNK_T}");
    println!(
        "workload: {threads} client threads × {batches} batches × {BATCH} slices of {SLICE_T} steps\n"
    );

    let mut scenarios = Vec::new();

    // Cold: zero cache budget — every batch decodes every touched chunk.
    // This is the fetch-path microscope: mutexed seek+read+copy vs.
    // lock-free borrowed mmap views.
    for (backend, use_mmap) in [("mutexed", false), ("mmap", true)] {
        let server = server_for(&path, use_mmap, 0);
        scenarios.push(run_scenario(
            "cold", backend, &server, threads, batches, npoints,
        ));
    }
    let speedup_cold = {
        let mutexed = scenarios[0].mib_per_s();
        let mapped = scenarios[1].mib_per_s();
        mapped / mutexed
    };

    // Warm: generous cache, primed — measures the hit path (identical for
    // both backends; run on mmap).
    {
        let server = server_for(&path, true, 256 << 20);
        for t in 0..threads as u64 {
            server.handle_batch(&slice_batch(t));
        }
        scenarios.push(run_scenario(
            "warm", "mmap", &server, threads, batches, npoints,
        ));
    }

    // Network: the warm-cache workload again, but spoken over the framed
    // TCP wire on loopback — the delta to "warm" is the protocol cost
    // (framing, CRC, socket round trip) at this batch size.
    let streaming = {
        let server = Arc::new(server_for(&path, true, 256 << 20));
        for t in 0..threads as u64 {
            server.handle_batch(&slice_batch(t));
        }
        let (scenario, streaming) = run_net_scenario(server, threads, batches, npoints);
        scenarios.push(scenario);
        streaming
    };

    // Network with a standing idle fleet: the same hot workload while
    // hundreds of keep-alive connections sit registered on the reactor —
    // the delta to "serve_net" is what an idle fleet costs the hot path
    // (the refactor's answer: a registration and a deadline, not a
    // thread), and the net gauges record the reaper clearing the fleet.
    let net = {
        let server = Arc::new(server_for(&path, true, 256 << 20));
        for t in 0..threads as u64 {
            server.handle_batch(&slice_batch(t));
        }
        let (scenario, net) = run_net_idle_scenario(server, threads, batches, npoints, idle_conns);
        scenarios.push(scenario);
        net
    };

    // Chaos: the wire workload under a seeded fault plan and a starved
    // dispatch queue — the throughput the serving stack sustains while
    // shedding overload and absorbing injected socket faults through
    // the clients' retry layer.
    let chaos = {
        let server = Arc::new(server_for(&path, true, 256 << 20));
        for t in 0..threads as u64 {
            server.handle_batch(&slice_batch(t));
        }
        let (scenario, chaos) = run_chaos_scenario(server, threads, batches, npoints);
        scenarios.push(scenario);
        chaos
    };

    // Cluster: the wire workload through a consistent-hash router over N
    // backend shards (placement chosen by the cost-model planner), plus a
    // 1/2/4-shard scaling sweep. On a shared bench box the measured sweep
    // is contention-bound; the deterministic scaling claim is the
    // placement simulation's machine-model prediction.
    let cluster = {
        let (scenario, cluster) = run_cluster_scenario(shards, threads, batches);
        scenarios.push(scenario);
        cluster
    };

    // Scenario engine: mixed ensemble fan-out + derived statistics; the
    // repeat descriptors across batches land in the product cache, so
    // throughput here is the cached-product serve rate after the first
    // round computes each distinct product once.
    let product = {
        let server = scenario_server_for(&path);
        let scenario = run_scenario_products(&server, threads, batches);
        scenarios.push(scenario);
        let cache = server.product_cache_stats();
        ProductCounters {
            hits: cache.hits,
            misses: cache.misses,
            flight_leads: cache.flight_leads,
            flight_waits: cache.flight_waits,
            computes: server.stats().product_computes,
        }
    };

    // Stampede: every thread fires the same single-slice batch at a cold
    // server; the single-flight map must hold decodes at one per chunk.
    let stampede = {
        let server = server_for(&path, true, 256 << 20);
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let batch = vec![Request::Slice(SliceRequest {
                        archive: "a".to_string(),
                        member: "t2m".to_string(),
                        range: 0..SLICE_T,
                    })];
                    for r in server.handle_batch(&batch) {
                        assert!(r.is_ok());
                    }
                });
            }
        });
        let stats = server.stats();
        let cache = server.cache_stats();
        (stats.chunk_decodes, cache.flight_leads, cache.flight_waits)
    };

    println!(
        "{:<9} {:<9} {:>10} {:>12} {:>10} {:>10}",
        "case", "backend", "MiB/s", "req/s", "p50 µs", "p95 µs"
    );
    for s in &scenarios {
        println!(
            "{:<9} {:<9} {:>10.1} {:>12.0} {:>10.1} {:>10.1}",
            s.name,
            s.backend,
            s.mib_per_s(),
            s.req_per_s(),
            s.p50_us,
            s.p95_us
        );
    }
    println!("\ncold {threads}-thread speedup (mmap over mutexed): {speedup_cold:.2}×");
    let (decodes, leads, waits) = stampede;
    println!(
        "stampede over {} unique chunks: {decodes} decodes, {leads} leads, {waits} coalesced waits",
        SLICE_T.div_ceil(CHUNK_T as u64)
    );
    println!(
        "product cache: {} hits, {} misses, {} leads, {} coalesced waits, {} computed products",
        product.hits, product.misses, product.flight_leads, product.flight_waits, product.computes
    );
    println!(
        "net ({idle_conns} idle + {threads} hot conns): peak {}, open at end {}, {} reactor wakeups, {} reaped idle",
        net.peak_connections, net.open_connections, net.reactor_wakeups, net.reaped_idle
    );
    println!(
        "streaming: {} streamed responses in {} fragments, peak {} owned bytes/conn, frames/resp histogram {:?}",
        streaming.streamed_responses,
        streaming.stream_frames_out,
        streaming.peak_conn_buffered_bytes,
        streaming.frames_per_response
    );
    println!(
        "chaos: {} faults injected, {} requests shed, clients spent {} retries and {} reconnects",
        chaos.faults_injected, chaos.shed, chaos.client_retries, chaos.client_reconnects
    );
    println!(
        "cluster ({} shards): {} routed, {} fan-out batches, {} failovers; sim skew {:.3}, \
         predicted {:.2}× single-shard ({:.0}% efficiency); measured scaling {}",
        cluster.shards,
        cluster.routed,
        cluster.fanout_batches,
        cluster.failovers,
        cluster.sim_skew,
        cluster.sim_speedup,
        100.0 * cluster.sim_efficiency,
        cluster
            .scaling
            .iter()
            .map(|(s, m)| format!("{s}→{m:.0} MiB/s"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    if json {
        write_json(
            "BENCH_serve.json",
            &scenarios,
            &JsonBlocks {
                speedup_cold,
                stampede,
                product: &product,
                net: &net,
                streaming: &streaming,
                chaos: &chaos,
                cluster: &cluster,
            },
        );
    }
    std::fs::remove_file(&path).ok();
}
