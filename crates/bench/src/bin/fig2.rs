//! Figure 2: hourly simulations vs emulations for two days, reported as
//! per-field statistics plus the statistical-consistency scorecard.
//!
//! The paper plots 24-hour surface-temperature maps from ERA5 and from the
//! emulator for Jan 1 and Jun 1, 2019. Here the synthetic-ERA5 substitute is
//! used (DESIGN.md §2) at an hourly cadence; "maps match statistically" is
//! quantified instead of eyeballed.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig2
//! ```

use exaclim::{validate_consistency, ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_mathkit::stats::OnlineStats;

fn main() {
    // Hourly generator: τ = 8760 activates the diurnal harmonic.
    let mut gen_cfg = SyntheticEra5Config::small_daily(12);
    gen_cfg.tau = 8760;
    gen_cfg.ar_phi = 0.9; // hourly weather is more persistent
    let generator = SyntheticEra5::new(gen_cfg);
    // One year of hourly training data.
    let training = generator.generate_member(0, 8760);

    let mut cfg = EmulatorConfig::small(8);
    cfg.tau = 8760;
    let emulator = ClimateEmulator::train(&training, cfg).expect("training succeeds");
    let emulation = emulator.emulate(8760, 2019).expect("emulation succeeds");

    // "Jan 1" = hours 0..24; "Jun 1" = hours 3624..3648 (day 151).
    for (label, start) in [("Jan 01", 0usize), ("Jun 01", 151 * 24)] {
        println!("== {label} (24 hourly fields) ==");
        println!(
            "{:<12} {:>10} {:>9} {:>9} {:>9} {:>11}",
            "source", "mean (K)", "std (K)", "min (K)", "max (K)", "diurnal (K)"
        );
        for (name, d) in [("simulation", &training), ("emulation", &emulation)] {
            let mut st = OnlineStats::new();
            let mut hour_means = Vec::with_capacity(24);
            for h in 0..24 {
                let f = d.field(start + h);
                st.extend(f);
                hour_means.push(f.iter().sum::<f64>() / f.len() as f64);
            }
            let diurnal = hour_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - hour_means.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "{:<12} {:>10.2} {:>9.2} {:>9.1} {:>9.1} {:>11.2}",
                name,
                st.mean(),
                st.std_dev(),
                st.min(),
                st.max(),
                diurnal
            );
        }
        println!();
    }

    let report = validate_consistency(&training, &emulation);
    println!("consistency scorecard (full year, hourly):");
    println!("  mean nRMSE             {:.4}", report.mean_nrmse);
    println!("  std ratio (median)     {:.4}", report.std_ratio_median);
    println!(
        "  mean-field correlation {:.4}",
        report.mean_field_correlation
    );
    println!(
        "  std-field correlation  {:.4}",
        report.std_field_correlation
    );
    println!("  |Δ acf(1)|             {:.4}", report.acf1_abs_diff);
    println!("  PASSES: {}", report.passes());
    assert!(
        report.passes(),
        "Figure 2 claim: statistically consistent emulation"
    );
}
