//! Table I: DP/HP performance on 1,024 nodes of Frontier, Alps, Leonardo,
//! and Summit — absolute PFlop/s and normalized TFlop/s per GPU.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin table1
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{avg_bytes_per_element, simulate_cholesky, SimConfig, Variant};

fn main() {
    println!("== Table I: DP/HP on 1,024 nodes ==");
    println!(
        "{:<10} {:>6} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "system", "GPUs", "matrix", "model PF", "paper PF", "TF/GPU", "paper TF/GPU"
    );
    // (machine, paper matrix size, paper PF, paper TF/GPU)
    let rows = [
        (Machine::Frontier, 8_390_000usize, 223.7, 54.6),
        (Machine::Alps, 10_490_000, 384.2, 93.8),
        (Machine::Leonardo, 8_390_000, 243.1, 57.2),
        (Machine::Summit, 6_290_000, 153.6, 25.0),
    ];
    let mut per_gpu = Vec::new();
    for (m, n, paper_pf, paper_tf) in rows {
        let spec = MachineSpec::of(m);
        let gpus = 1024 * spec.gpus_per_node;
        let cfg = SimConfig::new(n, 1024, Variant::DpHp);
        let r = simulate_cholesky(&spec, &cfg);
        let tf_gpu = r.pflops * 1e3 / gpus as f64;
        println!(
            "{:<10} {:>6} {:>8.2}M {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            spec.name,
            gpus,
            n as f64 / 1e6,
            r.pflops,
            paper_pf,
            tf_gpu,
            paper_tf
        );
        per_gpu.push((spec.name, tf_gpu, paper_tf));
        // Matrix sizes the paper used must fit the modeled memory.
        let nt = n / cfg.tile;
        assert!(
            n <= spec.max_matrix_n(1024, avg_bytes_per_element(Variant::DpHp, nt)) * 2,
            "{}: paper size must be near the memory capacity",
            spec.name
        );
        // Within 35% of the paper's absolute number.
        assert!(
            (tf_gpu / paper_tf - 1.0).abs() < 0.35,
            "{}: {tf_gpu:.1} vs paper {paper_tf}",
            spec.name
        );
    }
    println!();
    // The paper's ordering: GH200 > A100 ≈ MI250X > V100 per GPU.
    let get = |name: &str| per_gpu.iter().find(|(n, ..)| *n == name).unwrap().1;
    assert!(get("Alps") > get("Leonardo"));
    assert!(get("Leonardo") > get("Summit"));
    assert!(get("Frontier") > get("Summit"));
    println!(
        "ordering reproduced: GH200 ({:.0}) > A100 ({:.0}) ≈ MI250X ({:.0}) > V100 ({:.0}) TF/GPU;\n\
         GH200 outperforms MI250X by {:.1}× (paper: 1.6×, ≈1.7× per Table I numbers)",
        get("Alps"),
        get("Leonardo"),
        get("Frontier"),
        get("Summit"),
        get("Alps") / get("Frontier")
    );
}
