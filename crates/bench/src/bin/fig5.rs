//! Figure 5: sender- vs receiver-side precision conversion on 128 Summit
//! nodes (768 V100), matrix sizes 0.66M–1.27M — "new" vs "old" runtime.
//!
//! Two levels of evidence:
//! 1. the timing model (simulated Summit), reproducing the speedup curves,
//! 2. the exact message ledger of the in-house runtime's distribution
//!    simulator: bytes and conversion counts per placement.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig5
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_runtime::distsim::{simulate_distribution, ConversionSide, DistConfig};

fn main() {
    let spec = MachineSpec::of(Machine::Summit);
    let nodes = 128;
    println!("== Figure 5 (timing model): Summit {nodes} nodes, new vs old ==");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>9}",
        "variant", "matrix", "new PF", "old PF", "speedup"
    );
    let sizes = [660_000usize, 860_000, 1_060_000, 1_270_000];
    let paper = [("DP", 1.15), ("DP/SP", 1.06), ("DP/HP", 1.53)];
    for (v, (label, paper_speedup)) in [Variant::Dp, Variant::DpSp, Variant::DpHp]
        .into_iter()
        .zip(paper)
    {
        for &n in &sizes {
            let new = simulate_cholesky(&spec, &SimConfig::new(n, nodes, v));
            let old = simulate_cholesky(&spec, &SimConfig::legacy(n, nodes, v));
            println!(
                "{:<10} {:>9.2}M {:>12.2} {:>12.2} {:>8.2}x",
                label,
                n as f64 / 1e6,
                new.pflops,
                old.pflops,
                new.pflops / old.pflops
            );
        }
        println!("  (paper speedup at the largest size: {paper_speedup}x)");
    }

    println!();
    println!("== Message ledger (exact runtime distribution simulation) ==");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12}",
        "variant", "placement", "messages", "bytes", "conversions"
    );
    let nt = 64;
    let b = 512;
    let grid = |side| DistConfig {
        p: 8,
        q: 16,
        conversion: side,
    };
    for (label, policy) in [
        ("DP", PrecisionPolicy::dp()),
        ("DP/SP", PrecisionPolicy::dp_sp()),
        ("DP/HP", PrecisionPolicy::dp_hp()),
    ] {
        let recv = simulate_distribution(nt, b, &policy, &grid(ConversionSide::Receiver));
        let send = simulate_distribution(nt, b, &policy, &grid(ConversionSide::Sender));
        for (place, l) in [("receiver", recv), ("sender", send)] {
            println!(
                "{:<10} {:>12} {:>14} {:>14.3e} {:>12}",
                label, place, l.messages, l.bytes, l.conversions
            );
        }
        assert!(
            send.bytes <= recv.bytes,
            "{label}: sender-side conversion must not increase traffic"
        );
    }
    println!();
    println!(
        "Shape reproduced: sender-side conversion shrinks wire bytes and\n\
         repeated conversions, with the largest gain for DP/HP — the\n\
         mechanism behind the paper's 1.53× speedup."
    );
}
