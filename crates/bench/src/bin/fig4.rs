//! Figure 4: emulated fields with the covariance factor computed at
//! DP, DP/SP, and DP/HP — statistical consistency must survive precision
//! demotion of the Cholesky.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig4
//! ```

use exaclim::{validate_consistency, ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_linalg::precision::PrecisionPolicy;

fn main() {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 3 * 365);

    println!("== Figure 4: emulation quality vs covariance-factor precision ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "variant", "mean nRMSE", "std ratio", "mean corr", "|Δ acf1|", "passes"
    );
    let nt = 64 / 16;
    let policies = [
        ("DP", PrecisionPolicy::dp()),
        ("DP/SP", PrecisionPolicy::dp_sp()),
        ("DP/SP/HP", PrecisionPolicy::dp_sp_hp(nt)),
        ("DP/HP", PrecisionPolicy::dp_hp()),
    ];
    let mut all_pass = true;
    for (label, policy) in policies {
        let mut cfg = EmulatorConfig::small(8);
        cfg.precision = policy;
        cfg.tile = 16; // 4×4 tiles over the 64×64 covariance
        let emulator = ClimateEmulator::train(&training, cfg).expect("training succeeds");
        let emulation = emulator.emulate(3 * 365, 44).expect("emulation succeeds");
        let r = validate_consistency(&training, &emulation);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>10}",
            label,
            r.mean_nrmse,
            r.std_ratio_median,
            r.mean_field_correlation,
            r.acf1_abs_diff,
            r.passes()
        );
        all_pass &= r.passes();
    }
    println!();
    println!(
        "Paper claim (Fig. 4): emulations remain statistically consistent at\n\
         every precision variant of the tile Cholesky — {}",
        if all_pass {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    assert!(all_pass);
}
