//! Figure 8: the largest-scale DP/HP runs on all four systems, including
//! the Frontier and Alps run-up points.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig8
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};

fn main() {
    println!("== Figure 8: largest runs (DP/HP variant) ==");
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>12} {:>12} {:>8}",
        "machine", "nodes", "GPUs", "matrix", "model PF", "paper PF", "ratio"
    );
    let runs = [
        (Machine::Frontier, 2_048usize, 12_580_000usize, 316.0),
        (Machine::Frontier, 4_096, 16_780_000, 523.0),
        (Machine::Frontier, 6_400, 20_970_000, 715.0),
        (Machine::Frontier, 9_025, 27_240_000, 976.0),
        (Machine::Alps, 1_024, 10_490_000, 364.0),
        (Machine::Alps, 1_600, 14_420_000, 623.0),
        (Machine::Alps, 1_936, 15_730_000, 739.0),
        (Machine::Summit, 3_072, 12_580_000, 375.0),
        (Machine::Leonardo, 1_024, 8_390_000, 243.0),
    ];
    let mut frontier_series = Vec::new();
    for (m, nodes, n, paper) in runs {
        let spec = MachineSpec::of(m);
        let r = simulate_cholesky(&spec, &SimConfig::new(n, nodes, Variant::DpHp));
        println!(
            "{:<10} {:>7} {:>8} {:>8.2}M {:>12.1} {:>12.1} {:>8.2}",
            spec.name,
            nodes,
            nodes * spec.gpus_per_node,
            n as f64 / 1e6,
            r.pflops,
            paper,
            r.pflops / paper
        );
        if m == Machine::Frontier {
            frontier_series.push(r.pflops);
        }
    }
    // Shape checks: Frontier's run-up is monotone and the 9,025-node run is
    // the global maximum (the paper's 0.976 EFlop/s headline).
    for w in frontier_series.windows(2) {
        assert!(w[1] > w[0], "Frontier run-up must be monotone");
    }
    let frontier_max = frontier_series.last().copied().unwrap();
    println!();
    println!(
        "modeled Frontier flagship: {:.3} EFlop/s (paper: 0.976 EFlop/s)",
        frontier_max / 1e3
    );
    assert!(
        frontier_max > 600.0,
        "must be within 2× of the paper's EFlop/s scale"
    );
    assert!(
        frontier_max / 1e3 > 0.5 && frontier_max / 1e3 < 2.0,
        "order-of-magnitude agreement with 0.976 EF"
    );
}
