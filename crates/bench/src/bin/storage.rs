//! Storage-savings ledger (the title's "Saving PetaBytes" and §I/§VI):
//! archive-vs-emulator volumes across configurations, with dollar costs.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin storage
//! ```

use exaclim_climate::storage::{
    CMIP3_BYTES, CMIP5_BYTES, CMIP6_BYTES, DOLLARS_PER_TB_YEAR, PB,
    SCREAM_BYTES_PER_DAY, StorageModel, TB, paper_headline_model,
};

fn main() {
    println!("== §I reference volumes ==");
    for (name, b) in [
        ("CMIP3", CMIP3_BYTES),
        ("CMIP5", CMIP5_BYTES),
        ("CMIP6", CMIP6_BYTES),
    ] {
        println!(
            "{name}: {:>8.2} TB = {:>6.3} PB, carrying cost ${:.2}M/yr",
            b / TB,
            b / PB,
            b / TB * DOLLARS_PER_TB_YEAR / 1e6
        );
    }
    println!(
        "SCREAM@DYAMOND: {:.1} TB per simulated day → {:.0} TB per 40-day campaign",
        SCREAM_BYTES_PER_DAY / TB,
        SCREAM_BYTES_PER_DAY * 40.0 / TB
    );
    println!();

    println!("== Archive vs emulator across scales ==");
    println!(
        "{:<46} {:>11} {:>11} {:>8}",
        "configuration", "archive TB", "emulator TB", "ratio"
    );
    let rows = [
        (
            "L=64 daily 30yr R=5 (laptop scale)",
            StorageModel {
                ensemble_size: 5,
                t_max: 30 * 365,
                npoints: 66 * 129,
                lmax: 64,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        (
            "L=720 ERA5 hourly 35yr R=10 (paper training)",
            StorageModel {
                ensemble_size: 10,
                t_max: 306_600,
                npoints: 721 * 1440,
                lmax: 720,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        ("L=5219 hourly 83yr R=100 (headline)", paper_headline_model(100, 83)),
    ];
    let mut last_saved = 0.0;
    for (name, m) in rows {
        println!(
            "{:<46} {:>11.2} {:>11.2} {:>7.1}×",
            name,
            m.ensemble_bytes() / TB,
            m.emulator_bytes() / TB,
            m.savings_ratio()
        );
        last_saved = m.bytes_saved();
    }
    println!();
    println!(
        "headline configuration saves {:.2} PB (${:.2}M/yr at NCAR's $45/TB/yr)",
        last_saved / PB,
        last_saved / TB * DOLLARS_PER_TB_YEAR / 1e6
    );
    assert!(last_saved > 10.0 * PB, "the title's petabyte claim");
}
