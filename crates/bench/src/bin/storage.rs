//! Storage-savings ledger (the title's "Saving PetaBytes" and §I/§VI):
//! archive-vs-emulator volumes across configurations, with dollar costs.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin storage
//! ```

use exaclim::{ClimateEmulator, EmulatorConfig, TrainedEmulator};
use exaclim_climate::storage::{
    paper_headline_model, StorageModel, CMIP3_BYTES, CMIP5_BYTES, CMIP6_BYTES, DOLLARS_PER_TB_YEAR,
    PB, SCREAM_BYTES_PER_DAY, TB,
};
use exaclim_climate::{dataset_to_eca1, encode_dataset, SyntheticEra5, SyntheticEra5Config};
use exaclim_store::Codec;

/// Measured (not modeled) bytes: write a real synthetic member through
/// every container/codec and a real trained emulator through the ECA1
/// snapshot path, and report what actually lands on disk.
fn measured_ledger() {
    println!("== Measured bytes (L=8 daily, 1 member × 2 yr, synthetic ERA5) ==");
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let days = 2 * 365;
    let member = generator.generate_member(0, days);
    let raw64 = member.data.len() * 8;
    let xclm = encode_dataset(&member).len();
    println!(
        "{:<28} {:>12} bytes {:>8}",
        "raw f64 (in memory)", raw64, "1.00×"
    );
    println!(
        "{:<28} {:>12} bytes {:>7.2}×",
        "XCLM v1 (legacy f32)",
        xclm,
        raw64 as f64 / xclm as f64
    );
    let mut f32_archive = 0usize;
    let mut shuffled_archive = 0usize;
    for codec in Codec::ALL {
        let eca = dataset_to_eca1(&member, codec).expect("archive writes");
        println!(
            "{:<28} {:>12} bytes {:>7.2}×",
            format!("ECA1 {}", codec.label()),
            eca.len(),
            raw64 as f64 / eca.len() as f64
        );
        match codec {
            Codec::F32 => f32_archive = eca.len(),
            Codec::F32Shuffle => shuffled_archive = eca.len(),
            _ => {}
        }
    }
    assert!(
        shuffled_archive < f32_archive,
        "shuffle+RLE must beat raw f32 on smooth fields: {shuffled_archive} vs {f32_archive}"
    );

    let emulator = ClimateEmulator::train(&member, EmulatorConfig::small(8))
        .expect("training succeeds at toy scale");
    let path = std::env::temp_dir().join("exaclim_storage_bin_snapshot.eca1");
    let snapshot_bytes = emulator.save(&path).expect("snapshot writes");
    let _ = TrainedEmulator::load(&path).expect("snapshot reloads");
    std::fs::remove_file(&path).ok();
    println!(
        "{:<28} {:>12} bytes {:>7.2}×  (modeled parameter bytes: {})",
        "emulator snapshot (ECA1)",
        snapshot_bytes,
        raw64 as f64 / snapshot_bytes as f64,
        emulator.parameter_bytes()
    );
    println!(
        "one member measured; the emulator regenerates unlimited members from \
         {snapshot_bytes} bytes\n"
    );
}

fn main() {
    measured_ledger();
    println!("== §I reference volumes ==");
    for (name, b) in [
        ("CMIP3", CMIP3_BYTES),
        ("CMIP5", CMIP5_BYTES),
        ("CMIP6", CMIP6_BYTES),
    ] {
        println!(
            "{name}: {:>8.2} TB = {:>6.3} PB, carrying cost ${:.2}M/yr",
            b / TB,
            b / PB,
            b / TB * DOLLARS_PER_TB_YEAR / 1e6
        );
    }
    println!(
        "SCREAM@DYAMOND: {:.1} TB per simulated day → {:.0} TB per 40-day campaign",
        SCREAM_BYTES_PER_DAY / TB,
        SCREAM_BYTES_PER_DAY * 40.0 / TB
    );
    println!();

    println!("== Archive vs emulator across scales ==");
    println!(
        "{:<46} {:>11} {:>11} {:>8}",
        "configuration", "archive TB", "emulator TB", "ratio"
    );
    let rows = [
        (
            "L=64 daily 30yr R=5 (laptop scale)",
            StorageModel {
                ensemble_size: 5,
                t_max: 30 * 365,
                npoints: 66 * 129,
                lmax: 64,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        (
            "L=720 ERA5 hourly 35yr R=10 (paper training)",
            StorageModel {
                ensemble_size: 10,
                t_max: 306_600,
                npoints: 721 * 1440,
                lmax: 720,
                k_harmonics: 5,
                var_order: 3,
            },
        ),
        (
            "L=5219 hourly 83yr R=100 (headline)",
            paper_headline_model(100, 83),
        ),
    ];
    let mut last_saved = 0.0;
    for (name, m) in rows {
        println!(
            "{:<46} {:>11.2} {:>11.2} {:>7.1}×",
            name,
            m.ensemble_bytes() / TB,
            m.emulator_bytes() / TB,
            m.savings_ratio()
        );
        last_saved = m.bytes_saved();
    }
    println!();
    println!(
        "headline configuration saves {:.2} PB (${:.2}M/yr at NCAR's $45/TB/yr)",
        last_saved / PB,
        last_saved / TB * DOLLARS_PER_TB_YEAR / 1e6
    );
    assert!(last_saved > 10.0 * PB, "the title's petabyte claim");
}
