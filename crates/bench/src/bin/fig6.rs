//! Figure 6: Cholesky performance of the four precision variants on 2,048
//! Summit nodes (12,288 V100), matrix sizes 2.10M–8.39M.
//!
//! Paper anchors: DP reaches 61.7% of the DP peak; speedups over DP are
//! 2.0× (DP/SP), 3.2× (DP/SP/HP), 5.2× (DP/HP); DP/HP reaches
//! 304.84 PFlop/s at 8.39M.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig6
//! ```

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};

fn main() {
    let spec = MachineSpec::of(Machine::Summit);
    let nodes = 2_048;
    let peak = spec.dp_peak_pf(nodes);
    let sizes: [usize; 7] = [
        2_100_000, 3_150_000, 4_190_000, 5_240_000, 6_290_000, 7_340_000, 8_390_000,
    ];
    println!("== Figure 6: Summit {nodes} nodes (12,288 V100), DP peak {peak:.1} PF ==");
    print!("{:<10}", "matrix");
    for v in Variant::all() {
        print!(" {:>10}", v.label());
    }
    println!();
    let mut at_max = [0.0f64; 4];
    for &n in &sizes {
        print!("{:>8.2}M ", n as f64 / 1e6);
        for (i, v) in Variant::all().into_iter().enumerate() {
            let r = simulate_cholesky(&spec, &SimConfig::new(n, nodes, v));
            print!(" {:>10.1}", r.pflops);
            if n == *sizes.last().unwrap() {
                at_max[i] = r.pflops;
            }
        }
        println!();
    }
    println!();
    let dp = at_max[0];
    println!(
        "DP fraction of peak at 8.39M: {:.1}% (paper: 61.7%)",
        100.0 * dp / peak
    );
    for (i, v) in Variant::all().into_iter().enumerate().skip(1) {
        let paper = [0.0, 2.0, 3.2, 5.2][i];
        println!(
            "{:<9} speedup over DP: {:.2}× (paper: {paper}×)",
            v.label(),
            at_max[i] / dp
        );
    }
    println!(
        "DP/HP at 8.39M: {:.1} PFlop/s (paper: 304.84 PFlop/s)",
        at_max[3]
    );
    assert!(at_max[3] / dp > at_max[2] / dp && at_max[2] / dp > at_max[1] / dp);
    assert!(at_max[1] / dp > 1.0);
}
