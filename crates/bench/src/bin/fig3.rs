//! Figure 3: the emulator design-and-development pipeline, executed for
//! real with per-stage wall-clock timing — the dynamic counterpart of the
//! paper's overview diagram.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig3
//! ```

use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::TiledMatrix;
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use exaclim_sht::{analysis_batch, synthesis_batch, HarmonicCoeffs, ShtPlan};
use exaclim_stats::covariance::{empirical_covariance, ensure_spd};
use exaclim_stats::emulate::CoefficientSampler;
use exaclim_stats::forcing::ForcingSeries;
use exaclim_stats::trend::{fit_grid, TrendConfig};
use exaclim_stats::var::fit_diagonal_var;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let lmax = 10;
    let t_max = 3 * 365;
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(14));
    let data = generator.generate_member(0, t_max);
    let npoints = data.npoints;
    println!("== Figure 3 pipeline, executed (L={lmax}, T={t_max}, {npoints} points) ==");
    let mut total = 0.0;
    let mut stage = |name: &str, secs: f64| {
        total += secs;
        println!("{name:<46} {secs:>9.3}s");
    };

    // Stage 1: mean trend + standardization (eq. 2).
    let t0 = Instant::now();
    let forcing = ForcingSeries::historical_like(
        data.start_year,
        data.start_year + (t_max / 365 + 2) as i64,
        30,
    );
    let trend_cfg = TrendConfig::daily(data.start_year);
    let fit = fit_grid(&data.data, t_max, npoints, &trend_cfg, &forcing);
    stage(
        "1. trend fit + residual standardization",
        t0.elapsed().as_secs_f64(),
    );

    // Stage 2: forward SHT of every slice (eqs. 4–8).
    let t0 = Instant::now();
    let plan = ShtPlan::equiangular(lmax, data.ntheta, data.nphi);
    let coeff_sets = analysis_batch(&plan, &fit.residuals, t_max);
    let series: Vec<Vec<f64>> = coeff_sets
        .iter()
        .map(HarmonicCoeffs::to_real_vector)
        .collect();
    stage(
        "2. forward SHT (Wigner/FFT engine, batched)",
        t0.elapsed().as_secs_f64(),
    );

    // Stage 3: VAR(P) temporal model.
    let t0 = Instant::now();
    let var = fit_diagonal_var(&series, 3);
    let xi = var.innovations(&series);
    stage(
        "3. diagonal VAR(3) fit + innovations",
        t0.elapsed().as_secs_f64(),
    );

    // Stage 4: empirical covariance (eq. 9) + SPD repair.
    let t0 = Instant::now();
    let mut u = empirical_covariance(&xi);
    let jitter = ensure_spd(&mut u);
    stage(
        "4. empirical covariance U (eq. 9)",
        t0.elapsed().as_secs_f64(),
    );

    // Stage 5: mixed-precision tile Cholesky on the task runtime.
    let t0 = Instant::now();
    let dim = lmax * lmax;
    let mut tiled = TiledMatrix::from_dense(u.as_slice(), dim, lmax, &PrecisionPolicy::dp_hp());
    let (stats, trace) =
        parallel_tile_cholesky(&mut tiled, 4, SchedulerKind::PriorityHeap).unwrap();
    stage(
        "5. DP/HP tile Cholesky (task DAG)",
        t0.elapsed().as_secs_f64(),
    );
    let factor = tiled.to_dense_lower();

    // Stage 6: emulation — sample, VAR forward, inverse SHT.
    let t0 = Instant::now();
    let sampler = CoefficientSampler::new(var, factor, dim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let path = sampler.sample_path(t_max, &mut rng);
    let sets: Vec<HarmonicCoeffs> = path
        .iter()
        .map(|f| HarmonicCoeffs::from_real_vector(lmax, f))
        .collect();
    let fields = synthesis_batch(&plan, &sets);
    stage(
        "6. emulate: ξ=Vη → VAR → inverse SHT",
        t0.elapsed().as_secs_f64(),
    );

    println!("{:-<58}", "");
    println!("{:<46} {total:>9.3}s", "total");
    println!();
    println!(
        "covariance jitter: {jitter:.2e}; Cholesky kernels \
         (potrf,trsm,syrk,gemm) = {:?}; runtime utilization {:.0}%",
        stats.kernel_counts,
        100.0 * trace.utilization()
    );
    assert_eq!(fields.len(), t_max * npoints);
    assert!(fields.iter().all(|v| v.is_finite()));
}
