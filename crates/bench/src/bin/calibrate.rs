//! Calibration dashboard: prints the model outputs against every paper
//! target so the derating constants in `exaclim-cluster` can be tuned.

use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::scaling::strong_scaling;
use exaclim_cluster::sim::{simulate_cholesky, SimConfig, Variant};

fn main() {
    let summit = MachineSpec::of(Machine::Summit);
    // Fig 6: Summit 2048 nodes, 8.39M.
    let dp = simulate_cholesky(&summit, &SimConfig::new(8_390_000, 2048, Variant::Dp));
    println!(
        "Summit DP frac of peak: {:.3} (paper 0.617)",
        dp.pflops / summit.dp_peak_pf(2048)
    );
    for v in [Variant::DpSp, Variant::DpSpHp, Variant::DpHp] {
        let r = simulate_cholesky(&summit, &SimConfig::new(8_390_000, 2048, v));
        println!(
            "  {} speedup {:.2} (paper {})",
            v.label(),
            r.pflops / dp.pflops,
            match v {
                Variant::DpSp => "2.0",
                Variant::DpSpHp => "3.2",
                _ => "5.2",
            }
        );
    }
    let hp = simulate_cholesky(&summit, &SimConfig::new(8_390_000, 2048, Variant::DpHp));
    println!("Summit DP/HP @8.39M: {:.1} PF (paper 304.84)", hp.pflops);
    // Table I: 1024 nodes DP/HP.
    println!("--- Table I (TF/GPU @1024 nodes, DP/HP) ---");
    for (m, n, target) in [
        (Machine::Frontier, 8_390_000usize, 54.6),
        (Machine::Alps, 10_490_000, 93.8),
        (Machine::Leonardo, 8_390_000, 57.2),
        (Machine::Summit, 6_290_000, 25.0),
    ] {
        let spec = MachineSpec::of(m);
        let r = simulate_cholesky(&spec, &SimConfig::new(n, 1024, Variant::DpHp));
        let per_gpu = r.pflops * 1e3 / (1024 * spec.gpus_per_node) as f64;
        println!(
            "  {:<9} {:>6.1} TF/GPU (paper {target})",
            spec.name, per_gpu
        );
    }
    // Fig 8 largest runs.
    println!("--- Fig 8 (PFlop/s) ---");
    for (m, nodes, n, target) in [
        (Machine::Frontier, 9_025usize, 27_240_000usize, 976.0),
        (Machine::Frontier, 6_400, 20_970_000, 715.0),
        (Machine::Frontier, 4_096, 16_780_000, 523.0),
        (Machine::Frontier, 2_048, 12_580_000, 316.0),
        (Machine::Alps, 1_936, 15_730_000, 739.0),
        (Machine::Alps, 1_600, 14_420_000, 623.0),
        (Machine::Alps, 1_024, 10_490_000, 364.0),
        (Machine::Summit, 3_072, 12_580_000, 375.0),
        (Machine::Leonardo, 1_024, 8_390_000, 243.0),
    ] {
        let spec = MachineSpec::of(m);
        let r = simulate_cholesky(&spec, &SimConfig::new(n, nodes, Variant::DpHp));
        println!(
            "  {:<9} {:>5} nodes {:>7.2}M: {:>7.1} PF (paper {target})",
            spec.name,
            nodes,
            n as f64 / 1e6,
            r.pflops
        );
    }
    // Fig 7 strong scaling at 4x.
    println!("--- Fig 7 strong scaling eff @4x (paper DP 55, DP/SP 72, DP/SP/HP 60, DP/HP 56) ---");
    for v in Variant::all() {
        let pts = strong_scaling(&summit, v, &[3072, 6144, 12288], 12_580_000);
        println!(
            "  {:<9} {:.0}% -> {:.0}%",
            v.label(),
            pts[1].efficiency_pct,
            pts[2].efficiency_pct
        );
    }
    // Fig 5: new vs old at 128 nodes.
    println!(
        "--- Fig 5 new/old speedup @128 Summit nodes (paper DP 1.15, DP/SP 1.06, DP/HP 1.53) ---"
    );
    for v in [Variant::Dp, Variant::DpSp, Variant::DpHp] {
        let mut sp = 0.0;
        for n in [660_000usize, 860_000, 1_060_000, 1_270_000] {
            let new = simulate_cholesky(&summit, &SimConfig::new(n, 128, v));
            let old = simulate_cholesky(&summit, &SimConfig::legacy(n, 128, v));
            sp = new.pflops / old.pflops;
        }
        println!("  {:<9} {:.2}", v.label(), sp);
    }
}
