//! Energy ablation (paper ref. \[35\]: automated precision conversion reduces
//! data motion *and* energy): joules and GFlops/W for the four precision
//! variants of the 2,048-node Summit run of Figure 6.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin energy
//! ```

use exaclim_cluster::energy::{simulate_energy, EnergyModel};
use exaclim_cluster::machines::{Machine, MachineSpec};
use exaclim_cluster::sim::{SimConfig, Variant};

fn main() {
    let spec = MachineSpec::of(Machine::Summit);
    let model = EnergyModel::default();
    let n = 8_390_000;
    let nodes = 2_048;
    println!(
        "== Energy of the Figure 6 runs (Summit {nodes} nodes, {:.2}M) ==",
        n as f64 / 1e6
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "variant", "seconds", "compute MJ", "wire MJ", "idle MJ", "avg MW", "GFlops/W"
    );
    let mut dp_joules = 0.0;
    let mut hp_joules = 0.0;
    for v in Variant::all() {
        let cfg = SimConfig::new(n, nodes, v);
        let (r, e) = simulate_energy(&model, &spec, &cfg);
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>12.1}",
            v.label(),
            r.seconds,
            e.compute_joules / 1e6,
            e.wire_joules / 1e6,
            e.idle_joules / 1e6,
            e.average_megawatts,
            e.gflops_per_watt
        );
        match v {
            Variant::Dp => dp_joules = e.total_joules(),
            Variant::DpHp => hp_joules = e.total_joules(),
            _ => {}
        }
    }
    println!();
    println!(
        "DP/HP uses {:.1}× less energy than DP for the same factorization —\n\
         the sustainability argument of §I (\"a more sustainable swim lane to\n\
         climate modeling\") quantified.",
        dp_joules / hp_joules
    );
    assert!(dp_joules / hp_joules > 2.0);
}
