//! Figure 1: emulator-design cost vs spatial resolution for the two model
//! classes, the literature emulators, and this work's configurations.
//!
//! ```text
//! cargo run --release -p exaclim-bench --bin fig1
//! ```

use exaclim_cluster::costmodel::{
    headline_resolution_factor, literature_catalog, this_work_bandlimits, CostModel, EmulatorClass,
};

fn main() {
    println!("== Figure 1: design cost vs resolution ==");
    println!(
        "{:<10} {:>12} {:>10} {:>16} {:>16}",
        "L", "res (km)", "res (deg)", "axisym flops", "aniso flops"
    );
    // Cost curves over the resolution axis (hourly temporal scale, T for 35 years).
    let t_hourly = 306_600.0;
    for &l in &[64usize, 128, 256, 512, 720, 1440, 2880, 5219] {
        let lf = l as f64;
        println!(
            "{:<10} {:>12.1} {:>10.3} {:>16.3e} {:>16.3e}",
            l,
            CostModel::resolution_km(lf),
            CostModel::resolution_degrees(lf),
            CostModel::design_flops(EmulatorClass::AxiallySymmetric, lf, t_hourly),
            CostModel::design_flops(EmulatorClass::Anisotropic, lf, t_hourly),
        );
    }
    println!();
    println!("== Literature emulators (review points of Figure 1) ==");
    println!(
        "{:<36} {:>14} {:>10} {:>10} {:>14}",
        "reference", "class", "res (km)", "T/year", "design flops"
    );
    for e in literature_catalog() {
        let l = CostModel::bandlimit_for_km(e.resolution_km);
        let t = e.temporal_per_year * 30.0; // ~30-year training records
        let label = match e.class {
            EmulatorClass::AxiallySymmetric => "axisymmetric",
            EmulatorClass::Anisotropic => "anisotropic",
        };
        println!(
            "{:<36} {:>14} {:>10.0} {:>10.0} {:>14.3e}",
            e.reference,
            label,
            e.resolution_km,
            e.temporal_per_year,
            CostModel::design_flops(e.class, l, t),
        );
    }
    println!();
    println!("== This work (green stars) ==");
    for &l in &this_work_bandlimits() {
        let lf = l as f64;
        println!(
            "L = {:>5}: {:>6.1} km, hourly, anisotropic, {:.3e} flops",
            l,
            CostModel::resolution_km(lf),
            CostModel::design_flops(EmulatorClass::Anisotropic, lf, t_hourly),
        );
    }
    let (s, t, total) = headline_resolution_factor();
    println!();
    println!("resolution advance over prior emulators: {s}× spatial × {t}× temporal = {total}×");
    assert_eq!(total, 245_280.0, "the paper's headline factor");
}
