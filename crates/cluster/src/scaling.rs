//! Weak- and strong-scaling drivers (Figure 7).

use crate::machines::MachineSpec;
use crate::sim::{simulate_cholesky, SimConfig, Variant};
use serde::{Deserialize, Serialize};

/// One scaling data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// GPUs used.
    pub gpus: usize,
    /// Matrix dimension simulated.
    pub n: usize,
    /// Achieved TFlop/s per GPU.
    pub tflops_per_gpu: f64,
    /// Efficiency relative to the baseline point (percent).
    pub efficiency_pct: f64,
}

/// Weak scaling: constant data per GPU (`n ∝ √GPUs`), per-GPU rate should
/// stay flat. `n_base` is the matrix size at `gpu_counts[0]`.
pub fn weak_scaling(
    spec: &MachineSpec,
    variant: Variant,
    gpu_counts: &[usize],
    n_base: usize,
) -> Vec<ScalingPoint> {
    assert!(!gpu_counts.is_empty());
    let g0 = gpu_counts[0] as f64;
    let mut out = Vec::with_capacity(gpu_counts.len());
    let mut base_rate = 0.0;
    for &g in gpu_counts {
        let n = (n_base as f64 * (g as f64 / g0).sqrt()) as usize;
        let nodes = g.div_ceil(spec.gpus_per_node);
        let cfg = SimConfig::new(n.max(SimConfig::new(1, 1, variant).tile), nodes, variant);
        let r = simulate_cholesky(spec, &cfg);
        let per_gpu = r.pflops * 1e3 / g as f64;
        if base_rate == 0.0 {
            base_rate = per_gpu;
        }
        out.push(ScalingPoint {
            gpus: g,
            n,
            tflops_per_gpu: per_gpu,
            efficiency_pct: 100.0 * per_gpu / base_rate,
        });
    }
    out
}

/// Strong scaling: fixed matrix (the largest fitting the smallest GPU
/// count), efficiency = per-GPU rate relative to the baseline count.
pub fn strong_scaling(
    spec: &MachineSpec,
    variant: Variant,
    gpu_counts: &[usize],
    n: usize,
) -> Vec<ScalingPoint> {
    assert!(!gpu_counts.is_empty());
    let mut out = Vec::with_capacity(gpu_counts.len());
    let mut base_rate = 0.0;
    for &g in gpu_counts {
        let nodes = g.div_ceil(spec.gpus_per_node);
        let cfg = SimConfig::new(n, nodes, variant);
        let r = simulate_cholesky(spec, &cfg);
        let per_gpu = r.pflops * 1e3 / g as f64;
        if base_rate == 0.0 {
            base_rate = per_gpu;
        }
        out.push(ScalingPoint {
            gpus: g,
            n,
            tflops_per_gpu: per_gpu,
            efficiency_pct: 100.0 * per_gpu / base_rate,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{Machine, MachineSpec};

    const SUMMIT_WEAK_GPUS: [usize; 5] = [384, 1536, 3072, 6144, 12288];
    const SUMMIT_STRONG_GPUS: [usize; 3] = [3072, 6144, 12288];

    #[test]
    fn weak_scaling_stays_near_flat() {
        // Figure 7 (left): 92–111% efficiency from 384 to 12,288 GPUs.
        let spec = MachineSpec::of(Machine::Summit);
        for v in Variant::all() {
            let pts = weak_scaling(&spec, v, &SUMMIT_WEAK_GPUS, 1_500_000);
            for p in &pts {
                assert!(
                    p.efficiency_pct > 80.0 && p.efficiency_pct < 125.0,
                    "{} @{} GPUs: {:.0}%",
                    v.label(),
                    p.gpus,
                    p.efficiency_pct
                );
            }
        }
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        // Figure 7 (right): efficiency at 4× the GPUs drops to 55–72%.
        let spec = MachineSpec::of(Machine::Summit);
        for v in Variant::all() {
            let pts = strong_scaling(&spec, v, &SUMMIT_STRONG_GPUS, 12_580_000);
            assert!((pts[0].efficiency_pct - 100.0).abs() < 1e-9);
            assert!(
                pts[1].efficiency_pct < 100.0 && pts[1].efficiency_pct > 55.0,
                "{} @2x: {:.0}%",
                v.label(),
                pts[1].efficiency_pct
            );
            assert!(
                pts[2].efficiency_pct < pts[1].efficiency_pct,
                "{}: monotone decay",
                v.label()
            );
            assert!(
                pts[2].efficiency_pct > 35.0 && pts[2].efficiency_pct < 90.0,
                "{} @4x: {:.0}% (paper band 55–72%)",
                v.label(),
                pts[2].efficiency_pct
            );
        }
    }

    #[test]
    fn strong_scaling_dp_sp_beats_dp() {
        // Paper: DP/SP holds 72% at 4× vs DP's 55% — mixed precision
        // mitigates the strong-scaling rolloff.
        let spec = MachineSpec::of(Machine::Summit);
        let dp = strong_scaling(&spec, Variant::Dp, &SUMMIT_STRONG_GPUS, 12_580_000);
        let dpsp = strong_scaling(&spec, Variant::DpSp, &SUMMIT_STRONG_GPUS, 12_580_000);
        // Note: in the paper DP/SP retains the most efficiency; DP/HP loses
        // it because too little work remains per node. Require DP/SP ≥ DP.
        assert!(
            dpsp[2].efficiency_pct >= dp[2].efficiency_pct - 5.0,
            "DP/SP {:.0}% vs DP {:.0}%",
            dpsp[2].efficiency_pct,
            dp[2].efficiency_pct
        );
    }

    #[test]
    fn weak_scaling_uses_growing_matrices() {
        let spec = MachineSpec::of(Machine::Summit);
        let pts = weak_scaling(&spec, Variant::DpHp, &SUMMIT_WEAK_GPUS, 1_500_000);
        for w in pts.windows(2) {
            assert!(w[1].n > w[0].n, "n must grow with GPUs");
        }
        // 32× GPUs → √32 ≈ 5.7× matrix size.
        let ratio = pts.last().unwrap().n as f64 / pts[0].n as f64;
        assert!((ratio - 32f64.sqrt()).abs() < 0.1, "ratio {ratio}");
    }
}
