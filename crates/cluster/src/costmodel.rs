//! The emulator-design cost model of Figure 1.
//!
//! Figure 1 plots the computational cost of fitting an emulator against its
//! spatial resolution, for two model classes: axially symmetric
//! (`O(L³T + L⁴)`) and longitudinally anisotropic (`O(L⁴T + L⁶)`), and
//! places existing emulators and this work on it. This module provides the
//! cost functions, the resolution↔band-limit mapping, the catalog of
//! literature emulators shown in the figure, and the headline resolution
//! factor (245,280×).

use serde::{Deserialize, Serialize};

/// Mean Earth radius, km.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Emulator model class, by spatial-covariance assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulatorClass {
    /// Stationary in longitude (diagonal/sparse covariance).
    AxiallySymmetric,
    /// Longitude-dependent covariance — this paper's class.
    Anisotropic,
}

/// The Figure 1 cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel;

impl CostModel {
    /// Design (training) cost in flops for band-limit `l` and `t` temporal
    /// points.
    pub fn design_flops(class: EmulatorClass, l: f64, t: f64) -> f64 {
        match class {
            EmulatorClass::AxiallySymmetric => l.powi(3) * t + l.powi(4),
            EmulatorClass::Anisotropic => l.powi(4) * t + l.powi(6),
        }
    }

    /// Equatorial grid spacing (km) of band-limit `l`: half-wavelength of
    /// the highest resolved degree, `π R / L`.
    pub fn resolution_km(l: f64) -> f64 {
        std::f64::consts::PI * EARTH_RADIUS_KM / l
    }

    /// Band-limit resolving a given equatorial grid spacing.
    pub fn bandlimit_for_km(km: f64) -> f64 {
        std::f64::consts::PI * EARTH_RADIUS_KM / km
    }

    /// Grid spacing in degrees at the equator for band-limit `l`.
    pub fn resolution_degrees(l: f64) -> f64 {
        180.0 / l
    }
}

/// One emulator from the literature review of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiteratureEmulator {
    /// Citation tag.
    pub reference: &'static str,
    /// Model class.
    pub class: EmulatorClass,
    /// Spatial resolution, km.
    pub resolution_km: f64,
    /// Temporal points per year of training data.
    pub temporal_per_year: f64,
}

/// The emulators reviewed in Figure 1 (resolution/temporal scales from the
/// paper's §II.A narrative: axially symmetric designs reached 100 km daily;
/// anisotropic designs stayed at ~100–500 km annual).
pub fn literature_catalog() -> Vec<LiteratureEmulator> {
    vec![
        LiteratureEmulator {
            reference: "Castruccio & Stein 2013 [16]",
            class: EmulatorClass::AxiallySymmetric,
            resolution_km: 250.0,
            temporal_per_year: 1.0,
        },
        LiteratureEmulator {
            reference: "Castruccio et al. 2014 [17]",
            class: EmulatorClass::Anisotropic,
            resolution_km: 500.0,
            temporal_per_year: 1.0,
        },
        LiteratureEmulator {
            reference: "Holden et al. 2015 [18]",
            class: EmulatorClass::Anisotropic,
            resolution_km: 500.0,
            temporal_per_year: 1.0,
        },
        LiteratureEmulator {
            reference: "Link et al. 2019 [19]",
            class: EmulatorClass::Anisotropic,
            resolution_km: 250.0,
            temporal_per_year: 1.0,
        },
        LiteratureEmulator {
            reference: "Jeong et al. 2019 [21]",
            class: EmulatorClass::AxiallySymmetric,
            resolution_km: 200.0,
            temporal_per_year: 12.0,
        },
        LiteratureEmulator {
            reference: "Huang et al. 2023 [22]",
            class: EmulatorClass::AxiallySymmetric,
            resolution_km: 100.0,
            temporal_per_year: 365.0,
        },
        LiteratureEmulator {
            reference: "Song et al. 2024 [23]",
            class: EmulatorClass::AxiallySymmetric,
            resolution_km: 100.0,
            temporal_per_year: 365.0,
        },
    ]
}

/// This work's configurations (green stars in Figure 1): the ERA5 native
/// band-limit and the three up-sampled ones, hourly.
pub fn this_work_bandlimits() -> [usize; 4] {
    [720, 1440, 2880, 5219]
}

/// The headline spatio-temporal resolution factor over prior emulators:
/// 28× spatial and 8,760× temporal = 245,280×.
pub fn headline_resolution_factor() -> (f64, f64, f64) {
    // Best prior: 100 km annual (anisotropic class); this work: 3.5 km
    // hourly. Spatial 100/3.5 ≈ 28.6 → paper rounds to 28; temporal:
    // hourly vs annual = 8,760.
    let spatial = 28.0;
    let temporal = 8760.0;
    (spatial, temporal, spatial * temporal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_mapping_matches_quarter_degree() {
        // L = 720 ↔ 0.25° ↔ ~27.8 km at the equator.
        assert!((CostModel::resolution_degrees(720.0) - 0.25).abs() < 1e-12);
        let km = CostModel::resolution_km(720.0);
        assert!((km - 27.8).abs() < 0.3, "{km}");
        // L = 5219 ↔ ~0.0345° ↔ ~3.8 km (paper: 0.034°, ~3.5 km).
        let deg = CostModel::resolution_degrees(5219.0);
        assert!((deg - 0.0345).abs() < 0.001, "{deg}");
        assert!(CostModel::resolution_km(5219.0) < 4.0);
        // Round trip.
        let l = CostModel::bandlimit_for_km(CostModel::resolution_km(1440.0));
        assert!((l - 1440.0).abs() < 1e-9);
    }

    #[test]
    fn anisotropic_costs_dominate() {
        for &(l, t) in &[(100.0, 365.0), (720.0, 8760.0), (5219.0, 306600.0)] {
            let ax = CostModel::design_flops(EmulatorClass::AxiallySymmetric, l, t);
            let an = CostModel::design_flops(EmulatorClass::Anisotropic, l, t);
            assert!(an > ax * 10.0, "L={l} T={t}: {an:.2e} vs {ax:.2e}");
        }
    }

    #[test]
    fn this_work_cost_is_exascale() {
        // At L = 5219 the dominant L⁶ term alone is ~2×10²² flops —
        // minutes at EFlop/s rates, unreachable for desktop emulators.
        let fl = CostModel::design_flops(EmulatorClass::Anisotropic, 5219.0, 306_600.0);
        assert!(fl > 1e22, "{fl:.3e}");
        let seconds_at_exaflop = fl / 1e18;
        assert!(
            seconds_at_exaflop < 86_400.0,
            "feasible within a day at EF/s"
        );
    }

    #[test]
    fn headline_factor_is_245280() {
        let (s, t, total) = headline_resolution_factor();
        assert_eq!(total, 245_280.0);
        assert_eq!(s, 28.0);
        assert_eq!(t, 8760.0);
    }

    #[test]
    fn catalog_respects_figure_1_frontiers() {
        for e in literature_catalog() {
            match e.class {
                EmulatorClass::AxiallySymmetric => {
                    assert!(e.resolution_km >= 100.0, "{}", e.reference);
                    assert!(e.temporal_per_year <= 365.0, "{}", e.reference);
                }
                EmulatorClass::Anisotropic => {
                    assert!(e.resolution_km >= 100.0, "{}", e.reference);
                    assert!(
                        e.temporal_per_year <= 1.0,
                        "{}: anisotropic stayed annual",
                        e.reference
                    );
                }
            }
        }
        // This work beats every catalog entry in both dimensions.
        let ours_km = CostModel::resolution_km(5219.0);
        assert!(literature_catalog()
            .iter()
            .all(|e| e.resolution_km > ours_km));
    }
}
