//! Panel-level timing model of the distributed mixed-precision Cholesky.
//!
//! For each panel `k` of the `nt × nt` tile matrix the model accounts:
//!
//! * POTRF on the diagonal tile (always DP),
//! * the panel TRSMs, parallel over the `√G` process-grid rows only,
//! * the trailing SYRK/GEMM update, parallel over all `G` GPUs, with flops
//!   split by precision from the band policy (closed-form per-distance tile
//!   counts, so a 27M-size matrix simulates in microseconds),
//! * broadcast traffic: every panel tile travels to `~(pg + qg)` nodes;
//!   wire precision follows the conversion placement — the legacy runtime
//!   moved tiles at canonical DP and reshaped at the receiver, the new one
//!   converts at the sender to the tile's storage precision (§V.A),
//! * collective ordering: latency-first keeps per-broadcast latency low;
//!   bandwidth-first overlaps many broadcasts at the price of longer
//!   individual latency, which starves strong-scaled runs (§III.C).
//!
//! Update compute and broadcast bandwidth overlap (task runtime); a
//! configurable residual fraction of the loser leaks into the makespan,
//! modelling imperfect overlap.

use crate::machines::MachineSpec;
use serde::{Deserialize, Serialize};

/// The paper's four precision variants (§IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Full double precision.
    Dp,
    /// DP diagonal band, SP elsewhere.
    DpSp,
    /// DP band, ~5% SP, rest HP.
    DpSpHp,
    /// DP band, HP elsewhere.
    DpHp,
}

impl Variant {
    /// Legend label as in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Dp => "DP",
            Variant::DpSp => "DP/SP",
            Variant::DpSpHp => "DP/SP/HP",
            Variant::DpHp => "DP/HP",
        }
    }

    /// Precision bucket (0 = HP, 1 = SP, 2 = DP) of a tile at band distance
    /// `d` (in tiles) for a matrix with `nt` tiles per side.
    pub fn bucket(self, d: usize, nt: usize) -> usize {
        match self {
            Variant::Dp => 2,
            Variant::DpSp => {
                if d < 1 {
                    2
                } else {
                    1
                }
            }
            Variant::DpSpHp => {
                let sp_band = (nt / 20).max(1);
                if d < 1 {
                    2
                } else if d < 1 + sp_band {
                    1
                } else {
                    0
                }
            }
            Variant::DpHp => {
                if d < 1 {
                    2
                } else {
                    0
                }
            }
        }
    }

    /// All four variants, figure order.
    pub fn all() -> [Variant; 4] {
        [Variant::Dp, Variant::DpSp, Variant::DpSpHp, Variant::DpHp]
    }
}

/// Conversion placement on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireConversion {
    /// New runtime: convert at the sender, transmit at tile precision.
    Sender,
    /// Legacy runtime: transmit at canonical DP, reshape at the receiver.
    Receiver,
}

/// Collective-communication ordering (§III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveOrder {
    /// Prioritize individual broadcast latency (the realigned strategy).
    LatencyFirst,
    /// Maximize aggregate bandwidth; individual collectives wait longer.
    BandwidthFirst,
}

/// Simulation input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Tile side.
    pub tile: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Precision variant.
    pub variant: Variant,
    /// Conversion placement.
    pub conversion: WireConversion,
    /// Collective ordering.
    pub collectives: CollectiveOrder,
}

impl SimConfig {
    /// Paper-default configuration: 2,048-tile panels, new runtime.
    pub fn new(n: usize, nodes: usize, variant: Variant) -> Self {
        Self {
            n,
            tile: 2048,
            nodes,
            variant,
            conversion: WireConversion::Sender,
            collectives: CollectiveOrder::LatencyFirst,
        }
    }

    /// Legacy-runtime configuration (Figure 5's "Old").
    pub fn legacy(n: usize, nodes: usize, variant: Variant) -> Self {
        Self {
            conversion: WireConversion::Receiver,
            collectives: CollectiveOrder::BandwidthFirst,
            ..Self::new(n, nodes, variant)
        }
    }
}

/// Simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Makespan, seconds.
    pub seconds: f64,
    /// Achieved rate, PFlop/s (n³/3 over makespan).
    pub pflops: f64,
    /// Total flops by precision bucket `[hp, sp, dp]`.
    pub flops_by_bucket: [f64; 3],
    /// Aggregate update-compute seconds (critical-path share).
    pub comp_seconds: f64,
    /// Aggregate broadcast-bandwidth seconds.
    pub comm_seconds: f64,
    /// Aggregate panel (POTRF + TRSM) seconds.
    pub panel_seconds: f64,
    /// Aggregate collective-latency seconds.
    pub latency_seconds: f64,
    /// Bytes moved on the wire.
    pub wire_bytes: f64,
    /// Whether the matrix fits device memory at this node count.
    pub fits_memory: bool,
}

/// Fraction of the overlapped loser (compute vs comm) that still leaks into
/// the makespan under latency-first collectives — imperfect overlap.
const OVERLAP_RESIDUAL_LATENCY_FIRST: f64 = 0.38;
/// Under bandwidth-first collectives the starvation points (§III.C) leave a
/// much larger un-overlapped residual.
const OVERLAP_RESIDUAL_BW_FIRST: f64 = 0.85;
/// Bandwidth-first collectives: multiplier on per-broadcast latency.
const BW_FIRST_LATENCY_PENALTY: f64 = 8.0;
/// Bandwidth-first collectives: aggregate-bandwidth utilization bonus.
const BW_FIRST_BANDWIDTH_BONUS: f64 = 0.88;
/// Protocol/metadata overhead multiplier on payload bytes.
const WIRE_OVERHEAD: f64 = 1.25;
/// Global network contention: beyond CONTENTION_THRESHOLD nodes the
/// effective per-node bandwidth degrades as the job spans more of the
/// fabric (adaptive-routing conflicts, switch oversubscription):
/// divisor = max(1, (nodes/threshold)^exponent). Calibrated so Frontier's
/// per-GPU rate halves from 1,024 to 9,025 nodes (Table I vs Figure 8).
const CONTENTION_THRESHOLD: f64 = 2048.0;
/// Contention growth exponent.
const CONTENTION_EXPONENT: f64 = 1.5;

/// Σ_{d=lo..hi} (m − d), clamped to `1 ≤ d ≤ m − 1`; the number of trailing
/// tiles at band distances in `[lo, hi]` for trailing size `m`.
fn tiles_at_distances(m: usize, lo: usize, hi: usize) -> f64 {
    if m < 2 {
        return 0.0;
    }
    let lo = lo.max(1);
    let hi = hi.min(m - 1);
    if lo > hi {
        return 0.0;
    }
    let (mf, lof, hif) = (m as f64, lo as f64, hi as f64);
    let count = hif - lof + 1.0;
    count * mf - (lof + hif) * count / 2.0
}

/// Average storage bytes per matrix element under a variant's band policy
/// for an `nt × nt` tile matrix (lower triangle).
pub fn avg_bytes_per_element(variant: Variant, nt: usize) -> f64 {
    let total = (nt * (nt + 1) / 2) as f64;
    let mut weighted = 0.0f64;
    // Diagonal (distance 0) plus distances 1..nt-1 with count nt - d.
    weighted += nt as f64 * 8.0;
    for d in 1..nt {
        let bytes = match variant.bucket(d, nt) {
            0 => 2.0,
            1 => 4.0,
            _ => 8.0,
        };
        weighted += (nt - d) as f64 * bytes;
    }
    weighted / total
}

/// Run the model.
pub fn simulate_cholesky(spec: &MachineSpec, cfg: &SimConfig) -> SimResult {
    assert!(cfg.n >= cfg.tile, "matrix smaller than one tile");
    assert!(cfg.nodes >= 1);
    let b = cfg.tile as f64;
    let nt = cfg.n / cfg.tile;
    let g = (cfg.nodes * spec.gpus_per_node) as f64;
    let pg = g.sqrt();
    let qg = g.sqrt();
    let depth = (g.log2() / 2.0).max(1.0); // broadcast tree depth per dim
    let lat = spec.latency_us
        * 1e-6
        * match cfg.collectives {
            CollectiveOrder::LatencyFirst => 1.0,
            CollectiveOrder::BandwidthFirst => BW_FIRST_LATENCY_PENALTY,
        };
    let contention = (cfg.nodes as f64 / CONTENTION_THRESHOLD)
        .powf(CONTENTION_EXPONENT)
        .max(1.0);
    let bw = spec.node_bw_gbs
        * 1e9
        * match cfg.collectives {
            CollectiveOrder::LatencyFirst => 0.80,
            CollectiveOrder::BandwidthFirst => BW_FIRST_BANDWIDTH_BONUS,
        }
        / contention;
    let rate = |bucket: usize| spec.rate_tf(bucket) * 1e12;
    let dp_rate = rate(2);
    let bucket_bytes = [2.0f64, 4.0, 8.0];

    // Band-policy bucket boundaries as distance intervals [lo, hi].
    let intervals: Vec<(usize, usize, usize)> = match cfg.variant {
        Variant::Dp => vec![(2, 1, nt)],
        Variant::DpSp => vec![(1, 1, nt)],
        Variant::DpSpHp => {
            let sp = (nt / 20).max(1);
            vec![(1, 1, sp), (0, sp + 1, nt)]
        }
        Variant::DpHp => vec![(0, 1, nt)],
    };

    let mut flops_by_bucket = [0.0f64; 3];
    let mut comp = 0.0f64;
    let mut comm = 0.0f64;
    let mut panel = 0.0f64;
    let mut latency = 0.0f64;
    let mut wire_bytes_total = 0.0f64;
    let mut makespan = 0.0f64;

    for k in 0..nt {
        let m = nt - 1 - k; // trailing tiles per dimension
                            // POTRF (DP always).
        let t_potrf = (b * b * b / 3.0) / dp_rate;
        flops_by_bucket[2] += b * b * b / 3.0;
        // Panel TRSMs: m tiles spread over pg grid rows.
        let mut t_trsm = 0.0;
        for &(bkt, lo, hi) in &intervals {
            let tiles = (hi.min(m)).saturating_sub(lo.saturating_sub(1)) as f64;
            if tiles <= 0.0 || lo > m {
                continue;
            }
            let fl = tiles * b * b * b;
            flops_by_bucket[bkt] += fl;
            t_trsm += fl / pg / rate(bkt);
        }
        // Trailing update: SYRK on the m diagonal tiles (DP band) + GEMMs.
        let syrk_fl = m as f64 * b * b * b;
        flops_by_bucket[2] += syrk_fl;
        let mut t_update = syrk_fl / g / dp_rate;
        for &(bkt, lo, hi) in &intervals {
            let tiles = tiles_at_distances(m, lo, hi);
            let fl = tiles * 2.0 * b * b * b;
            flops_by_bucket[bkt] += fl;
            t_update += fl / g / rate(bkt);
        }
        // Broadcast traffic: every panel tile reaches ~(pg + qg) nodes.
        let mut panel_bytes = 0.0;
        for &(bkt, lo, hi) in &intervals {
            let tiles = (hi.min(m)).saturating_sub(lo.saturating_sub(1)) as f64;
            if tiles <= 0.0 || lo > m {
                continue;
            }
            let wire = match cfg.conversion {
                WireConversion::Sender => bucket_bytes[bkt],
                // Legacy runtime: no half-precision wire datatype — HP
                // tiles travel widened to SP; conversion happens at each
                // receiver.
                WireConversion::Receiver => bucket_bytes[bkt].max(4.0),
            };
            panel_bytes += tiles * b * b * wire;
        }
        // POTRF tile down the panel (DP wire unless all consumers narrower).
        panel_bytes += b * b * 8.0;
        let per_node_bytes = panel_bytes * (pg + qg) / cfg.nodes as f64 * WIRE_OVERHEAD;
        let t_comm = per_node_bytes / bw;
        let t_lat = 2.0 * depth * lat;
        wire_bytes_total += panel_bytes * (pg + qg);

        comp += t_update;
        comm += t_comm;
        panel += t_potrf + t_trsm;
        latency += t_lat;
        let residual = match cfg.collectives {
            CollectiveOrder::LatencyFirst => OVERLAP_RESIDUAL_LATENCY_FIRST,
            CollectiveOrder::BandwidthFirst => OVERLAP_RESIDUAL_BW_FIRST,
        };
        let overlapped = t_update.max(t_comm) + residual * t_update.min(t_comm);
        makespan += t_potrf + t_trsm + t_lat + overlapped;
    }

    let total_flops = (cfg.n as f64).powi(3) / 3.0;
    SimResult {
        seconds: makespan,
        pflops: total_flops / makespan / 1e15,
        flops_by_bucket,
        comp_seconds: comp,
        comm_seconds: comm,
        panel_seconds: panel,
        latency_seconds: latency,
        wire_bytes: wire_bytes_total,
        fits_memory: cfg.n <= spec.max_matrix_n(cfg.nodes, avg_bytes_per_element(cfg.variant, nt)),
    }
}

/// Shard-placement validation input (see [`simulate_placement`]): the
/// serving layer's proposed key→shard assignment, reduced to what the
/// timing model needs — per-shard demand, replication factor, and the
/// shape of a typical scatter-gathered batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Relative demand routed to each shard (weighted key load; any
    /// positive scale). One entry per shard.
    pub shard_loads: Vec<f64>,
    /// Replicas per key (1 = no redundancy).
    pub replication: usize,
    /// Payload bytes of a typical response.
    pub avg_request_bytes: f64,
    /// Requests per incoming batch (scatter-gather width driver).
    pub requests_per_batch: usize,
}

/// Verdict of [`simulate_placement`] on one candidate layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Shard count of the evaluated layout.
    pub shards: usize,
    /// Load skew: max shard demand over mean shard demand (1.0 = flat).
    pub skew: f64,
    /// Expected distinct shards touched per batch
    /// (`S · (1 − (1 − 1/S)^B)` for B uniform requests over S shards).
    pub fanout: f64,
    /// Effective serve bandwidth of one shard, GB/s (NIC-bound, after
    /// protocol overhead and replication's cache-duplication tax).
    pub per_shard_gbs: f64,
    /// Predicted aggregate cluster bandwidth, GB/s: the bottleneck
    /// (most-loaded) shard saturates first, and every batch pays a
    /// scatter-gather tail for each extra shard it waits on.
    pub cluster_gbs: f64,
    /// `cluster_gbs` over a single shard's un-replicated bandwidth —
    /// the near-linear-scaling figure CI tracks.
    pub speedup_vs_single: f64,
    /// `speedup_vs_single / shards` (1.0 = perfectly linear).
    pub efficiency: f64,
    /// Whether the layout is acceptable: skew within
    /// [`MAX_ACCEPTABLE_SKEW`] and every shard carries some load.
    pub balanced: bool,
}

/// A layout whose hottest shard carries more than this multiple of the
/// mean load is rejected — consistent hashing with enough virtual nodes
/// stays well under it.
pub const MAX_ACCEPTABLE_SKEW: f64 = 2.0;
/// Fraction of raw NIC bandwidth a shard sustains as framed ECN1
/// payload (protocol overhead is `WIRE_OVERHEAD`).
const SERVE_NIC_EFFICIENCY: f64 = 0.80;
/// Cache-duplication tax per extra replica: hot keys decoded on `r`
/// shards dilute each shard's chunk cache.
const REPLICA_CACHE_TAX: f64 = 0.05;
/// Throughput tax per extra shard a batch scatter-gathers over: the
/// batch completes when its slowest sub-batch does.
const FANOUT_TAIL_TAX: f64 = 0.03;

/// Validate a proposed key→shard placement before live traffic routes
/// through it — the serving layer's router calls this (via its
/// `placement` module) the same way the Cholesky experiments consult
/// [`simulate_cholesky`] before committing node hours: score in the
/// model first, adopt only what the model accepts.
///
/// The model is deliberately bandwidth-first: climate-slice serving is
/// NIC-bound long before it is flop-bound, so a shard's capacity is its
/// node bandwidth derated by protocol overhead and by the cache
/// duplication replication causes; the cluster's aggregate is set by
/// the most-loaded shard (skew) and by the scatter-gather tail (every
/// batch waits for its slowest sub-batch).
pub fn simulate_placement(spec: &MachineSpec, cfg: &PlacementConfig) -> PlacementReport {
    let shards = cfg.shard_loads.len().max(1);
    let total: f64 = cfg.shard_loads.iter().sum();
    let mean = total / shards as f64;
    let max = cfg.shard_loads.iter().cloned().fold(0.0f64, f64::max);
    let skew = if mean > 0.0 {
        max / mean
    } else {
        f64::INFINITY
    };

    let s = shards as f64;
    let b = cfg.requests_per_batch.max(1) as f64;
    let fanout = s * (1.0 - (1.0 - 1.0 / s).powf(b));

    let replication = cfg.replication.clamp(1, shards);
    let single_gbs = spec.node_bw_gbs * SERVE_NIC_EFFICIENCY / WIRE_OVERHEAD;
    let per_shard_gbs = single_gbs / (1.0 + REPLICA_CACHE_TAX * (replication - 1) as f64);
    let tail = 1.0 / (1.0 + FANOUT_TAIL_TAX * (fanout - 1.0).max(0.0));
    let cluster_gbs = if skew.is_finite() {
        per_shard_gbs * s / skew * tail
    } else {
        0.0
    };
    let speedup_vs_single = cluster_gbs / single_gbs;

    PlacementReport {
        shards,
        skew,
        fanout,
        per_shard_gbs,
        cluster_gbs,
        speedup_vs_single,
        efficiency: speedup_vs_single / s,
        balanced: skew.is_finite()
            && skew <= MAX_ACCEPTABLE_SKEW
            && cfg.shard_loads.iter().all(|&l| l > 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{Machine, MachineSpec};

    fn summit() -> MachineSpec {
        MachineSpec::of(Machine::Summit)
    }

    #[test]
    fn tiles_at_distances_closed_form() {
        // m = 5: distances 1..4 with counts 4,3,2,1.
        assert_eq!(tiles_at_distances(5, 1, 4), 10.0);
        assert_eq!(tiles_at_distances(5, 1, 1), 4.0);
        assert_eq!(tiles_at_distances(5, 2, 3), 5.0);
        assert_eq!(tiles_at_distances(5, 4, 100), 1.0);
        assert_eq!(tiles_at_distances(1, 1, 4), 0.0);
    }

    #[test]
    fn dp_runs_at_plausible_fraction_of_peak() {
        // Paper §V.A: DP Cholesky reaches 61.7% of the 2,048-node Summit
        // peak at 8.39M. The model should land in a band around that.
        let spec = summit();
        let cfg = SimConfig::new(8_390_000, 2_048, Variant::Dp);
        let r = simulate_cholesky(&spec, &cfg);
        let frac = r.pflops / spec.dp_peak_pf(2_048);
        assert!(frac > 0.45 && frac < 0.75, "DP fraction of peak {frac}");
    }

    #[test]
    fn variant_speedups_are_ordered_like_figure_6() {
        let spec = summit();
        let base = simulate_cholesky(&spec, &SimConfig::new(8_390_000, 2_048, Variant::Dp));
        let sp = simulate_cholesky(&spec, &SimConfig::new(8_390_000, 2_048, Variant::DpSp));
        let sphp = simulate_cholesky(&spec, &SimConfig::new(8_390_000, 2_048, Variant::DpSpHp));
        let hp = simulate_cholesky(&spec, &SimConfig::new(8_390_000, 2_048, Variant::DpHp));
        let s_sp = sp.pflops / base.pflops;
        let s_sphp = sphp.pflops / base.pflops;
        let s_hp = hp.pflops / base.pflops;
        assert!(
            s_sp > 1.3 && s_sp < 3.0,
            "DP/SP speedup {s_sp} (paper: 2.0)"
        );
        assert!(
            s_sphp > s_sp,
            "DP/SP/HP ({s_sphp}) must beat DP/SP ({s_sp})"
        );
        assert!(
            s_hp > s_sphp,
            "DP/HP ({s_hp}) must beat DP/SP/HP ({s_sphp})"
        );
        assert!(
            s_hp > 3.5 && s_hp < 7.5,
            "DP/HP speedup {s_hp} (paper: 5.2)"
        );
    }

    #[test]
    fn sender_conversion_beats_receiver_most_for_dp_hp() {
        // Figure 5: new-vs-old speedup 1.53× for DP/HP, ~1.1× for DP.
        let spec = summit();
        let n = 1_060_000;
        let nodes = 128;
        let speedup = |v: Variant| {
            let new = simulate_cholesky(&spec, &SimConfig::new(n, nodes, v));
            let old = simulate_cholesky(&spec, &SimConfig::legacy(n, nodes, v));
            new.pflops / old.pflops
        };
        let s_dp = speedup(Variant::Dp);
        let s_dpsp = speedup(Variant::DpSp);
        let s_dphp = speedup(Variant::DpHp);
        assert!(s_dphp > s_dp, "DP/HP gains most: {s_dphp} vs {s_dp}");
        assert!(s_dphp > s_dpsp, "DP/HP gains more than DP/SP");
        assert!(
            s_dphp > 1.2 && s_dphp < 3.0,
            "DP/HP new/old {s_dphp} (paper: 1.53)"
        );
        assert!(
            (1.0..1.6).contains(&s_dp),
            "DP new/old {s_dp} (paper: 1.15)"
        );
    }

    #[test]
    fn performance_grows_with_matrix_size() {
        // Figure 6's rising curves: bigger matrices amortize communication.
        let spec = summit();
        let mut prev = 0.0;
        for &n in &[2_100_000usize, 4_190_000, 6_290_000, 8_390_000] {
            let r = simulate_cholesky(&spec, &SimConfig::new(n, 2_048, Variant::DpHp));
            assert!(r.pflops > prev, "n={n}: {} must rise", r.pflops);
            prev = r.pflops;
        }
    }

    #[test]
    fn memory_fit_flag() {
        // Paper Table I: 6.29M DP/HP maxes out 1,024 Summit nodes. The same
        // matrix in full DP must NOT fit (DP needs ~3.2× the bytes).
        let spec = summit();
        let hp = simulate_cholesky(&spec, &SimConfig::new(6_290_000, 1_024, Variant::DpHp));
        assert!(
            hp.fits_memory,
            "paper ran 6.29M DP/HP on 1,024 Summit nodes"
        );
        let dp = simulate_cholesky(&spec, &SimConfig::new(6_290_000, 1_024, Variant::Dp));
        assert!(
            !dp.fits_memory,
            "full DP at 6.29M exceeds 1,024-node memory"
        );
        let too_big = simulate_cholesky(&spec, &SimConfig::new(40_000_000, 64, Variant::DpHp));
        assert!(!too_big.fits_memory);
    }

    #[test]
    fn avg_bytes_tracks_variant() {
        let nt = 1000;
        let dp = avg_bytes_per_element(Variant::Dp, nt);
        let dpsp = avg_bytes_per_element(Variant::DpSp, nt);
        let dphp = avg_bytes_per_element(Variant::DpHp, nt);
        assert_eq!(dp, 8.0);
        assert!(dpsp > 4.0 && dpsp < 4.1, "{dpsp}");
        assert!(dphp > 2.0 && dphp < 2.1, "{dphp}");
    }

    #[test]
    fn flops_accounting_matches_n_cubed_over_three() {
        let spec = summit();
        let cfg = SimConfig::new(4_194_304, 512, Variant::DpSpHp);
        let r = simulate_cholesky(&spec, &cfg);
        let total: f64 = r.flops_by_bucket.iter().sum();
        let expect = (cfg.n as f64).powi(3) / 3.0;
        assert!(
            (total - expect).abs() / expect < 0.05,
            "{total:.3e} vs {expect:.3e}"
        );
        // Mixed variant uses all three precisions.
        assert!(r.flops_by_bucket.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn balanced_four_shard_placement_scales_near_linearly() {
        // The CI target: a flat 4-shard layout must predict ≥ 2.5× a
        // single shard (the v7 bench validator pins this).
        let spec = MachineSpec::of(Machine::Frontier);
        let cfg = PlacementConfig {
            shard_loads: vec![1.0, 1.05, 0.97, 1.02],
            replication: 2,
            avg_request_bytes: 64.0 * 1024.0,
            requests_per_batch: 32,
        };
        let r = simulate_placement(&spec, &cfg);
        assert!(r.balanced, "{r:?}");
        assert!(r.skew < 1.1, "{r:?}");
        assert!(r.speedup_vs_single >= 2.5, "{r:?}");
        assert!(r.efficiency <= 1.0, "{r:?}");
    }

    #[test]
    fn skewed_placement_is_rejected_and_scales_poorly() {
        let spec = MachineSpec::of(Machine::Frontier);
        let flat = PlacementConfig {
            shard_loads: vec![1.0; 4],
            replication: 1,
            avg_request_bytes: 64.0 * 1024.0,
            requests_per_batch: 32,
        };
        let hot = PlacementConfig {
            // One shard owns 10× the mean: the bottleneck shard caps
            // the whole cluster near single-shard throughput.
            shard_loads: vec![10.0, 0.4, 0.3, 0.3],
            ..flat.clone()
        };
        let a = simulate_placement(&spec, &flat);
        let b = simulate_placement(&spec, &hot);
        assert!(a.balanced && !b.balanced, "{a:?} vs {b:?}");
        assert!(b.speedup_vs_single < a.speedup_vs_single / 2.0);
        assert!(b.speedup_vs_single < 2.0, "{b:?}");
        // An idle shard is unacceptable even if skew happens to pass.
        let idle = PlacementConfig {
            shard_loads: vec![1.4, 1.3, 1.3, 0.0],
            ..flat
        };
        assert!(!simulate_placement(&spec, &idle).balanced);
    }

    #[test]
    fn replication_costs_capacity_but_batches_bound_fanout() {
        let spec = summit();
        let base = PlacementConfig {
            shard_loads: vec![1.0; 4],
            replication: 1,
            avg_request_bytes: 4096.0,
            requests_per_batch: 32,
        };
        let replicated = PlacementConfig {
            replication: 3,
            ..base.clone()
        };
        let a = simulate_placement(&spec, &base);
        let b = simulate_placement(&spec, &replicated);
        assert!(b.per_shard_gbs < a.per_shard_gbs, "{a:?} vs {b:?}");
        assert!(b.speedup_vs_single < a.speedup_vs_single);
        // A 32-request batch over 4 shards almost surely touches all 4;
        // a 1-request batch touches exactly 1.
        assert!(a.fanout > 3.9 && a.fanout <= 4.0, "{a:?}");
        let single = PlacementConfig {
            requests_per_batch: 1,
            ..base
        };
        let c = simulate_placement(&spec, &single);
        assert!((c.fanout - 1.0).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn latency_first_wins_at_strong_scale() {
        // §III.C: bandwidth-first starves strong-scaled runs.
        let spec = summit();
        let n = 2_100_000; // small matrix on many nodes → latency-bound
        let mut lat_first = SimConfig::new(n, 2_048, Variant::Dp);
        lat_first.collectives = CollectiveOrder::LatencyFirst;
        let mut bw_first = lat_first.clone();
        bw_first.collectives = CollectiveOrder::BandwidthFirst;
        let a = simulate_cholesky(&spec, &lat_first);
        let b = simulate_cholesky(&spec, &bw_first);
        assert!(a.pflops > b.pflops, "{} vs {}", a.pflops, b.pflops);
    }
}
