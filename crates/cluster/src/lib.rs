//! # exaclim-cluster
//!
//! A performance model of the paper's exascale experiments. The evaluation
//! hardware (Frontier, Alps, Leonardo, Summit — §IV.D) is not available to
//! this reproduction, so Figures 5–8 and Table I are regenerated from a
//! panel-level simulation of the distributed mixed-precision tile Cholesky:
//!
//! * [`machines`] — published per-GPU peaks, derated kernel efficiencies,
//!   node counts, and interconnect parameters of the four systems,
//! * [`sim`] — the panel-by-panel timing model: 2D block-cyclic tile
//!   distribution, per-precision GEMM rates, broadcast trees with
//!   latency-first vs bandwidth-first ordering (§III.C), and sender- vs
//!   receiver-side precision conversion on the wire (§V.A),
//! * [`scaling`] — weak- and strong-scaling drivers (Figure 7),
//! * [`sim::simulate_placement`] — shard-placement validation for the
//!   serving cluster: the router front end (`exaclim-serve`) scores a
//!   proposed key→shard layout (load skew, scatter-gather fan-out,
//!   predicted scaling) against a [`machines`] spec before adopting it,
//! * [`costmodel`] — the emulator-design cost model of Figure 1
//!   (`O(L³T + L⁴)` axisymmetric vs `O(L⁴T + L⁶)` anisotropic).
//!
//! Absolute numbers are calibrated to the published machine peaks; the
//! claims reproduced are the *relative* ones — variant speedups, scaling
//! efficiencies, who wins where (see EXPERIMENTS.md).

pub mod costmodel;
pub mod energy;
pub mod machines;
pub mod scaling;
pub mod sim;

pub use costmodel::{CostModel, EmulatorClass};
pub use energy::{simulate_energy, EnergyModel, EnergyReport};
pub use machines::{Machine, MachineSpec};
pub use sim::{
    simulate_cholesky, simulate_placement, CollectiveOrder, PlacementConfig, PlacementReport,
    SimConfig, SimResult, Variant, WireConversion,
};
