//! Energy model of the mixed-precision Cholesky.
//!
//! Reference \[35\] of the paper (Cao et al., CLUSTER 2023) reports that
//! automated precision conversion reduces both data motion *and energy*.
//! This module prices a simulated run: dynamic compute energy per flop and
//! per precision, data-motion energy per byte, plus idle/base power over
//! the makespan — enough to reproduce the "mixed precision saves energy"
//! ablation at the paper's scales.

use crate::machines::MachineSpec;
use crate::sim::{simulate_cholesky, SimConfig, SimResult};
use serde::{Deserialize, Serialize};

/// Energy price book (order-of-magnitude literature constants).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy per DP flop, picojoules (FMA + register traffic).
    pub pj_per_dp_flop: f64,
    /// SP flop energy, pJ.
    pub pj_per_sp_flop: f64,
    /// HP (tensor) flop energy, pJ.
    pub pj_per_hp_flop: f64,
    /// Network data-motion energy per byte, pJ.
    pub pj_per_wire_byte: f64,
    /// Idle/base power per GPU, watts (HBM refresh, clocks, host share).
    pub idle_watts_per_gpu: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            pj_per_dp_flop: 20.0,
            pj_per_sp_flop: 7.0,
            pj_per_hp_flop: 1.5,
            pj_per_wire_byte: 500.0,
            idle_watts_per_gpu: 100.0,
        }
    }
}

/// Energy report of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic compute energy, joules.
    pub compute_joules: f64,
    /// Data-motion energy, joules.
    pub wire_joules: f64,
    /// Idle/base energy over the makespan, joules.
    pub idle_joules: f64,
    /// Average power draw, megawatts.
    pub average_megawatts: f64,
    /// Energy efficiency, GFlops per watt.
    pub gflops_per_watt: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.wire_joules + self.idle_joules
    }
}

/// Price a simulated run.
pub fn energy_of_run(
    model: &EnergyModel,
    spec: &MachineSpec,
    cfg: &SimConfig,
    result: &SimResult,
) -> EnergyReport {
    let [hp, sp, dp] = result.flops_by_bucket;
    let compute =
        (hp * model.pj_per_hp_flop + sp * model.pj_per_sp_flop + dp * model.pj_per_dp_flop) * 1e-12;
    let wire = result.wire_bytes * model.pj_per_wire_byte * 1e-12;
    let gpus = (cfg.nodes * spec.gpus_per_node) as f64;
    let idle = model.idle_watts_per_gpu * gpus * result.seconds;
    let total = compute + wire + idle;
    let watts = total / result.seconds;
    let total_flops: f64 = result.flops_by_bucket.iter().sum();
    EnergyReport {
        compute_joules: compute,
        wire_joules: wire,
        idle_joules: idle,
        average_megawatts: watts / 1e6,
        gflops_per_watt: total_flops / result.seconds / watts / 1e9,
    }
}

/// Convenience: simulate and price in one call.
pub fn simulate_energy(
    model: &EnergyModel,
    spec: &MachineSpec,
    cfg: &SimConfig,
) -> (SimResult, EnergyReport) {
    let r = simulate_cholesky(spec, cfg);
    let e = energy_of_run(model, spec, cfg, &r);
    (r, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{Machine, MachineSpec};
    use crate::sim::Variant;

    fn summit_run(v: Variant) -> (SimResult, EnergyReport) {
        let spec = MachineSpec::of(Machine::Summit);
        let cfg = SimConfig::new(8_390_000, 2_048, v);
        simulate_energy(&EnergyModel::default(), &spec, &cfg)
    }

    #[test]
    fn mixed_precision_saves_energy() {
        let (_, dp) = summit_run(Variant::Dp);
        let (_, hp) = summit_run(Variant::DpHp);
        assert!(
            hp.total_joules() < 0.5 * dp.total_joules(),
            "DP/HP {:.2e} J vs DP {:.2e} J",
            hp.total_joules(),
            dp.total_joules()
        );
        assert!(hp.gflops_per_watt > 2.0 * dp.gflops_per_watt);
    }

    #[test]
    fn energy_ordering_follows_variants() {
        let js: Vec<f64> = Variant::all()
            .into_iter()
            .map(|v| summit_run(v).1.total_joules())
            .collect();
        // DP > DP/SP > DP/SP/HP > DP/HP.
        for w in js.windows(2) {
            assert!(w[0] > w[1], "{js:?}");
        }
    }

    #[test]
    fn power_draw_is_machine_plausible() {
        // Summit's measured full-system draw was ~10 MW; a 2,048-node run
        // (44% of the machine) should draw single-digit megawatts.
        let (_, dp) = summit_run(Variant::Dp);
        assert!(
            dp.average_megawatts > 0.5 && dp.average_megawatts < 15.0,
            "{} MW",
            dp.average_megawatts
        );
    }

    #[test]
    fn idle_energy_scales_with_makespan() {
        let spec = MachineSpec::of(Machine::Summit);
        let model = EnergyModel::default();
        let fast = SimConfig::new(8_390_000, 2_048, Variant::DpHp);
        let slow = SimConfig::new(8_390_000, 2_048, Variant::Dp);
        let (rf, ef) = simulate_energy(&model, &spec, &fast);
        let (rs, es) = simulate_energy(&model, &spec, &slow);
        assert!(rs.seconds > rf.seconds);
        assert!(
            (es.idle_joules / ef.idle_joules - rs.seconds / rf.seconds).abs() < 1e-9,
            "idle energy proportional to time"
        );
    }
}
