//! Machine catalog: the four systems of §IV.D.
//!
//! Peaks are the published per-device numbers; `eff_*` are the fractions of
//! peak a large tile GEMM sustains in each precision (DGEMM on these parts
//! reaches 85–95% of peak; half-precision tensor GEMM sustains a far lower
//! fraction at Cholesky tile sizes because it turns memory-bound). These
//! derating factors are the calibration knobs of the model and are recorded
//! in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// The four evaluation systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Machine {
    /// ORNL Frontier — AMD MI250X (counted per MCM as in the paper).
    Frontier,
    /// CSCS Alps — NVIDIA GH200 (H100 GPU).
    Alps,
    /// CINECA Leonardo — NVIDIA A100 64 GB.
    Leonardo,
    /// ORNL Summit — NVIDIA V100.
    Summit,
}

/// Hardware description used by the simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// GPU devices per node (MI250X counted per MCM, as the paper does).
    pub gpus_per_node: usize,
    /// Total nodes in the machine.
    pub max_nodes: usize,
    /// Per-GPU double-precision peak, TFlop/s.
    pub dp_peak_tf: f64,
    /// Per-GPU single-precision (or TF32 tensor) peak, TFlop/s.
    pub sp_peak_tf: f64,
    /// Per-GPU half-precision tensor peak, TFlop/s.
    pub hp_peak_tf: f64,
    /// Sustained fraction of peak for large DP tile kernels.
    pub eff_dp: f64,
    /// Sustained fraction for SP.
    pub eff_sp: f64,
    /// Sustained fraction for HP tensor GEMM at Cholesky tile sizes.
    pub eff_hp: f64,
    /// Per-GPU device memory, GB.
    pub mem_gb: f64,
    /// Node injection bandwidth, GB/s.
    pub node_bw_gbs: f64,
    /// Point-to-point message latency, microseconds.
    pub latency_us: f64,
}

impl MachineSpec {
    /// Spec of one of the catalog machines.
    pub fn of(machine: Machine) -> Self {
        match machine {
            Machine::Frontier => MachineSpec {
                name: "Frontier",
                gpus_per_node: 4, // MCMs; two GCDs each
                max_nodes: 9472,
                dp_peak_tf: 47.9, // per MCM, vector; matrix engines higher
                sp_peak_tf: 95.7,
                hp_peak_tf: 383.0,
                eff_dp: 0.85,
                eff_sp: 0.70,
                eff_hp: 0.14,
                mem_gb: 128.0,
                node_bw_gbs: 100.0,
                latency_us: 2.0,
            },
            Machine::Alps => MachineSpec {
                name: "Alps",
                gpus_per_node: 4,
                max_nodes: 2688,
                dp_peak_tf: 67.0,  // H100 SXM tensor DP
                sp_peak_tf: 494.0, // TF32 tensor (dense)
                hp_peak_tf: 989.0,
                eff_dp: 0.80,
                eff_sp: 0.35,
                eff_hp: 0.115,
                mem_gb: 96.0,
                node_bw_gbs: 100.0,
                latency_us: 2.0,
            },
            Machine::Leonardo => MachineSpec {
                name: "Leonardo",
                gpus_per_node: 4,
                max_nodes: 3456,
                dp_peak_tf: 19.5,  // A100 tensor DP
                sp_peak_tf: 156.0, // TF32 tensor
                hp_peak_tf: 312.0,
                eff_dp: 0.85,
                eff_sp: 0.40,
                eff_hp: 0.30,
                mem_gb: 64.0,
                node_bw_gbs: 25.0,
                latency_us: 2.0,
            },
            Machine::Summit => MachineSpec {
                name: "Summit",
                gpus_per_node: 6,
                max_nodes: 4608,
                dp_peak_tf: 7.8,
                sp_peak_tf: 15.7,
                hp_peak_tf: 125.0,
                eff_dp: 0.90,
                eff_sp: 0.85,
                eff_hp: 0.35,
                mem_gb: 16.0,
                node_bw_gbs: 25.0,
                latency_us: 1.5,
            },
        }
    }

    /// Effective per-GPU tile-kernel rate in TFlop/s for a precision bucket
    /// (`0` = HP, `1` = SP, `2` = DP — matching `exaclim_linalg` bucketing).
    pub fn rate_tf(&self, bucket: usize) -> f64 {
        match bucket {
            0 => self.hp_peak_tf * self.eff_hp,
            1 => self.sp_peak_tf * self.eff_sp,
            _ => self.dp_peak_tf * self.eff_dp,
        }
    }

    /// Machine DP peak at `nodes`, PFlop/s.
    pub fn dp_peak_pf(&self, nodes: usize) -> f64 {
        nodes as f64 * self.gpus_per_node as f64 * self.dp_peak_tf / 1e3
    }

    /// Largest matrix dimension whose tiles (at `avg_bytes` per element,
    /// variant-dependent) fit aggregate device memory. Half of memory is
    /// reserved for runtime buffers — the paper notes matrix sizes max out
    /// device memory "in addition to PaRSEC internal memory buffers".
    pub fn max_matrix_n(&self, nodes: usize, avg_bytes: f64) -> usize {
        let bytes = 0.5 * self.mem_gb * 1e9 * (nodes * self.gpus_per_node) as f64;
        // Lower-triangular storage: n(n+1)/2 × avg_bytes ≤ bytes.
        ((2.0 * bytes / avg_bytes).sqrt()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_counts() {
        let f = MachineSpec::of(Machine::Frontier);
        // Paper: 9,025 nodes = 36,100 MI250X.
        assert_eq!(9_025 * f.gpus_per_node, 36_100);
        let s = MachineSpec::of(Machine::Summit);
        // Paper: 3,072 nodes = 18,432 V100; 2,048 nodes = 12,288.
        assert_eq!(3_072 * s.gpus_per_node, 18_432);
        assert_eq!(2_048 * s.gpus_per_node, 12_288);
        let a = MachineSpec::of(Machine::Alps);
        // Paper: 1,936 nodes = 7,744 GH200.
        assert_eq!(1_936 * a.gpus_per_node, 7_744);
        let l = MachineSpec::of(Machine::Leonardo);
        // Paper: 1,024 nodes = 4,096 A100.
        assert_eq!(1_024 * l.gpus_per_node, 4_096);
    }

    #[test]
    fn summit_dp_peak_matches_top500_scale() {
        let s = MachineSpec::of(Machine::Summit);
        // Full Summit ≈ 200 PF DP (paper: 200.79 PF theoretical peak).
        let peak = s.dp_peak_pf(s.max_nodes);
        assert!((peak - 200.0).abs() < 20.0, "peak {peak}");
    }

    #[test]
    fn hp_rates_exceed_dp_rates() {
        for m in [
            Machine::Frontier,
            Machine::Alps,
            Machine::Leonardo,
            Machine::Summit,
        ] {
            let spec = MachineSpec::of(m);
            assert!(spec.rate_tf(0) > spec.rate_tf(2), "{}", spec.name);
            assert!(spec.rate_tf(1) >= spec.rate_tf(2) * 0.9, "{}", spec.name);
        }
    }

    #[test]
    fn memory_capacity_ordering() {
        // Paper Table I (DP/HP ≈ 2.5 B/element): Summit 6.29M < Leonardo
        // 8.39M < Alps 10.49M on 1,024 nodes — driven by per-GPU memory.
        let n_summit = MachineSpec::of(Machine::Summit).max_matrix_n(1024, 2.5);
        let n_leo = MachineSpec::of(Machine::Leonardo).max_matrix_n(1024, 2.5);
        let n_alps = MachineSpec::of(Machine::Alps).max_matrix_n(1024, 2.5);
        assert!(n_summit < n_leo, "{n_summit} vs {n_leo}");
        assert!(n_leo < n_alps, "{n_leo} vs {n_alps}");
        // Summit @1024 nodes holds ~6M-range DP/HP matrices (paper: 6.29M).
        assert!(n_summit > 5_000_000 && n_summit < 8_000_000, "{n_summit}");
        // Alps holds the 10.49M the paper reports.
        assert!(n_alps > 10_000_000, "{n_alps}");
    }
}
