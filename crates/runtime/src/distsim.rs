//! Simulated distributed execution of the Cholesky DAG.
//!
//! The paper's Figure 5 ablation shows sender-side precision conversion
//! speeding up DP/HP by 1.53× on 128 Summit nodes: converting a tile *before*
//! it is broadcast shrinks every message to the consumer's precision and
//! performs the conversion once instead of at every receiving task. This
//! module replays the Cholesky communication pattern over a 2D block-cyclic
//! tile distribution and ledgers messages, bytes, and conversions for both
//! placements. The timing model on top of this ledger lives in
//! `exaclim-cluster`.

use exaclim_linalg::precision::{Precision, PrecisionPolicy};

/// Where precision conversion happens relative to communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionSide {
    /// Convert at the sender; messages travel at the consumer precision
    /// (the optimization introduced in §V.A).
    Sender,
    /// Convert at each receiver; messages travel at the producer precision.
    Receiver,
}

/// Distributed-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Process-grid rows.
    pub p: usize,
    /// Process-grid columns.
    pub q: usize,
    /// Conversion placement.
    pub conversion: ConversionSide,
}

impl DistConfig {
    /// Node owning tile `(i, j)` under 2D block-cyclic distribution.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) * self.q + (j % self.q)
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.p * self.q
    }
}

/// Aggregate communication ledger of one simulated factorization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MessageLedger {
    /// Point-to-point messages sent (broadcast counted per destination node).
    pub messages: usize,
    /// Total bytes on the wire.
    pub bytes: f64,
    /// Precision conversions performed (sender: per distinct wire precision
    /// per broadcast; receiver: per consuming task with mismatched
    /// precision).
    pub conversions: usize,
}

impl MessageLedger {
    fn add_message(&mut self, bytes: f64) {
        self.messages += 1;
        self.bytes += bytes;
    }
}

/// Consumers of one produced tile: `(consumer tile row, col)`.
fn trsm_consumers(nt: usize, i: usize, k: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    v.push((i, i)); // SYRK(i,k) updates the diagonal tile
    for j in k + 1..i {
        v.push((i, j)); // GEMM(i,j,k), A-operand
    }
    for i2 in i + 1..nt {
        v.push((i2, i)); // GEMM(i2,i,k), B-operand
    }
    v
}

/// Replay the tile-Cholesky communication pattern for an `nt × nt` tile
/// matrix with tile side `b`, per-tile precisions from `policy`, on the
/// process grid of `cfg`.
pub fn simulate_distribution(
    nt: usize,
    b: usize,
    policy: &PrecisionPolicy,
    cfg: &DistConfig,
) -> MessageLedger {
    let tile_bytes = |p: Precision| (b * b * p.bytes()) as f64;
    let prec = |i: usize, j: usize| policy.assign(i, j, 1.0);
    let mut ledger = MessageLedger::default();

    // One broadcast: `src_tile` of precision `src_p` produced on
    // `src_owner`, consumed by tasks updating `consumers` tiles.
    let mut broadcast = |src_owner: usize, src_p: Precision, consumers: &[(usize, usize)]| {
        match cfg.conversion {
            ConversionSide::Receiver => {
                // Wire precision = producer precision; dedupe by node.
                let mut seen = vec![false; cfg.nodes()];
                for &(ci, cj) in consumers {
                    let dst = cfg.owner(ci, cj);
                    if dst != src_owner && !seen[dst] {
                        seen[dst] = true;
                        ledger.add_message(tile_bytes(src_p));
                    }
                    // Every consuming task converts on mismatch.
                    if prec(ci, cj) != src_p {
                        ledger.conversions += 1;
                    }
                }
            }
            ConversionSide::Sender => {
                // Group consumers by (node, wire precision = consumer tile
                // precision); convert once per distinct wire precision.
                let mut seen = vec![[false; 3]; cfg.nodes()];
                let mut converted = [false; 3];
                let pidx = |p: Precision| match p {
                    Precision::Half => 0usize,
                    Precision::Single => 1,
                    Precision::Double => 2,
                };
                for &(ci, cj) in consumers {
                    let wire = prec(ci, cj).max(Precision::Half).min_wire(src_p);
                    let dst = cfg.owner(ci, cj);
                    if wire != src_p && !converted[pidx(wire)] {
                        converted[pidx(wire)] = true;
                        ledger.conversions += 1;
                    }
                    if dst != src_owner && !seen[dst][pidx(wire)] {
                        seen[dst][pidx(wire)] = true;
                        ledger.add_message(tile_bytes(wire));
                    }
                }
            }
        }
    };

    for k in 0..nt {
        // POTRF(k) result to the TRSMs of panel k.
        let consumers: Vec<(usize, usize)> = (k + 1..nt).map(|i| (i, k)).collect();
        if !consumers.is_empty() {
            broadcast(cfg.owner(k, k), prec(k, k), &consumers);
        }
        // Each TRSM(i,k) result to its SYRK/GEMM consumers.
        for i in k + 1..nt {
            let consumers = trsm_consumers(nt, i, k);
            broadcast(cfg.owner(i, k), prec(i, k), &consumers);
        }
    }
    ledger
}

/// Helper: the precision actually sent on the wire for a consumer that
/// computes at `self` when the producer stores at `src`. Down-conversions
/// shrink traffic; up-conversions never happen on the wire (the receiver
/// widens for free).
trait WirePrecision {
    fn min_wire(self, src: Precision) -> Precision;
}

impl WirePrecision for Precision {
    fn min_wire(self, src: Precision) -> Precision {
        if self <= src {
            self
        } else {
            src
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: usize, q: usize, side: ConversionSide) -> DistConfig {
        DistConfig {
            p,
            q,
            conversion: side,
        }
    }

    #[test]
    fn block_cyclic_owner_layout() {
        let c = cfg(2, 3, ConversionSide::Receiver);
        assert_eq!(c.nodes(), 6);
        assert_eq!(c.owner(0, 0), 0);
        assert_eq!(c.owner(0, 1), 1);
        assert_eq!(c.owner(1, 0), 3);
        assert_eq!(c.owner(2, 3), 0); // wraps both dimensions
    }

    #[test]
    fn single_node_sends_nothing() {
        let l = simulate_distribution(
            8,
            16,
            &PrecisionPolicy::dp(),
            &cfg(1, 1, ConversionSide::Receiver),
        );
        assert_eq!(l.messages, 0);
        assert_eq!(l.bytes, 0.0);
        assert_eq!(l.conversions, 0, "uniform DP needs no conversions");
    }

    #[test]
    fn sender_side_shrinks_bytes_for_dp_hp() {
        let policy = PrecisionPolicy::dp_hp();
        let recv = simulate_distribution(16, 32, &policy, &cfg(2, 2, ConversionSide::Receiver));
        let send = simulate_distribution(16, 32, &policy, &cfg(2, 2, ConversionSide::Sender));
        // DP panels broadcast to HP consumers: wire shrinks 4× on those
        // edges under sender-side conversion.
        assert!(
            send.bytes < recv.bytes,
            "send={} recv={}",
            send.bytes,
            recv.bytes
        );
        assert!(send.conversions < recv.conversions);
        // Message *count* is conversion-placement independent up to the
        // per-precision split.
        assert!(send.messages >= recv.messages);
    }

    #[test]
    fn uniform_dp_is_placement_invariant() {
        let policy = PrecisionPolicy::dp();
        let recv = simulate_distribution(12, 8, &policy, &cfg(2, 3, ConversionSide::Receiver));
        let send = simulate_distribution(12, 8, &policy, &cfg(2, 3, ConversionSide::Sender));
        assert_eq!(recv, send, "no precision mismatch → identical ledgers");
    }

    #[test]
    fn bytes_scale_with_tile_size() {
        let policy = PrecisionPolicy::dp();
        let small = simulate_distribution(8, 8, &policy, &cfg(2, 2, ConversionSide::Receiver));
        let large = simulate_distribution(8, 16, &policy, &cfg(2, 2, ConversionSide::Receiver));
        assert_eq!(small.messages, large.messages);
        assert!(
            (large.bytes / small.bytes - 4.0).abs() < 1e-12,
            "b² scaling"
        );
    }

    #[test]
    fn more_nodes_mean_more_messages() {
        let policy = PrecisionPolicy::dp();
        let few = simulate_distribution(16, 8, &policy, &cfg(2, 2, ConversionSide::Receiver));
        let many = simulate_distribution(16, 8, &policy, &cfg(4, 4, ConversionSide::Receiver));
        assert!(many.messages > few.messages);
    }

    #[test]
    fn conversion_counts_follow_placement_semantics() {
        // DP producer (diagonal) with many HP consumers: receiver-side pays
        // one conversion per consuming task, sender-side one per broadcast.
        let policy = PrecisionPolicy::dp_hp();
        let nt = 12;
        let recv = simulate_distribution(nt, 8, &policy, &cfg(1, 1, ConversionSide::Receiver));
        let send = simulate_distribution(nt, 8, &policy, &cfg(1, 1, ConversionSide::Sender));
        assert!(recv.conversions > send.conversions);
        assert!(send.conversions > 0);
    }
}
