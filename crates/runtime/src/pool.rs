//! Shared worker pool for data-parallel loops.
//!
//! The executor in [`crate::executor`] schedules *task graphs*; this module
//! provides the complementary primitive: flat data parallelism over index
//! ranges and mutable chunk splits, shared process-wide through [`global`].
//! The rayon shim (`crates/shims/rayon`) routes every `par_iter` /
//! `par_chunks` entry point through this pool, which is what restores real
//! data parallelism to the training and emulation hot paths.
//!
//! Design notes:
//!
//! * The pool is lazily initialized on first use and sized by
//!   `EXACLIM_THREADS` (if set to a positive integer) or
//!   `std::thread::available_parallelism()` otherwise. A size of 1 spawns
//!   no worker threads at all — every call runs inline on the caller, which
//!   is the sequential-fallback mode exercised by CI.
//! * The caller of [`WorkerPool::parallel_for`] / [`WorkerPool::join`]
//!   counts as one of the pool's threads: it executes the first piece of
//!   work itself, then helps drain the queue while waiting, so an
//!   `EXACLIM_THREADS=N` pool applies exactly `N`-way parallelism with
//!   `N − 1` resident workers.
//! * Nested calls from inside a pool worker run inline (sequentially).
//!   Workers therefore never block on the pool, which makes nesting — and
//!   rayon-shim calls made from inside executor tasks — deadlock-free by
//!   construction.
//! * Idle workers block on a condition variable; an idle pool consumes no
//!   CPU.
//! * Panics inside loop bodies are caught, the remaining pieces are allowed
//!   to finish, and the first payload is re-raised on the caller — a panic
//!   behaves like it would in the equivalent sequential loop.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// Type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// What a panicking piece of work left behind.
type PanicPayload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// True on threads owned by a [`WorkerPool`] (and on any thread while it
    /// helps run queued jobs). Used to force nested calls inline.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Queue state guarded by the pool mutex.
struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A fixed-size pool of worker threads executing queued closures.
///
/// Most code should use the process-wide [`global`] pool; constructing a
/// private pool is mainly useful in tests.
pub struct WorkerPool {
    threads: usize,
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Completion latch for one `parallel_for`/`join` call: counts outstanding
/// queued pieces and records the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<PanicPayload>,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                pending,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, payload: Option<PanicPayload>) {
        let mut s = self.state.lock();
        s.pending -= 1;
        if s.panic.is_none() {
            s.panic = payload;
        }
        let done = s.pending == 0;
        drop(s);
        if done {
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().pending == 0
    }

    /// Block until every piece completed; returns the first panic payload.
    fn wait(&self) -> Option<PanicPayload> {
        let mut s = self.state.lock();
        while s.pending > 0 {
            self.cv.wait(&mut s);
        }
        s.panic.take()
    }
}

/// Run a job with the in-pool marker set, swallowing panics (jobs carry
/// their own `catch_unwind`; this is a backstop so a worker thread can
/// never die to an unwind).
fn run_flagged(job: Job) {
    IN_POOL_WORKER.with(|flag| {
        let prev = flag.get();
        flag.set(true);
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
        flag.set(prev);
    });
}

fn worker_main(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut s = shared.state.lock();
            loop {
                if let Some(j) = s.jobs.pop_front() {
                    break Some(j);
                }
                if s.shutdown {
                    break None;
                }
                shared.cv.wait(&mut s);
            }
        };
        match job {
            Some(j) => run_flagged(j),
            None => return,
        }
    }
}

/// Raw mutable base pointer that may be shared across the pool's threads.
/// Soundness comes from the caller handing out disjoint regions only.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor rather than field use, so closures capture the whole
    /// wrapper (edition-2021 disjoint capture would otherwise grab the bare
    /// `*mut T`, which is neither `Send` nor `Sync`).
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl WorkerPool {
    /// Build a pool applying `threads`-way parallelism (clamped to
    /// `1..=1024`). `threads − 1` resident worker threads are spawned; the
    /// calling thread supplies the remaining lane at each call site.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, 1024);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exaclim-pool-{i}"))
                    .spawn(move || worker_main(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            threads,
            shared,
            handles,
        }
    }

    /// Degree of parallelism this pool applies (callers count as one lane).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn submit(&self, job: Job) {
        let mut s = self.shared.state.lock();
        s.jobs.push_back(job);
        drop(s);
        self.shared.cv.notify_one();
    }

    /// Pop and run one queued job, if any. Used by blocked callers to help
    /// drain the queue instead of idling.
    fn try_run_one(&self) -> bool {
        let job = self.shared.state.lock().jobs.pop_front();
        match job {
            Some(j) => {
                run_flagged(j);
                true
            }
            None => false,
        }
    }

    /// Split `0..n` into contiguous, near-equal index ranges — one per pool
    /// lane — and run `body` on each, in parallel. Returns after every range
    /// completed. Panics inside `body` propagate to the caller after all
    /// other ranges finish.
    ///
    /// Called from inside a pool worker (nested use), or with a single-lane
    /// pool, the whole range runs inline on the caller.
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let pieces = self.threads.min(n);
        if pieces <= 1 || IN_POOL_WORKER.with(Cell::get) {
            body(0..n);
            return;
        }
        let base = n / pieces;
        let rem = n % pieces;
        // Start of piece k: the first `rem` pieces carry one extra index.
        let bound = move |k: usize| k * base + k.min(rem);

        let latch = Latch::new(pieces - 1);
        let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;
        for k in 1..pieces {
            let range = bound(k)..bound(k + 1);
            let latch_ref = &latch;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = panic::catch_unwind(AssertUnwindSafe(|| body_ref(range)));
                latch_ref.complete(r.err());
            });
            // SAFETY: the job borrows `body` and `latch` on this stack
            // frame; `latch.wait()` below blocks until the job has run, so
            // the borrows outlive the (lifetime-erased) job.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.submit(job);
        }
        let mine = panic::catch_unwind(AssertUnwindSafe(|| body_ref(bound(0)..bound(1))));
        while !latch.is_done() && self.try_run_one() {}
        let queued_panic = latch.wait();
        if let Err(p) = mine {
            panic::resume_unwind(p);
        }
        if let Some(p) = queued_panic {
            panic::resume_unwind(p);
        }
    }

    /// Run `a` and `b`, potentially in parallel, and return both results.
    /// If either side panics, the panic is re-raised here after both sides
    /// finished.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 || IN_POOL_WORKER.with(Cell::get) {
            return (a(), b());
        }
        let latch = Latch::new(1);
        let slot: Mutex<Option<RB>> = Mutex::new(None);
        {
            let latch_ref = &latch;
            let slot_ref = &slot;
            let job: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || match panic::catch_unwind(AssertUnwindSafe(b)) {
                    Ok(v) => {
                        *slot_ref.lock() = Some(v);
                        latch_ref.complete(None);
                    }
                    Err(p) => latch_ref.complete(Some(p)),
                });
            // SAFETY: as in `parallel_for` — `latch.wait()` below outlives
            // the lifetime-erased borrows of `latch` and `slot`.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.submit(job);
        }
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        while !latch.is_done() && self.try_run_one() {}
        let b_panic = latch.wait();
        let ra = match ra {
            Ok(v) => v,
            Err(p) => panic::resume_unwind(p),
        };
        if let Some(p) = b_panic {
            panic::resume_unwind(p);
        }
        let rb = slot.lock().take().expect("join: worker stored no result");
        (ra, rb)
    }

    /// Split `data` into chunks of `chunk_len` elements (the last may be
    /// shorter) and run `body(chunk_index, chunk)` on each, in parallel.
    ///
    /// The rayon shim's `ChunksMut` iterator performs the same raw-pointer
    /// disjoint split per index (it needs per-index access to compose with
    /// `zip`/`enumerate`); if the splitting or capture logic here changes,
    /// mirror it there.
    pub fn parallel_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = data.len();
        let nchunks = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.parallel_for(nchunks, |range| {
            for i in range {
                let start = i * chunk_len;
                let end = (start + chunk_len).min(len);
                // SAFETY: chunk index ranges are disjoint across pieces, so
                // each element of `data` is reachable from exactly one
                // synthesized slice; `data` stays mutably borrowed (and the
                // caller blocked) until `parallel_for` returns.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                body(i, chunk);
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide pool, created on first use. Sized by `EXACLIM_THREADS`
/// when set to a positive integer, by `available_parallelism()` otherwise.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(configured_threads()))
}

fn configured_threads() -> usize {
    thread_count_from(std::env::var("EXACLIM_THREADS").ok().as_deref())
}

/// Resolve the pool size from an optional `EXACLIM_THREADS` value.
fn thread_count_from(var: Option<&str>) -> usize {
    if let Some(v) = var {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "exaclim: ignoring EXACLIM_THREADS={v:?} (want a positive integer); \
                 using available parallelism"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            for n in [0usize, 1, 2, 3, 64, 1000] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.parallel_for(n, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads}, n={n}"
                );
            }
        }
    }

    #[test]
    fn chunks_mut_writes_disjoint_regions() {
        let pool = WorkerPool::new(4);
        for (len, chunk) in [(0usize, 3usize), (5, 100), (97, 8), (4096, 13)] {
            let mut data = vec![0u64; len];
            pool.parallel_chunks_mut(&mut data, chunk, |ci, c| {
                for (off, v) in c.iter_mut().enumerate() {
                    *v = (ci * chunk + off) as u64 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "len={len}, chunk={chunk}");
            }
        }
    }

    #[test]
    fn join_returns_both_sides() {
        let pool = WorkerPool::new(4);
        let (a, b) = pool.join(|| 6 * 7, || "right".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "right");
    }

    #[test]
    fn nested_calls_complete() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_for(8, |outer| {
            for _ in outer {
                // Inner call: inline when on a worker, parallel when on the
                // caller lane. Either way it must terminate.
                pool.parallel_for(16, |inner| {
                    total.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn body_panic_propagates_after_all_pieces_finish() {
        let pool = WorkerPool::new(4);
        let completed = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, |range| {
                for i in range {
                    if i == 33 {
                        panic!("piece exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("piece exploded"), "{msg}");
        // The pool stays usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.parallel_for(10, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = std::thread::current().id();
        pool.parallel_for(5, |range| {
            assert_eq!(std::thread::current().id(), tid);
            assert_eq!(range, 0..5, "single lane must get the whole range");
        });
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(thread_count_from(Some("3")), 3);
        assert_eq!(thread_count_from(Some(" 8 ")), 8);
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(thread_count_from(None), hw);
        assert_eq!(thread_count_from(Some("0")), hw);
        assert_eq!(thread_count_from(Some("not-a-number")), hw);
    }

    #[test]
    fn parallel_for_speedup_gated() {
        // Same style as the executor's speedup test: meaningless without
        // real hardware parallelism, so scale the assertion to the cores
        // actually present and skip single-core hosts.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping pool speedup assertion on {cores}-core host");
            return;
        }
        let _timing = crate::TIMING_TEST_LOCK.lock();
        let lanes = cores.min(8);
        let pool = WorkerPool::new(lanes);
        let spin = || {
            let t = std::time::Instant::now();
            while t.elapsed().as_micros() < 1000 {
                std::hint::spin_loop();
            }
        };
        let n = 64usize;
        let t_seq = {
            let t = std::time::Instant::now();
            for _ in 0..n {
                spin();
            }
            t.elapsed().as_secs_f64()
        };
        let t_par = {
            let t = std::time::Instant::now();
            pool.parallel_for(n, |range| {
                for _ in range {
                    spin();
                }
            });
            t.elapsed().as_secs_f64()
        };
        let min_speedup = 1.0 + 0.3 * (lanes as f64 - 1.0);
        assert!(
            t_seq / t_par > min_speedup,
            "lanes={lanes}: t_seq={t_seq}, t_par={t_par}, want ≥ {min_speedup}×"
        );
    }
}
