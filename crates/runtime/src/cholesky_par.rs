//! Task-parallel mixed-precision tile Cholesky on the DAG executor.
//!
//! Numerically identical to `exaclim_linalg::tile_cholesky`: the dependence
//! edges of [`crate::graph::cholesky_graph`] serialize same-tile updates in
//! ascending panel order, so every tile sees the exact operation sequence of
//! the sequential loop — results match bitwise in every precision variant.

use crate::executor::{ExecError, Executor, SchedulerKind};
use crate::graph::{cholesky_graph, TaskKind};
use crate::trace::TraceReport;
use exaclim_linalg::cholesky::CholeskyStats;
use exaclim_linalg::kernels;
use exaclim_linalg::precision::Precision;
use exaclim_linalg::tile::Tile;
use exaclim_linalg::tiled::TiledMatrix;
use parking_lot::Mutex;
use std::time::Instant;

/// Factor `a` in place using `workers` threads under `scheduler`.
///
/// Returns the same [`CholeskyStats`] as the sequential path plus the
/// executor's [`TraceReport`].
pub fn parallel_tile_cholesky(
    a: &mut TiledMatrix,
    workers: usize,
    scheduler: SchedulerKind,
) -> Result<(CholeskyStats, TraceReport), ExecError> {
    let start = Instant::now();
    let nt = a.nt();
    let b = a.b();
    // Move tiles into lock cells for shared-memory task execution.
    let cells: Vec<Mutex<Tile>> = {
        let mut v = Vec::with_capacity(nt * (nt + 1) / 2);
        for i in 0..nt {
            for j in 0..=i {
                v.push(Mutex::new(a.tile(i, j).clone()));
            }
        }
        v
    };
    let at = |i: usize, j: usize| -> &Mutex<Tile> { &cells[i * (i + 1) / 2 + j] };

    let graph = cholesky_graph(nt);
    let exec = Executor::new(workers, scheduler);
    let trace = exec.run(&graph, |_, kind| {
        match *kind {
            TaskKind::Potrf { k } => {
                let mut t = at(k, k).lock();
                kernels::potrf(&mut t).map_err(|e| e.to_string())?;
            }
            TaskKind::Trsm { i, k } => {
                // Clone the read operand under a short lock to avoid holding
                // two locks at once (deadlock-free by construction).
                let lkk = at(k, k).lock().clone();
                let mut t = at(i, k).lock();
                kernels::trsm(&lkk, &mut t);
            }
            TaskKind::Syrk { i, k } => {
                let aik = at(i, k).lock().clone();
                let mut t = at(i, i).lock();
                kernels::syrk(&aik, &mut t);
            }
            TaskKind::Gemm { i, j, k } => {
                let aik = at(i, k).lock().clone();
                let ajk = at(j, k).lock().clone();
                let mut t = at(i, j).lock();
                kernels::gemm(&aik, &ajk, &mut t);
            }
            TaskKind::Generic(_) => unreachable!("cholesky graph has no generic tasks"),
        }
        Ok(())
    })?;

    // Write results back and account flops by tile precision.
    let mut flops = [0.0f64; 3];
    let bucket = |p: Precision| match p {
        Precision::Half => 0usize,
        Precision::Single => 1,
        Precision::Double => 2,
    };
    let mut counts = (0usize, 0usize, 0usize, 0usize);
    for k in 0..nt {
        counts.0 += 1;
        flops[bucket(a.tile(k, k).precision())] += kernels::flops::potrf(b);
        for i in k + 1..nt {
            counts.1 += 1;
            flops[bucket(a.tile(i, k).precision())] += kernels::flops::trsm(b);
            counts.2 += 1;
            flops[bucket(a.tile(i, i).precision())] += kernels::flops::syrk(b);
            for j in k + 1..i {
                counts.3 += 1;
                flops[bucket(a.tile(i, j).precision())] += kernels::flops::gemm(b);
            }
        }
    }
    let mut idx = 0usize;
    for i in 0..nt {
        for j in 0..=i {
            *a.tile_mut(i, j) = cells[idx].lock().clone();
            idx += 1;
        }
    }
    let stats = CholeskyStats {
        n: a.n(),
        b,
        kernel_counts: counts,
        flops_by_precision: flops,
        seconds: start.elapsed().as_secs_f64().max(1e-12),
    };
    Ok((stats, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_linalg::cholesky::{factorization_residual, tile_cholesky};
    use exaclim_linalg::precision::PrecisionPolicy;
    use exaclim_linalg::tiled::exp_covariance;

    fn schedulers() -> [SchedulerKind; 3] {
        [
            SchedulerKind::WorkStealing,
            SchedulerKind::PriorityHeap,
            SchedulerKind::Fifo,
        ]
    }

    #[test]
    fn matches_sequential_bitwise_dp() {
        let n = 48;
        let a = exp_covariance(n, 5.0, 1e-3);
        let mut seq = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp());
        tile_cholesky(&mut seq).unwrap();
        for sched in schedulers() {
            let mut par = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp());
            parallel_tile_cholesky(&mut par, 4, sched).unwrap();
            let (s, p) = (seq.to_dense_lower(), par.to_dense_lower());
            assert_eq!(s, p, "bitwise mismatch under {sched:?}");
        }
    }

    #[test]
    fn matches_sequential_bitwise_mixed_precision() {
        let n = 64;
        let a = exp_covariance(n, 6.0, 1e-2);
        for policy in [
            PrecisionPolicy::dp_sp(),
            PrecisionPolicy::dp_hp(),
            PrecisionPolicy::dp_sp_hp(8),
        ] {
            let mut seq = TiledMatrix::from_dense(&a, n, 8, &policy);
            tile_cholesky(&mut seq).unwrap();
            let mut par = TiledMatrix::from_dense(&a, n, 8, &policy);
            parallel_tile_cholesky(&mut par, 6, SchedulerKind::PriorityHeap).unwrap();
            assert_eq!(
                seq.to_dense_lower(),
                par.to_dense_lower(),
                "policy {}",
                policy.label()
            );
        }
    }

    #[test]
    fn residual_small_in_parallel() {
        let n = 64;
        let a = exp_covariance(n, 8.0, 1e-3);
        let mut tm = TiledMatrix::from_dense(&a, n, 16, &PrecisionPolicy::dp());
        let (stats, trace) =
            parallel_tile_cholesky(&mut tm, 4, SchedulerKind::WorkStealing).unwrap();
        assert!(factorization_residual(&a, &tm) < 1e-13);
        assert_eq!(stats.kernel_counts.0, 4);
        assert_eq!(trace.spans.len(), crate::graph::cholesky_task_count(4));
    }

    #[test]
    fn indefinite_matrix_fails_cleanly() {
        let n = 16;
        let mut a = exp_covariance(n, 2.0, 0.0);
        a[0] = -3.0;
        let mut tm = TiledMatrix::from_dense(&a, n, 4, &PrecisionPolicy::dp());
        let err = parallel_tile_cholesky(&mut tm, 4, SchedulerKind::WorkStealing).unwrap_err();
        assert!(err.message.contains("positive definite"), "{}", err.message);
    }

    #[test]
    fn single_worker_equals_multi_worker() {
        let n = 32;
        let a = exp_covariance(n, 4.0, 1e-3);
        let mut one = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp_hp());
        let mut many = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp_hp());
        parallel_tile_cholesky(&mut one, 1, SchedulerKind::Fifo).unwrap();
        parallel_tile_cholesky(&mut many, 8, SchedulerKind::WorkStealing).unwrap();
        assert_eq!(one.to_dense_lower(), many.to_dense_lower());
    }
}
