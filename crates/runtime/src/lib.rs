//! # exaclim-runtime
//!
//! A PaRSEC-style dynamic task runtime (paper §II.D, §III.C), built from
//! scratch on `crossbeam` and `parking_lot`:
//!
//! * [`graph`] — task DAGs with explicit dependences and priorities,
//!   including the parametrized tile-Cholesky graph (the PTG the paper's
//!   DSL would generate),
//! * [`executor`] — a multi-threaded executor with three scheduling
//!   policies: work-stealing LIFO deques, a global priority heap (the
//!   paper's critical-path priorities), and plain FIFO,
//! * [`faults`] — deterministic, seeded fault injection (`EXACLIM_FAULTS`
//!   env + programmatic [`faults::FaultPlan`] API, zero-cost when
//!   disabled); the serving layer threads its injection points through
//!   socket I/O, chunk decode, and batch dispatch so resilience
//!   machinery can be qualified under a reproducible failure schedule,
//! * [`pool`] — the shared worker pool for flat data parallelism
//!   (`parallel_for`, `join`, mutable chunk splits); the rayon shim routes
//!   every `par_iter`/`par_chunks` call site through it,
//! * [`reactor`] — a dependency-free readiness reactor (raw
//!   `epoll`/`poll(2)` FFI, unix-gated, in the spirit of the raw-mmap FFI
//!   in `exaclim-store`) with token-based registration, a deadline wheel,
//!   and a cross-thread wakeup fd; the serving layer multiplexes its
//!   nonblocking connection state machines over it,
//! * [`sync`] — small shared synchronization primitives (a counting
//!   semaphore with RAII permits, used to bound accept-side concurrency in
//!   the serving layer's network front end),
//! * [`trace`] — per-task timelines, worker utilization, and critical-path
//!   statistics used by the scaling ablations,
//! * [`cholesky_par`] — the task-parallel mixed-precision tile Cholesky,
//!   numerically identical to the sequential `exaclim_linalg` version,
//! * [`distsim`] — simulated distributed execution over a 2D block-cyclic
//!   tile distribution with a message ledger: per-precision payload bytes,
//!   sender- vs receiver-side conversion placement (§V.A), and broadcast
//!   trees, feeding the communication ablation of Figure 5.

pub mod cholesky_par;
pub mod distsim;
pub mod executor;
pub mod faults;
pub mod graph;
pub mod pool;
pub mod reactor;
pub mod sync;
pub mod trace;

pub use cholesky_par::parallel_tile_cholesky;
pub use distsim::{simulate_distribution, ConversionSide, DistConfig, MessageLedger};
pub use executor::{ExecError, Executor, SchedulerKind};
pub use faults::{FaultAction, FaultPlan};
pub use graph::{cholesky_graph, TaskGraph, TaskId};
pub use pool::WorkerPool;
pub use reactor::{reactor_enabled, Event, Interest, Mode, Token, REACTOR_SUPPORTED};
#[cfg(unix)]
pub use reactor::{Backend, Reactor, Waker};
pub use sync::{Permit, Semaphore};
pub use trace::TraceReport;

/// Serializes the wall-clock speedup tests of this crate: libtest runs
/// tests concurrently within a binary, and two overlapping spin-timing
/// measurements would skew each other's ratios on small CI hosts.
#[cfg(test)]
pub(crate) static TIMING_TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
