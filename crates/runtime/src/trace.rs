//! Execution traces: per-task spans, utilization, kernel histograms.

use crate::graph::{TaskId, TaskKind};

/// One executed task.
#[derive(Debug, Clone, Copy)]
pub struct TaskSpan {
    /// Task id within the graph.
    pub task: TaskId,
    /// Task kind (kernel type for Cholesky DAGs).
    pub kind: TaskKind,
    /// Worker that ran it.
    pub worker: usize,
    /// Start time, seconds since execution began.
    pub start: f64,
    /// End time, seconds since execution began.
    pub end: f64,
}

/// Full trace of one DAG execution.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// All spans, sorted by start time.
    pub spans: Vec<TaskSpan>,
    /// Wall-clock of the whole execution in seconds.
    pub wall: f64,
    /// Worker count.
    pub workers: usize,
}

impl TraceReport {
    /// Assemble a report (spans assumed sorted by start).
    pub fn new(spans: Vec<TaskSpan>, wall: f64, workers: usize) -> Self {
        Self {
            spans,
            wall,
            workers,
        }
    }

    /// Total busy time across workers.
    pub fn busy_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Mean worker utilization in `[0, 1]`: busy time over `workers × wall`.
    pub fn utilization(&self) -> f64 {
        if self.wall <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        (self.busy_time() / (self.workers as f64 * self.wall)).min(1.0)
    }

    /// Busy seconds per worker.
    pub fn per_worker_busy(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.workers];
        for s in &self.spans {
            v[s.worker] += s.end - s.start;
        }
        v
    }

    /// Count of executed tasks per kernel kind label.
    pub fn kind_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut potrf = 0;
        let mut trsm = 0;
        let mut syrk = 0;
        let mut gemm = 0;
        let mut generic = 0;
        for s in &self.spans {
            match s.kind {
                TaskKind::Potrf { .. } => potrf += 1,
                TaskKind::Trsm { .. } => trsm += 1,
                TaskKind::Syrk { .. } => syrk += 1,
                TaskKind::Gemm { .. } => gemm += 1,
                TaskKind::Generic(_) => generic += 1,
            }
        }
        vec![
            ("potrf", potrf),
            ("trsm", trsm),
            ("syrk", syrk),
            ("gemm", gemm),
            ("generic", generic),
        ]
    }

    /// Load-imbalance ratio: max worker busy time over mean busy time
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let per = self.per_worker_busy();
        let max = per.iter().cloned().fold(0.0, f64::max);
        let mean = per.iter().sum::<f64>() / per.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Observed critical-path seconds through the executed graph: the
    /// longest chain of spans where each successor started after its
    /// predecessor ended (time-ordered heuristic over the realized
    /// schedule). Lower-bounds the makespan of any worker count.
    pub fn critical_path_seconds(&self, graph: &crate::graph::TaskGraph) -> f64 {
        // ready[task] accumulates the max finish time of its predecessors;
        // spans sorted by start time form a topological order of the
        // executed DAG (a task cannot start before its predecessors end),
        // so one forward pass suffices.
        let mut ready = vec![0.0f64; graph.len()];
        let mut longest = 0.0f64;
        for s in &self.spans {
            let dur = s.end - s.start;
            let end = ready[s.task] + dur;
            longest = longest.max(end);
            for &succ in &graph.node(s.task).successors {
                if ready[succ] < end {
                    ready[succ] = end;
                }
            }
        }
        longest
    }

    /// Compact per-worker timeline summary (for logs): worker id, busy
    /// seconds, utilization percent.
    pub fn timeline_summary(&self) -> Vec<(usize, f64, f64)> {
        self.per_worker_busy()
            .into_iter()
            .enumerate()
            .map(|(w, busy)| {
                let util = if self.wall > 0.0 {
                    100.0 * busy / self.wall
                } else {
                    0.0
                };
                (w, busy, util)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: usize, start: f64, end: f64) -> TaskSpan {
        TaskSpan {
            task: 0,
            kind: TaskKind::Generic(0),
            worker,
            start,
            end,
        }
    }

    #[test]
    fn utilization_of_full_schedule() {
        let spans = vec![span(0, 0.0, 1.0), span(1, 0.0, 1.0)];
        let r = TraceReport::new(spans, 1.0, 2);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
        assert!((r.busy_time() - 2.0).abs() < 1e-12);
        assert!((r.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_half_idle_schedule() {
        let spans = vec![span(0, 0.0, 1.0)];
        let r = TraceReport::new(spans, 1.0, 2);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_kinds() {
        let spans = vec![
            TaskSpan {
                task: 0,
                kind: TaskKind::Potrf { k: 0 },
                worker: 0,
                start: 0.0,
                end: 0.1,
            },
            TaskSpan {
                task: 1,
                kind: TaskKind::Gemm { i: 2, j: 1, k: 0 },
                worker: 0,
                start: 0.1,
                end: 0.2,
            },
            TaskSpan {
                task: 2,
                kind: TaskKind::Gemm { i: 3, j: 1, k: 0 },
                worker: 0,
                start: 0.2,
                end: 0.3,
            },
        ];
        let r = TraceReport::new(spans, 0.3, 1);
        let h = r.kind_histogram();
        assert!(h.contains(&("potrf", 1)));
        assert!(h.contains(&("gemm", 2)));
        assert!(h.contains(&("trsm", 0)));
    }

    #[test]
    fn empty_trace_is_safe() {
        let r = TraceReport::new(Vec::new(), 0.0, 0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.busy_time(), 0.0);
        assert_eq!(r.imbalance(), 1.0);
    }

    #[test]
    fn critical_path_of_chain_is_sum_of_durations() {
        use crate::graph::TaskGraph;
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Generic(0), 0, &[]);
        let b = g.add(TaskKind::Generic(1), 0, &[a]);
        let c = g.add(TaskKind::Generic(2), 0, &[b]);
        let spans = vec![
            TaskSpan {
                task: a,
                kind: TaskKind::Generic(0),
                worker: 0,
                start: 0.0,
                end: 0.2,
            },
            TaskSpan {
                task: b,
                kind: TaskKind::Generic(1),
                worker: 0,
                start: 0.2,
                end: 0.5,
            },
            TaskSpan {
                task: c,
                kind: TaskKind::Generic(2),
                worker: 0,
                start: 0.5,
                end: 0.6,
            },
        ];
        let r = TraceReport::new(spans, 0.6, 1);
        assert!((r.critical_path_seconds(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn critical_path_of_fork_is_longest_branch() {
        use crate::graph::TaskGraph;
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Generic(0), 0, &[]);
        let b = g.add(TaskKind::Generic(1), 0, &[a]); // long branch
        let c = g.add(TaskKind::Generic(2), 0, &[a]); // short branch
        let d = g.add(TaskKind::Generic(3), 0, &[b, c]);
        let spans = vec![
            TaskSpan {
                task: a,
                kind: TaskKind::Generic(0),
                worker: 0,
                start: 0.0,
                end: 0.1,
            },
            TaskSpan {
                task: b,
                kind: TaskKind::Generic(1),
                worker: 0,
                start: 0.1,
                end: 0.6,
            },
            TaskSpan {
                task: c,
                kind: TaskKind::Generic(2),
                worker: 1,
                start: 0.1,
                end: 0.2,
            },
            TaskSpan {
                task: d,
                kind: TaskKind::Generic(3),
                worker: 1,
                start: 0.6,
                end: 0.7,
            },
        ];
        let r = TraceReport::new(spans, 0.7, 2);
        // 0.1 + 0.5 + 0.1 through the long branch.
        assert!((r.critical_path_seconds(&g) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn timeline_summary_reports_each_worker() {
        let spans = vec![span(0, 0.0, 0.5), span(1, 0.0, 1.0)];
        let r = TraceReport::new(spans, 1.0, 2);
        let tl = r.timeline_summary();
        assert_eq!(tl.len(), 2);
        assert!((tl[0].1 - 0.5).abs() < 1e-12);
        assert!((tl[0].2 - 50.0).abs() < 1e-9);
        assert!((tl[1].2 - 100.0).abs() < 1e-9);
    }
}
