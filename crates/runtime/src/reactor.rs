//! A dependency-free readiness reactor (unix).
//!
//! The serving layer's network front end historically pinned one OS
//! thread per connection — fine for tens of sockets, fatal for the
//! ROADMAP's mostly-idle keep-alive fleets. This module supplies the
//! missing primitive: a single-threaded event loop core that watches
//! many file descriptors at once and reports *readiness*, so one thread
//! can multiplex thousands of connection state machines.
//!
//! The container has no registry access, so — in the spirit of the raw
//! `mmap` FFI in `exaclim-store` — the reactor carries its own minimal
//! FFI surface instead of depending on `mio`:
//!
//! * on Linux, `epoll_create1`/`epoll_ctl`/`epoll_wait` (O(ready)
//!   scaling, optional edge-triggered mode),
//! * on every other unix, `poll(2)` over the registration table
//!   (O(registered) per call, level-triggered only),
//!
//! selected automatically by [`Reactor::new`] or pinned explicitly with
//! [`Reactor::with_backend`] (CI exercises the `poll` backend on Linux
//! this way). Both backends share one API:
//!
//! * **token-based registration** — [`Reactor::register`] associates a
//!   raw fd with a caller-chosen [`Token`]; [`Reactor::modify`] re-arms
//!   interest and [`Reactor::deregister`] removes it. The reactor never
//!   owns registered fds; callers close them after deregistering.
//! * **a deadline wheel** — [`Reactor::set_deadline`] attaches at most
//!   one [`std::time::Instant`] per token; [`Reactor::poll`] wakes no
//!   later than the nearest deadline and reports expired tokens **in
//!   deadline order**. This is how idle connections are reaped without a timer
//!   thread.
//! * **a wakeup fd** — [`Reactor::waker`] hands out a cheap, clonable
//!   [`Waker`] other threads use to nudge a parked [`Reactor::poll`]
//!   (completion queues, shutdown). The wake pipe is internal: it never
//!   appears among returned events.
//!
//! The escape hatch mirrors `EXACLIM_MMAP`: `EXACLIM_REACTOR=0` (see
//! [`reactor_enabled`]) tells reactor *consumers* — the serving layer's
//! `NetServer` — to fall back to their thread-backed path, for A/B
//! comparisons and CI coverage of the fallback. The reactor itself stays
//! usable either way.

/// True when this build target has a reactor backend at all (unix);
/// other targets always take the thread-backed fallback in reactor
/// consumers, whatever `EXACLIM_REACTOR` says.
pub const REACTOR_SUPPORTED: bool = cfg!(unix);

/// True unless `EXACLIM_REACTOR=0` opts out of the event-driven network
/// path (useful to force the thread-per-connection fallback for A/B
/// comparisons and CI coverage).
pub fn reactor_enabled() -> bool {
    reactor_flag(std::env::var_os("EXACLIM_REACTOR").as_deref())
}

/// Policy behind [`reactor_enabled`], split out for direct testing: only
/// the literal value `0` opts out.
fn reactor_flag(var: Option<&std::ffi::OsStr>) -> bool {
    var.is_none_or(|v| v != "0")
}

/// Caller-chosen identity of one registered file descriptor; returned in
/// every [`Event`] and expired-deadline report. `u64::MAX` is reserved
/// for the reactor's internal wake pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Readiness interest of one registration: which directions the caller
/// wants to hear about. Hangup and error conditions are always reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
    /// Neither direction — the fd stays registered (hangup/error still
    /// reported) but readiness is muted; used while a connection's
    /// request is executing (back-pressure).
    pub const NONE: Self = Self {
        readable: false,
        writable: false,
    };
}

/// Readiness delivery mode of one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Report readiness on every poll while the condition holds
    /// (`epoll` default; the only mode `poll(2)` has).
    Level,
    /// Report each readiness transition once (`EPOLLET`); the caller
    /// must drain to `WouldBlock`. On the `poll` backend this degrades
    /// to [`Mode::Level`] — correct for drain-to-`WouldBlock` callers,
    /// just chattier.
    Edge,
}

/// One readiness report from [`Reactor::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration this event belongs to.
    pub token: Token,
    /// The fd is readable (or at EOF — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up.
    pub hangup: bool,
    /// The fd is in an error state.
    pub error: bool,
}

#[cfg(unix)]
pub use unix::{Backend, Reactor, Waker};

#[cfg(unix)]
mod unix {
    use super::{Event, Interest, Mode, Token};
    use std::collections::{BTreeSet, HashMap};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Token value reserved for the internal wake pipe.
    const WAKE: u64 = u64::MAX;

    // Minimal FFI surface of the C library's readiness and pipe calls.
    // `std` links libc on every unix target, so no external crate is
    // needed. `fcntl` is genuinely variadic in C; declaring it so keeps
    // the ABI honest.
    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn fcntl(fd: i32, cmd: i32, ...) -> i32;
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    #[cfg(target_os = "linux")]
    type NfdsT = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = core::ffi::c_uint;

    const F_SETFD: i32 = 2;
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const FD_CLOEXEC: i32 = 1;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;
    const POLLNVAL: i16 = 0x20;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    /// Set `O_NONBLOCK` and `FD_CLOEXEC` on `fd`.
    fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
        // SAFETY: fcntl on an fd we own; F_GETFL takes no third argument.
        let flags = unsafe { fcntl(fd, F_GETFL) };
        if flags < 0 {
            return Err(last_err());
        }
        // SAFETY: setting status/descriptor flags on an fd we own.
        if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            return Err(last_err());
        }
        if unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) } < 0 {
            return Err(last_err());
        }
        Ok(())
    }

    /// Owned write end of the wake pipe, closed when the last [`Waker`]
    /// clone drops.
    struct WakeFd(RawFd);

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: closing the fd this value uniquely owns.
            unsafe { close(self.0) };
        }
    }

    /// A cheap, clonable, `Send + Sync` handle that nudges a parked
    /// [`Reactor::poll`] from any thread — the cross-thread half of the
    /// reactor's wakeup fd. Wakes coalesce: many [`Waker::wake`] calls
    /// between two polls cost one wakeup.
    #[derive(Clone)]
    pub struct Waker {
        fd: Arc<WakeFd>,
    }

    impl std::fmt::Debug for Waker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Waker").field("fd", &self.fd.0).finish()
        }
    }

    impl Waker {
        /// Wake the reactor if it is (or is about to be) parked in
        /// [`Reactor::poll`]. Never blocks: a full wake pipe already
        /// guarantees a pending wakeup, so `EAGAIN` is success.
        pub fn wake(&self) {
            let byte = 1u8;
            // SAFETY: writing one byte from a live stack buffer to a
            // nonblocking pipe fd kept open by the Arc.
            unsafe { write(self.fd.0, (&byte as *const u8).cast(), 1) };
        }
    }

    /// One registration: the fd plus its current interest and mode.
    struct Reg {
        fd: RawFd,
        interest: Interest,
        mode: Mode,
    }

    /// Which readiness syscall backs a [`Reactor`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Backend {
        /// `epoll` (Linux only): O(ready) waits, edge-triggered capable.
        Epoll,
        /// `poll(2)` (any unix): the pollfd array is rebuilt from the
        /// registration table each call — O(registered), level-only.
        Poll,
    }

    enum BackendImpl {
        #[cfg(target_os = "linux")]
        Epoll {
            epfd: RawFd,
            buf: Vec<epoll::EpollEvent>,
        },
        Poll,
    }

    #[cfg(target_os = "linux")]
    mod epoll {
        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
        }

        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLLET: u32 = 1 << 31;

        /// The kernel's `struct epoll_event`; packed on x86-64, where the
        /// ABI ships the u64 payload unaligned after the u32 mask.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }
    }

    /// The reactor: one readiness backend, a registration table, a
    /// deadline wheel, and a wake pipe. Single-owner by design — the
    /// event-loop thread holds it `&mut`; other threads reach it only
    /// through [`Waker`].
    pub struct Reactor {
        backend: BackendImpl,
        regs: HashMap<u64, Reg>,
        /// `(deadline, token)` pairs; `BTreeSet` iteration order *is*
        /// firing order.
        deadlines: BTreeSet<(Instant, u64)>,
        deadline_of: HashMap<u64, Instant>,
        wake_rx: RawFd,
        waker: Waker,
    }

    impl std::fmt::Debug for Reactor {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Reactor")
                .field("backend", &self.backend_name())
                .field("registered", &self.regs.len())
                .field("deadlines", &self.deadlines.len())
                .finish()
        }
    }

    impl Reactor {
        /// Open a reactor on the platform's best backend: `epoll` on
        /// Linux, `poll(2)` elsewhere.
        pub fn new() -> io::Result<Self> {
            #[cfg(target_os = "linux")]
            return Self::with_backend(Backend::Epoll);
            #[cfg(not(target_os = "linux"))]
            return Self::with_backend(Backend::Poll);
        }

        /// Open a reactor on an explicit backend. [`Backend::Epoll`] is
        /// `Unsupported` off Linux; [`Backend::Poll`] works on any unix
        /// (and is how CI covers the portable code path on Linux).
        pub fn with_backend(backend: Backend) -> io::Result<Self> {
            let backend = match backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll => {
                    // SAFETY: plain syscall; returns a fresh fd or -1.
                    let epfd = unsafe { epoll::epoll_create1(epoll::EPOLL_CLOEXEC) };
                    if epfd < 0 {
                        return Err(last_err());
                    }
                    BackendImpl::Epoll {
                        epfd,
                        buf: vec![epoll::EpollEvent { events: 0, data: 0 }; 256],
                    }
                }
                #[cfg(not(target_os = "linux"))]
                Backend::Epoll => {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll backend requires Linux",
                    ))
                }
                Backend::Poll => BackendImpl::Poll,
            };
            let mut fds = [-1i32; 2];
            // SAFETY: pipe(2) fills the two-element array we pass.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                let e = last_err();
                if let BackendImpl::Epoll { epfd, .. } = backend {
                    // SAFETY: closing the epoll fd created above.
                    unsafe { close(epfd) };
                }
                return Err(e);
            }
            let (rx, tx) = (fds[0], fds[1]);
            set_nonblocking_cloexec(rx)?;
            set_nonblocking_cloexec(tx)?;
            let reactor = Self {
                backend,
                regs: HashMap::new(),
                deadlines: BTreeSet::new(),
                deadline_of: HashMap::new(),
                wake_rx: rx,
                waker: Waker {
                    fd: Arc::new(WakeFd(tx)),
                },
            };
            // The wake pipe's read end lives in the epoll set for the
            // reactor's whole life; the poll backend adds it per call.
            #[cfg(target_os = "linux")]
            if let BackendImpl::Epoll { epfd, .. } = reactor.backend {
                reactor.epoll_ctl(epfd, epoll::EPOLL_CTL_ADD, rx, epoll::EPOLLIN, WAKE)?;
            }
            Ok(reactor)
        }

        /// The active backend's name (`"epoll"` or `"poll"`), for logs
        /// and bench artifacts.
        pub fn backend_name(&self) -> &'static str {
            match self.backend {
                #[cfg(target_os = "linux")]
                BackendImpl::Epoll { .. } => "epoll",
                BackendImpl::Poll => "poll",
            }
        }

        /// A clonable cross-thread wake handle for this reactor.
        pub fn waker(&self) -> Waker {
            self.waker.clone()
        }

        /// Number of live registrations (excluding the wake pipe).
        pub fn registered(&self) -> usize {
            self.regs.len()
        }

        #[cfg(target_os = "linux")]
        fn epoll_ctl(
            &self,
            epfd: RawFd,
            op: i32,
            fd: RawFd,
            events: u32,
            token: u64,
        ) -> io::Result<()> {
            let mut ev = epoll::EpollEvent {
                events,
                data: token,
            };
            // SAFETY: epfd is our live epoll fd, fd the caller's live fd,
            // and `ev` outlives the call.
            if unsafe { epoll::epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        #[cfg(target_os = "linux")]
        fn epoll_mask(interest: Interest, mode: Mode) -> u32 {
            let mut mask = 0u32;
            if interest.readable {
                mask |= epoll::EPOLLIN;
            }
            if interest.writable {
                mask |= epoll::EPOLLOUT;
            }
            if matches!(mode, Mode::Edge) {
                mask |= epoll::EPOLLET;
            }
            mask
        }

        /// Watch `fd` under `token`. The token must be unique among live
        /// registrations and not the reserved wake token; the fd stays
        /// owned by the caller (deregister before closing it).
        pub fn register(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            mode: Mode,
        ) -> io::Result<()> {
            if token.0 == WAKE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token u64::MAX is reserved for the reactor's wake pipe",
                ));
            }
            if self.regs.contains_key(&token.0) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("token {} is already registered", token.0),
                ));
            }
            #[cfg(target_os = "linux")]
            if let BackendImpl::Epoll { epfd, .. } = self.backend {
                self.epoll_ctl(
                    epfd,
                    epoll::EPOLL_CTL_ADD,
                    fd,
                    Self::epoll_mask(interest, mode),
                    token.0,
                )?;
            }
            self.regs.insert(token.0, Reg { fd, interest, mode });
            Ok(())
        }

        /// Replace the interest of a live registration (the delivery
        /// mode is fixed at registration).
        pub fn modify(&mut self, token: Token, interest: Interest) -> io::Result<()> {
            let reg = self.regs.get_mut(&token.0).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("token {} is not registered", token.0),
                )
            })?;
            reg.interest = interest;
            #[cfg(target_os = "linux")]
            {
                let (fd, mode) = (reg.fd, reg.mode);
                if let BackendImpl::Epoll { epfd, .. } = self.backend {
                    self.epoll_ctl(
                        epfd,
                        epoll::EPOLL_CTL_MOD,
                        fd,
                        Self::epoll_mask(interest, mode),
                        token.0,
                    )?;
                }
            }
            Ok(())
        }

        /// Remove a registration and any deadline attached to it. The
        /// caller closes the fd afterwards.
        pub fn deregister(&mut self, token: Token) -> io::Result<()> {
            let reg = self.regs.remove(&token.0).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("token {} is not registered", token.0),
                )
            })?;
            self.clear_deadline(token);
            #[cfg(target_os = "linux")]
            if let BackendImpl::Epoll { epfd, .. } = self.backend {
                self.epoll_ctl(epfd, epoll::EPOLL_CTL_DEL, reg.fd, 0, token.0)?;
            }
            let _ = reg;
            Ok(())
        }

        /// Arm (or re-arm) `token`'s deadline: [`Reactor::poll`] reports
        /// it among the expired once `at` passes. One deadline per token;
        /// setting again replaces the old one.
        pub fn set_deadline(&mut self, token: Token, at: Instant) {
            if let Some(old) = self.deadline_of.insert(token.0, at) {
                self.deadlines.remove(&(old, token.0));
            }
            self.deadlines.insert((at, token.0));
        }

        /// Disarm `token`'s deadline, if any.
        pub fn clear_deadline(&mut self, token: Token) {
            if let Some(old) = self.deadline_of.remove(&token.0) {
                self.deadlines.remove(&(old, token.0));
            }
        }

        /// The poll timeout in whole milliseconds (rounded up, so a
        /// deadline is never awaited short), bounded by the nearest
        /// deadline and the caller's `max_wait`; `-1` parks forever.
        fn timeout_ms(&self, now: Instant, max_wait: Option<Duration>) -> i32 {
            let until_deadline = self
                .deadlines
                .first()
                .map(|(at, _)| at.saturating_duration_since(now));
            let wait = match (until_deadline, max_wait) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return -1,
            };
            wait.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32
        }

        /// Wait for readiness, a deadline, a wakeup, or `max_wait`.
        ///
        /// `events` and `expired` are cleared and refilled (reuse them
        /// across calls to avoid reallocation); expired tokens arrive in
        /// deadline order and their deadlines are disarmed. Returns
        /// `true` when a [`Waker::wake`] nudge was consumed — wake
        /// events are internal and never appear in `events`.
        pub fn poll(
            &mut self,
            events: &mut Vec<Event>,
            expired: &mut Vec<Token>,
            max_wait: Option<Duration>,
        ) -> io::Result<bool> {
            events.clear();
            expired.clear();
            let timeout = self.timeout_ms(Instant::now(), max_wait);
            let mut woken = false;
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                BackendImpl::Epoll { epfd, buf } => {
                    // SAFETY: `buf` is a live, correctly-sized
                    // `epoll_event` array for the duration of the call.
                    let n = unsafe {
                        epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout)
                    };
                    if n < 0 {
                        let e = last_err();
                        if e.kind() == io::ErrorKind::Interrupted {
                            // Spurious: the caller's loop re-polls.
                            return Ok(false);
                        }
                        return Err(e);
                    }
                    for ev in buf.iter().take(n as usize) {
                        let (mask, data) = (ev.events, ev.data);
                        if data == WAKE {
                            woken = true;
                            continue;
                        }
                        events.push(Event {
                            token: Token(data),
                            readable: mask & epoll::EPOLLIN != 0,
                            writable: mask & epoll::EPOLLOUT != 0,
                            hangup: mask & epoll::EPOLLHUP != 0,
                            error: mask & epoll::EPOLLERR != 0,
                        });
                    }
                }
                BackendImpl::Poll => {
                    // Rebuild the pollfd array from the registration
                    // table: wake pipe first, then every armed fd.
                    let mut fds = Vec::with_capacity(self.regs.len() + 1);
                    let mut tokens = Vec::with_capacity(self.regs.len() + 1);
                    fds.push(PollFd {
                        fd: self.wake_rx,
                        events: POLLIN,
                        revents: 0,
                    });
                    tokens.push(WAKE);
                    for (&token, reg) in &self.regs {
                        let mut mask = 0i16;
                        if reg.interest.readable {
                            mask |= POLLIN;
                        }
                        if reg.interest.writable {
                            mask |= POLLOUT;
                        }
                        fds.push(PollFd {
                            fd: reg.fd,
                            events: mask,
                            revents: 0,
                        });
                        tokens.push(token);
                    }
                    // SAFETY: `fds` is a live pollfd array of the length
                    // we pass.
                    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout) };
                    if n < 0 {
                        let e = last_err();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(false);
                        }
                        return Err(e);
                    }
                    for (fd, &token) in fds.iter().zip(&tokens) {
                        if fd.revents == 0 {
                            continue;
                        }
                        if token == WAKE {
                            woken = true;
                            continue;
                        }
                        events.push(Event {
                            token: Token(token),
                            readable: fd.revents & POLLIN != 0,
                            writable: fd.revents & POLLOUT != 0,
                            hangup: fd.revents & POLLHUP != 0,
                            error: fd.revents & (POLLERR | POLLNVAL) != 0,
                        });
                    }
                }
            }
            if woken {
                self.drain_wake_pipe();
            }
            // Harvest expired deadlines in (instant, token) order.
            let now = Instant::now();
            while let Some(&(at, token)) = self.deadlines.first() {
                if at > now {
                    break;
                }
                self.deadlines.pop_first();
                self.deadline_of.remove(&token);
                expired.push(Token(token));
            }
            Ok(woken)
        }

        /// Consume every pending wake byte so coalesced nudges cost one
        /// wakeup and the (level-triggered) wake pipe goes quiet.
        fn drain_wake_pipe(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reading into a live stack buffer from our own
                // nonblocking pipe fd.
                let n = unsafe { read(self.wake_rx, buf.as_mut_ptr().cast(), buf.len()) };
                if n < buf.len() as isize {
                    break;
                }
            }
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            // SAFETY: closing fds this reactor uniquely owns; registered
            // fds belong to callers and are untouched.
            unsafe { close(self.wake_rx) };
            #[cfg(target_os = "linux")]
            if let BackendImpl::Epoll { epfd, .. } = self.backend {
                // SAFETY: as above.
                unsafe { close(epfd) };
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn backends() -> Vec<Backend> {
            if cfg!(target_os = "linux") {
                vec![Backend::Epoll, Backend::Poll]
            } else {
                vec![Backend::Poll]
            }
        }

        /// A nonblocking FFI pipe whose ends close on drop.
        struct TestPipe {
            rx: RawFd,
            tx: RawFd,
        }

        impl TestPipe {
            fn new() -> Self {
                let mut fds = [-1i32; 2];
                assert_eq!(unsafe { pipe(fds.as_mut_ptr()) }, 0);
                set_nonblocking_cloexec(fds[0]).unwrap();
                set_nonblocking_cloexec(fds[1]).unwrap();
                Self {
                    rx: fds[0],
                    tx: fds[1],
                }
            }
            fn write_byte(&self) {
                let b = 7u8;
                assert_eq!(unsafe { write(self.tx, (&b as *const u8).cast(), 1) }, 1);
            }
            fn read_all(&self) {
                let mut buf = [0u8; 64];
                while unsafe { read(self.rx, buf.as_mut_ptr().cast(), buf.len()) } > 0 {}
            }
        }

        impl Drop for TestPipe {
            fn drop(&mut self) {
                unsafe { close(self.rx) };
                unsafe { close(self.tx) };
            }
        }

        fn poll_once(r: &mut Reactor, wait_ms: u64) -> (Vec<Event>, Vec<Token>, bool) {
            let mut events = Vec::new();
            let mut expired = Vec::new();
            let woken = r
                .poll(
                    &mut events,
                    &mut expired,
                    Some(Duration::from_millis(wait_ms)),
                )
                .unwrap();
            (events, expired, woken)
        }

        #[test]
        fn register_deregister_lifecycle() {
            for backend in backends() {
                let mut r = Reactor::with_backend(backend).unwrap();
                let p = TestPipe::new();
                r.register(p.rx, Token(1), Interest::READABLE, Mode::Level)
                    .unwrap();
                assert_eq!(r.registered(), 1);

                // Quiet pipe: no events, just a timeout.
                let (events, expired, woken) = poll_once(&mut r, 10);
                assert!(events.is_empty() && expired.is_empty() && !woken);

                // A byte arrives: readable event under our token.
                p.write_byte();
                let (events, _, _) = poll_once(&mut r, 1000);
                assert_eq!(events.len(), 1);
                assert_eq!(events[0].token, Token(1));
                assert!(events[0].readable && !events[0].writable);

                // Duplicate and reserved tokens are rejected.
                assert!(r
                    .register(p.tx, Token(1), Interest::WRITABLE, Mode::Level)
                    .is_err());
                assert!(r
                    .register(p.tx, Token(u64::MAX), Interest::WRITABLE, Mode::Level)
                    .is_err());

                // Deregistered: the still-readable pipe no longer fires.
                r.deregister(Token(1)).unwrap();
                assert_eq!(r.registered(), 0);
                assert!(r.deregister(Token(1)).is_err());
                let (events, _, _) = poll_once(&mut r, 10);
                assert!(events.is_empty());
            }
        }

        #[test]
        fn modify_rearms_interest() {
            for backend in backends() {
                let mut r = Reactor::with_backend(backend).unwrap();
                let p = TestPipe::new();
                // An empty pipe's write end is immediately writable…
                r.register(p.tx, Token(3), Interest::WRITABLE, Mode::Level)
                    .unwrap();
                let (events, _, _) = poll_once(&mut r, 1000);
                assert_eq!(events.len(), 1);
                assert!(events[0].writable);
                // …until interest is muted…
                r.modify(Token(3), Interest::NONE).unwrap();
                let (events, _, _) = poll_once(&mut r, 10);
                assert!(events.is_empty());
                // …and again once re-armed.
                r.modify(Token(3), Interest::WRITABLE).unwrap();
                let (events, _, _) = poll_once(&mut r, 1000);
                assert_eq!(events.len(), 1);
                assert!(r.modify(Token(99), Interest::NONE).is_err());
            }
        }

        #[test]
        fn deadlines_fire_in_order() {
            for backend in backends() {
                let mut r = Reactor::with_backend(backend).unwrap();
                let now = Instant::now();
                r.set_deadline(Token(10), now + Duration::from_millis(30));
                r.set_deadline(Token(11), now + Duration::from_millis(1));
                r.set_deadline(Token(12), now + Duration::from_millis(15));
                // Re-arming replaces: token 10 moves earlier than 12.
                r.set_deadline(Token(10), now + Duration::from_millis(8));
                let mut fired = Vec::new();
                while fired.len() < 3 {
                    let (_, expired, _) = poll_once(&mut r, 500);
                    fired.extend(expired);
                }
                assert_eq!(fired, vec![Token(11), Token(10), Token(12)]);
                // All disarmed once fired; a cleared deadline never fires.
                r.set_deadline(Token(13), Instant::now());
                r.clear_deadline(Token(13));
                let (_, expired, _) = poll_once(&mut r, 10);
                assert!(expired.is_empty());
            }
        }

        #[test]
        fn waker_nudges_a_parked_poll_across_threads() {
            for backend in backends() {
                let mut r = Reactor::with_backend(backend).unwrap();
                let waker = r.waker();
                let t = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    waker.wake();
                    waker.wake(); // coalesces with the first
                });
                let started = Instant::now();
                let (events, expired, woken) = poll_once(&mut r, 5000);
                assert!(woken, "poll should report the wake nudge");
                assert!(events.is_empty() && expired.is_empty());
                assert!(started.elapsed() < Duration::from_secs(4));
                t.join().unwrap();
                // The second wake may land after the first poll's drain;
                // either way the pipe goes quiet within one more poll.
                let (_, _, again) = poll_once(&mut r, 10);
                if again {
                    let (_, _, woken) = poll_once(&mut r, 10);
                    assert!(!woken, "wake pipe should be drained");
                }
            }
        }

        #[cfg(target_os = "linux")]
        #[test]
        fn edge_mode_reports_each_transition_once() {
            let mut r = Reactor::with_backend(Backend::Epoll).unwrap();
            let p = TestPipe::new();
            r.register(p.rx, Token(5), Interest::READABLE, Mode::Edge)
                .unwrap();
            p.write_byte();
            let (events, _, _) = poll_once(&mut r, 1000);
            assert_eq!(events.len(), 1);
            // Not drained, but edge-triggered: no repeat report…
            let (events, _, _) = poll_once(&mut r, 20);
            assert!(events.is_empty());
            // …until the next transition.
            p.read_all();
            p.write_byte();
            let (events, _, _) = poll_once(&mut r, 1000);
            assert_eq!(events.len(), 1);
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn reactor_flag_parses() {
        assert!(reactor_flag(None));
        assert!(reactor_flag(Some(std::ffi::OsStr::new("1"))));
        assert!(reactor_flag(Some(std::ffi::OsStr::new(""))));
        assert!(!reactor_flag(Some(std::ffi::OsStr::new("0"))));
    }

    #[test]
    fn support_matches_target() {
        assert_eq!(REACTOR_SUPPORTED, cfg!(unix));
    }
}
