//! Deterministic fault injection: a seeded, dependency-free fault
//! registry the serving stack threads through its hot paths.
//!
//! Production resilience machinery (retries, load shedding, panic
//! containment) is unverifiable without a way to *cause* the failures it
//! is supposed to absorb. This module is that way, built like hardware
//! reliability campaigns qualify components: stress with a known,
//! reproducible schedule, then assert recovery.
//!
//! * **Zero-cost when disabled** — the fast path of [`check`] is one
//!   relaxed atomic load; no plan installed (and no `EXACLIM_FAULTS`)
//!   means hot loops pay a branch, nothing more.
//! * **Deterministic** — every potential injection point draws from a
//!   seeded counter-based hash (`hash(seed, site, rule, draw#)`), so a
//!   given plan injects the same faults at the same per-site draw
//!   numbers on every run, at any thread count. Thread interleaving can
//!   reorder *which operation* observes draw `n`, but never whether
//!   draw `n` faults.
//! * **Site-addressed** — callers name their injection points with
//!   stable strings (the serving layer uses `net.read`, `net.write`,
//!   `dispatch`, `decode`, `product`); plans attach [`FaultAction`]s to
//!   sites with a probability and an optional per-rule cap (`#max`),
//!   which is how a chaos test asks for "exactly one worker panic".
//!
//! Plans come from the [`EXACLIM_FAULTS`](FaultPlan::parse) environment
//! variable (read once, lazily, on the first [`check`]) or from the
//! programmatic [`install`] API; [`clear`] disarms everything, including
//! an env-installed plan.
//!
//! ```
//! use exaclim_runtime::faults::{self, FaultAction, FaultPlan};
//! use std::time::Duration;
//!
//! faults::install(
//!     FaultPlan::seeded(42)
//!         .rule("demo.op", FaultAction::Error, 1.0)
//!         .rule_max("demo.op", FaultAction::Panic, 1.0, 0),
//! );
//! // Probability 1 ⇒ the first rule fires on every draw; the second is
//! // capped at 0 injections and can never fire.
//! assert_eq!(faults::check("demo.op"), Some(FaultAction::Error));
//! assert_eq!(faults::check("elsewhere"), None);
//! assert!(faults::injected() >= 1);
//! faults::clear();
//! assert_eq!(faults::check("demo.op"), None);
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// What an injection point should do when its draw fires.
///
/// The *site* decides how to realize an action (a socket read realizes
/// [`FaultAction::Reset`] as `ECONNRESET`, a decode site realizes
/// [`FaultAction::Corrupt`] as a checksum failure); actions a site
/// cannot realize degrade to the nearest thing it can (usually a short
/// delay), so a plan written for one code path stays meaningful on
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long before the operation proceeds (queue jitter,
    /// slow-disk emulation).
    Delay(Duration),
    /// Sleep this long mid-operation — a stalled peer or a dribbling
    /// slowloris, distinct from [`FaultAction::Delay`] so plans can
    /// separate jitter from pathology.
    Stall(Duration),
    /// Deliver at most one byte this round (socket read sites): the
    /// short-read path every robust frame parser must survive.
    ShortRead,
    /// Interrupt the operation as `EINTR` would (retried by any
    /// conforming I/O loop).
    Interrupt,
    /// Fail the operation as if the peer reset the connection.
    Reset,
    /// Corrupt the operation's data; decode sites surface this as a
    /// checksum failure (retryable — a re-read re-decodes cleanly).
    Corrupt,
    /// Panic on the executing thread (dispatch sites): exercises panic
    /// containment.
    Panic,
    /// Fail the operation with an injected internal error.
    Error,
}

/// One site's rule: an action, a firing probability, and a cap on total
/// injections.
#[derive(Debug, Clone)]
struct FaultRule {
    action: FaultAction,
    /// Fire when the draw hash is ≤ this threshold
    /// (`probability × u64::MAX`).
    threshold: u64,
    /// Most injections this rule may ever perform (`u64::MAX` ⇒
    /// unlimited); `#max` in the env grammar.
    max: u64,
}

/// A seeded schedule of faults, ready to [`install`].
///
/// Build programmatically ([`FaultPlan::seeded`] + [`FaultPlan::rule`])
/// or parse from the `EXACLIM_FAULTS` grammar ([`FaultPlan::parse`]).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(String, FaultRule)>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Attach `action` to `site` with the given firing probability
    /// (clamped to `0.0..=1.0`), unlimited injections.
    pub fn rule(self, site: &str, action: FaultAction, probability: f64) -> Self {
        self.rule_max(site, action, probability, u64::MAX)
    }

    /// Like [`FaultPlan::rule`], but capped at `max` total injections —
    /// `max = 1` is how a plan asks for "exactly one worker panic".
    pub fn rule_max(mut self, site: &str, action: FaultAction, probability: f64, max: u64) -> Self {
        let p = probability.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        };
        self.rules.push((
            site.to_string(),
            FaultRule {
                action,
                threshold,
                max,
            },
        ));
        self
    }

    /// Whether the plan has any rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse the `EXACLIM_FAULTS` grammar:
    ///
    /// ```text
    /// seed=<u64>;<site>=<action>@<prob>[#<max>];…
    /// ```
    ///
    /// Actions: `delay:<ms>`, `stall:<ms>`, `short`, `eintr`, `reset`,
    /// `corrupt`, `panic`, `error`. `<prob>` is a float in `0..=1`;
    /// `#<max>` caps the rule's total injections. Example:
    ///
    /// ```
    /// use exaclim_runtime::faults::FaultPlan;
    /// let plan = FaultPlan::parse(
    ///     "seed=42;net.read=short@0.1;net.read=reset@0.02#3;dispatch=panic@1#1",
    /// )
    /// .unwrap();
    /// assert!(!plan.is_empty());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(0);
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault segment `{part}` is not `key=value`"))?;
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed `{value}`"))?;
                continue;
            }
            let (action_prob, max) = match value.split_once('#') {
                Some((ap, m)) => (
                    ap,
                    m.parse::<u64>()
                        .map_err(|_| format!("bad fault cap `{m}` in `{part}`"))?,
                ),
                None => (value, u64::MAX),
            };
            let (action_str, prob_str) = action_prob
                .split_once('@')
                .ok_or_else(|| format!("fault rule `{part}` is missing `@<prob>`"))?;
            let probability: f64 = prob_str
                .parse()
                .map_err(|_| format!("bad fault probability `{prob_str}` in `{part}`"))?;
            let action = parse_action(action_str)
                .ok_or_else(|| format!("unknown fault action `{action_str}` in `{part}`"))?;
            plan = plan.rule_max(key, action, probability, max);
        }
        Ok(plan)
    }
}

fn parse_action(s: &str) -> Option<FaultAction> {
    if let Some(ms) = s.strip_prefix("delay:") {
        return Some(FaultAction::Delay(Duration::from_millis(ms.parse().ok()?)));
    }
    if let Some(ms) = s.strip_prefix("stall:") {
        return Some(FaultAction::Stall(Duration::from_millis(ms.parse().ok()?)));
    }
    match s {
        "short" => Some(FaultAction::ShortRead),
        "eintr" => Some(FaultAction::Interrupt),
        "reset" => Some(FaultAction::Reset),
        "corrupt" => Some(FaultAction::Corrupt),
        "panic" => Some(FaultAction::Panic),
        "error" => Some(FaultAction::Error),
        _ => None,
    }
}

/// An installed plan: rules grouped by site, each site with its own
/// draw counter so the fault schedule is a pure function of
/// `(seed, site, draw#)`.
struct ActiveSite {
    name: String,
    draws: AtomicU64,
    rules: Vec<(FaultRule, AtomicU64)>,
}

struct ActivePlan {
    seed: u64,
    sites: Vec<ActiveSite>,
}

impl ActivePlan {
    fn new(plan: FaultPlan) -> Self {
        let mut sites: Vec<ActiveSite> = Vec::new();
        for (site, rule) in plan.rules {
            match sites.iter_mut().find(|s| s.name == site) {
                Some(s) => s.rules.push((rule, AtomicU64::new(0))),
                None => sites.push(ActiveSite {
                    name: site,
                    draws: AtomicU64::new(0),
                    rules: vec![(rule, AtomicU64::new(0))],
                }),
            }
        }
        Self {
            seed: plan.seed,
            sites,
        }
    }

    fn draw(&self, site: &str) -> Option<FaultAction> {
        let s = self.sites.iter().find(|s| s.name == site)?;
        let n = s.draws.fetch_add(1, Ordering::Relaxed);
        for (i, (rule, fired)) in s.rules.iter().enumerate() {
            if draw_hash(self.seed, &s.name, i as u64, n) > rule.threshold {
                continue;
            }
            // Capped rules claim a slot atomically, so `#1` means exactly
            // one injection even under concurrent draws.
            if fired.fetch_add(1, Ordering::Relaxed) >= rule.max {
                continue;
            }
            INJECTED.fetch_add(1, Ordering::Relaxed);
            return Some(rule.action);
        }
        None
    }
}

/// splitmix64 finalizer — the same mixer the ensemble seeds use.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name: stable across runs and platforms.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn draw_hash(seed: u64, site: &str, rule: u64, n: u64) -> u64 {
    mix(seed
        .wrapping_add(site_hash(site).rotate_left(17))
        .wrapping_add(rule.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(n.wrapping_mul(0xD1B5_4A32_D192_ED03)))
}

/// Fast-path gate: `false` ⇒ [`check`] returns `None` after one load.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Total faults injected since process start (all sites, all plans).
static INJECTED: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<Arc<ActivePlan>>> = Mutex::new(None);
/// `EXACLIM_FAULTS` is consulted exactly once, lazily; [`install`] and
/// [`clear`] consume the env decision first so they always win over it.
static ENV_INIT: Once = Once::new();

fn consume_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("EXACLIM_FAULTS") {
            if let Ok(plan) = FaultPlan::parse(&spec) {
                if !plan.is_empty() {
                    *PLAN.lock() = Some(Arc::new(ActivePlan::new(plan)));
                    ENABLED.store(true, Ordering::SeqCst);
                }
            }
        }
    });
}

/// Install `plan` process-wide, replacing any active plan (including one
/// installed from `EXACLIM_FAULTS`).
pub fn install(plan: FaultPlan) {
    consume_env();
    let empty = plan.is_empty();
    *PLAN.lock() = Some(Arc::new(ActivePlan::new(plan)));
    ENABLED.store(!empty, Ordering::SeqCst);
}

/// Disarm fault injection entirely — also overrides `EXACLIM_FAULTS`,
/// so a test can compute fault-free expected values even under a chaos
/// CI leg.
pub fn clear() {
    consume_env();
    *PLAN.lock() = None;
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether any fault plan is currently armed.
pub fn enabled() -> bool {
    consume_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Total faults injected since process start, across every site and
/// every plan. Chaos harnesses assert this moved.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// The injection point: returns the action to realize, or `None` (the
/// overwhelmingly common case). When no plan is armed this is one
/// relaxed atomic load — cheap enough for per-syscall call sites.
pub fn check(site: &str) -> Option<FaultAction> {
    consume_env();
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let plan = PLAN.lock().clone()?;
    plan.draw(site)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; tests that arm it serialize here.
    static FAULT_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_is_none_everywhere() {
        let _guard = FAULT_TEST_LOCK.lock();
        clear();
        assert!(!enabled());
        assert_eq!(check("net.read"), None);
    }

    #[test]
    fn probability_one_always_fires_and_caps_hold() {
        let _guard = FAULT_TEST_LOCK.lock();
        install(
            FaultPlan::seeded(7)
                .rule_max("a", FaultAction::Reset, 1.0, 3)
                .rule("a", FaultAction::Error, 1.0),
        );
        let before = injected();
        // First three draws hit the capped reset, the rest fall through
        // to the unlimited error rule.
        for i in 0..10 {
            let want = if i < 3 {
                FaultAction::Reset
            } else {
                FaultAction::Error
            };
            assert_eq!(check("a"), Some(want), "draw {i}");
        }
        assert_eq!(injected() - before, 10);
        assert_eq!(check("other.site"), None);
        clear();
    }

    #[test]
    fn same_seed_same_schedule() {
        let _guard = FAULT_TEST_LOCK.lock();
        let schedule = |seed: u64| -> Vec<bool> {
            install(FaultPlan::seeded(seed).rule("s", FaultAction::Error, 0.3));
            let fires: Vec<bool> = (0..64).map(|_| check("s").is_some()).collect();
            clear();
            fires
        };
        let a = schedule(123);
        let b = schedule(123);
        let c = schedule(124);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must diverge");
        let fired = a.iter().filter(|f| **f).count();
        assert!(
            (1..64).contains(&fired),
            "p=0.3 over 64 draws fired {fired} times"
        );
    }

    #[test]
    fn env_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "seed=42; net.read=short@0.1; net.read=reset@0.02#3; \
             dispatch=panic@1#1; decode=delay:2@0.2; net.write=stall:50@0.01; \
             decode=corrupt@0.05; net.read=eintr@0.1; product=error@0.3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 8);
        assert_eq!(
            plan.rules[4].1.action,
            FaultAction::Stall(Duration::from_millis(50))
        );
        assert_eq!(plan.rules[2].1.max, 1);

        assert!(FaultPlan::parse("net.read=banana@0.5").is_err());
        assert!(FaultPlan::parse("net.read=reset").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("justasite").is_err());
    }

    #[test]
    fn install_replaces_and_clear_disarms() {
        let _guard = FAULT_TEST_LOCK.lock();
        install(FaultPlan::seeded(1).rule("x", FaultAction::Panic, 1.0));
        assert_eq!(check("x"), Some(FaultAction::Panic));
        install(FaultPlan::seeded(1).rule("x", FaultAction::Corrupt, 1.0));
        assert_eq!(check("x"), Some(FaultAction::Corrupt));
        clear();
        assert_eq!(check("x"), None);
    }
}
