//! Task graphs: nodes, dependences, priorities, and the tile-Cholesky PTG.

/// Identifier of a task within one [`TaskGraph`].
pub type TaskId = usize;

/// The four kernel types of the Cholesky DAG plus a generic label for
/// user-built graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Diagonal factorization at panel `k`.
    Potrf {
        /// Panel index.
        k: usize,
    },
    /// Panel solve of tile `(i, k)`.
    Trsm {
        /// Row tile.
        i: usize,
        /// Panel index.
        k: usize,
    },
    /// Symmetric rank-k update of diagonal tile `(i, i)` by panel `k`.
    Syrk {
        /// Diagonal tile.
        i: usize,
        /// Panel index.
        k: usize,
    },
    /// Trailing update of tile `(i, j)` by panel `k`.
    Gemm {
        /// Row tile.
        i: usize,
        /// Column tile.
        j: usize,
        /// Panel index.
        k: usize,
    },
    /// Anything else.
    Generic(u64),
}

/// One node of the DAG.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// What the task is (for tracing and the executor callback).
    pub kind: TaskKind,
    /// Larger runs earlier under the priority scheduler.
    pub priority: i64,
    /// Tasks unblocked by this one.
    pub successors: Vec<TaskId>,
    /// Number of uncompleted predecessors.
    pub indegree: usize,
}

/// A static task DAG. Built once, executed by [`crate::executor::Executor`].
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with dependences on earlier tasks. Returns its id.
    pub fn add(&mut self, kind: TaskKind, priority: i64, deps: &[TaskId]) -> TaskId {
        let id = self.nodes.len();
        for &d in deps {
            assert!(d < id, "dependence on a later task ({d} >= {id})");
            self.nodes[d].successors.push(id);
        }
        self.nodes.push(TaskNode {
            kind,
            priority,
            successors: Vec::new(),
            indegree: deps.len(),
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: TaskId) -> &TaskNode {
        &self.nodes[id]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// Ids of tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].indegree == 0)
            .collect()
    }

    /// Length (in tasks) of the longest dependence chain — the abstract
    /// critical path.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut best = 0;
        for id in 0..self.nodes.len() {
            let d = depth[id] + 1;
            best = best.max(d);
            for &s in &self.nodes[id].successors {
                depth[s] = depth[s].max(d);
            }
        }
        best
    }

    /// Verify the graph is acyclic and indegrees are consistent (debug aid;
    /// `add` cannot create cycles because deps must precede).
    pub fn validate(&self) -> bool {
        let mut indeg = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for &s in &n.successors {
                indeg[s] += 1;
            }
        }
        indeg
            .iter()
            .zip(&self.nodes)
            .all(|(computed, node)| *computed == node.indegree)
    }
}

/// Build the right-looking tile-Cholesky DAG for `nt × nt` tiles — the
/// parametrized task graph PaRSEC expresses in its DSL (§II.D).
///
/// Dependences (data-flow on tile versions):
/// * `POTRF(k)` after the last update of tile `(k,k)`: `SYRK(k, k−1)`;
/// * `TRSM(i,k)` after `POTRF(k)` and the last update of `(i,k)`:
///   `GEMM(i,k,k−1)`;
/// * `SYRK(i,k)` after `TRSM(i,k)` and `SYRK(i,k−1)` (same-tile ordering);
/// * `GEMM(i,j,k)` after `TRSM(i,k)`, `TRSM(j,k)`, `GEMM(i,j,k−1)`.
///
/// Priorities follow the critical path: panel tasks of earlier `k` run
/// first, `POTRF > TRSM > SYRK > GEMM` within a panel.
pub fn cholesky_graph(nt: usize) -> TaskGraph {
    assert!(nt >= 1);
    let mut g = TaskGraph::new();
    // Task-id lookup tables.
    let mut potrf = vec![usize::MAX; nt];
    let mut trsm = vec![usize::MAX; nt * nt]; // (i, k)
    let mut syrk = vec![usize::MAX; nt * nt]; // (i, k)
    let mut gemm = vec![usize::MAX; nt * nt * nt]; // (i, j, k)
    let pr = |k: usize, boost: i64| -> i64 { ((nt - k) as i64) * 4 + boost };
    for k in 0..nt {
        let mut deps = Vec::new();
        if k > 0 {
            deps.push(syrk[k * nt + (k - 1)]);
        }
        potrf[k] = g.add(TaskKind::Potrf { k }, pr(k, 3), &deps);
        for i in k + 1..nt {
            let mut deps = vec![potrf[k]];
            if k > 0 {
                deps.push(gemm[(i * nt + k) * nt + (k - 1)]);
            }
            trsm[i * nt + k] = g.add(TaskKind::Trsm { i, k }, pr(k, 2), &deps);
        }
        for i in k + 1..nt {
            let mut deps = vec![trsm[i * nt + k]];
            if k > 0 {
                deps.push(syrk[i * nt + (k - 1)]);
            }
            syrk[i * nt + k] = g.add(TaskKind::Syrk { i, k }, pr(k, 1), &deps);
            for j in k + 1..i {
                let mut deps = vec![trsm[i * nt + k], trsm[j * nt + k]];
                if k > 0 {
                    deps.push(gemm[(i * nt + j) * nt + (k - 1)]);
                }
                gemm[(i * nt + j) * nt + k] = g.add(TaskKind::Gemm { i, j, k }, pr(k, 0), &deps);
            }
        }
    }
    g
}

/// Expected task count of [`cholesky_graph`]: `nt` POTRF,
/// `nt(nt−1)/2` TRSM + SYRK each, `nt(nt−1)(nt−2)/6` GEMM.
pub fn cholesky_task_count(nt: usize) -> usize {
    let gemms = if nt >= 3 {
        nt * (nt - 1) * (nt - 2) / 6
    } else {
        0
    };
    nt + nt * (nt - 1) + gemms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dependences() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Generic(0), 0, &[]);
        let b = g.add(TaskKind::Generic(1), 0, &[a]);
        let c = g.add(TaskKind::Generic(2), 0, &[a, b]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.node(c).indegree, 2);
        assert_eq!(g.node(a).successors, vec![b, c]);
        assert!(g.validate());
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    #[should_panic(expected = "later task")]
    fn forward_dependence_rejected() {
        let mut g = TaskGraph::new();
        let _ = g.add(TaskKind::Generic(0), 0, &[3]);
    }

    #[test]
    fn cholesky_graph_task_counts() {
        for nt in 1..=8 {
            let g = cholesky_graph(nt);
            assert_eq!(g.len(), cholesky_task_count(nt), "nt={nt}");
            assert!(g.validate(), "nt={nt}");
        }
    }

    #[test]
    fn cholesky_graph_has_single_root() {
        let g = cholesky_graph(6);
        let roots = g.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(g.node(roots[0]).kind, TaskKind::Potrf { k: 0 });
    }

    #[test]
    fn cholesky_critical_path_is_linear_in_nt() {
        // The critical path of tile Cholesky is Θ(nt): POTRF(k) → TRSM(k+1,k)
        // → SYRK(k+1,k) → POTRF(k+1) → … (3 tasks per panel).
        for nt in [2usize, 4, 8, 12] {
            let g = cholesky_graph(nt);
            let cp = g.critical_path_len();
            assert_eq!(cp, 3 * (nt - 1) + 1, "nt={nt}: cp={cp}");
        }
    }

    #[test]
    fn priorities_prefer_earlier_panels() {
        let g = cholesky_graph(6);
        let mut potrf0 = None;
        let mut gemm_late = None;
        for n in g.nodes() {
            match n.kind {
                TaskKind::Potrf { k: 0 } => potrf0 = Some(n.priority),
                TaskKind::Gemm { k: 3, .. } => gemm_late = Some(n.priority),
                _ => {}
            }
        }
        assert!(potrf0.unwrap() > gemm_late.unwrap());
    }
}
