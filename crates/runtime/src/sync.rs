//! Small synchronization primitives shared across the workspace.
//!
//! The worker pool in [`crate::pool`] bounds *compute* concurrency; this
//! module provides the complementary primitive for bounding *admission*
//! concurrency: a counting [`Semaphore`] with RAII permits. The serving
//! layer's network front end acquires one permit per accepted connection,
//! so a flood of clients queues at the accept loop instead of exhausting
//! threads — back-pressure at the door, not a crash in the house.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A counting semaphore handing out RAII [`Permit`]s.
///
/// Cloning the semaphore is cheap (it is an `Arc` internally) and every
/// clone shares the same permit pool.
///
/// ```
/// use exaclim_runtime::sync::Semaphore;
///
/// let sem = Semaphore::new(2);
/// let a = sem.acquire();
/// let b = sem.try_acquire().expect("one of two permits left");
/// assert!(sem.try_acquire().is_none(), "pool exhausted");
/// drop(a);
/// assert!(sem.try_acquire().is_some(), "permit returned on drop");
/// drop(b);
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<SemInner>,
}

struct SemInner {
    available: Mutex<usize>,
    cv: Condvar,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("available", &*self.inner.available.lock())
            .finish()
    }
}

impl Semaphore {
    /// A semaphore with `permits` permits (clamped to at least 1 — a
    /// zero-permit semaphore could never admit anyone).
    pub fn new(permits: usize) -> Self {
        Self {
            inner: Arc::new(SemInner {
                available: Mutex::new(permits.max(1)),
                cv: Condvar::new(),
            }),
        }
    }

    /// Block until a permit is available and take it.
    pub fn acquire(&self) -> Permit {
        let mut n = self.inner.available.lock();
        while *n == 0 {
            self.inner.cv.wait(&mut n);
        }
        *n -= 1;
        Permit {
            sem: Arc::clone(&self.inner),
        }
    }

    /// Take a permit if one is available right now.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut n = self.inner.available.lock();
        if *n == 0 {
            return None;
        }
        *n -= 1;
        Some(Permit {
            sem: Arc::clone(&self.inner),
        })
    }

    /// Permits currently available (racy by nature; diagnostics only).
    pub fn available(&self) -> usize {
        *self.inner.available.lock()
    }
}

/// An acquired permit; returns itself to the pool on drop.
pub struct Permit {
    sem: Arc<SemInner>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut n = self.sem.available.lock();
        *n += 1;
        drop(n);
        self.sem.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_bound_concurrency() {
        let sem = Semaphore::new(3);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let sem = &sem;
                let in_flight = &in_flight;
                let peak = &peak;
                scope.spawn(move || {
                    let _permit = sem.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "semaphore breached");
        assert_eq!(sem.available(), 3, "all permits returned");
    }

    #[test]
    fn try_acquire_never_blocks() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire();
        assert!(p.is_some());
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn zero_permit_request_clamps_to_one() {
        let sem = Semaphore::new(0);
        let p = sem.acquire();
        assert!(sem.try_acquire().is_none());
        drop(p);
    }

    #[test]
    fn clones_share_the_pool() {
        let a = Semaphore::new(1);
        let b = a.clone();
        let p = a.acquire();
        assert!(b.try_acquire().is_none());
        drop(p);
        assert!(b.try_acquire().is_some());
    }
}
