//! Multi-threaded DAG executor with pluggable scheduling policies.

use crate::graph::{TaskGraph, TaskId, TaskKind};
use crate::trace::{TaskSpan, TraceReport};
use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Scheduling policy of the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Per-worker LIFO deques with random stealing (data-locality-friendly,
    /// ignores priorities) — crossbeam's classic Chase–Lev setup.
    WorkStealing,
    /// Single global max-heap ordered by task priority — models PaRSEC's
    /// priority-aware scheduling that keeps the Cholesky critical path hot.
    PriorityHeap,
    /// Single global FIFO — the naive baseline.
    Fifo,
}

/// Error carried out of a failing task.
#[derive(Debug, Clone)]
pub struct ExecError {
    /// The task that failed first.
    pub task: TaskId,
    /// Its error message.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} failed: {}", self.task, self.message)
    }
}

impl std::error::Error for ExecError {}

/// A DAG executor over a fixed worker count.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    scheduler: SchedulerKind,
}

/// Shared queue behind the global-queue schedulers. Idle workers block in
/// [`GlobalQueue::pop`] on the condition variable — an idle executor burns
/// no CPU — and are released either by a push or by [`GlobalQueue::close`],
/// the shutdown broadcast issued once the run's last task has completed.
struct GlobalQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    queue: QueueImpl,
    closed: bool,
}

enum QueueImpl {
    Heap(BinaryHeap<(i64, usize)>),
    Fifo(VecDeque<usize>),
}

impl QueueImpl {
    fn take(&mut self) -> Option<usize> {
        match self {
            QueueImpl::Heap(h) => h.pop().map(|(_, id)| id),
            QueueImpl::Fifo(f) => f.pop_front(),
        }
    }
}

impl GlobalQueue {
    fn push(&self, prio: i64, id: usize) {
        let mut s = self.state.lock();
        match &mut s.queue {
            QueueImpl::Heap(h) => h.push((prio, id)),
            QueueImpl::Fifo(f) => f.push_back(id),
        }
        drop(s);
        self.cv.notify_one();
    }

    /// Block until a task is available (`Some`) or the queue has been
    /// closed and drained (`None`, the worker-exit signal).
    fn pop(&self) -> Option<usize> {
        let mut s = self.state.lock();
        loop {
            if let Some(id) = s.queue.take() {
                return Some(id);
            }
            if s.closed {
                return None;
            }
            self.cv.wait(&mut s);
        }
    }

    /// Shutdown broadcast: wake every blocked worker so it can observe the
    /// closed queue and exit. Idempotent.
    fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }
}

impl Executor {
    /// Build an executor with `workers ≥ 1` threads and a scheduler.
    pub fn new(workers: usize, scheduler: SchedulerKind) -> Self {
        assert!(workers >= 1);
        Self { workers, scheduler }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every task of `graph`, calling `f(task_id, kind)` when its
    /// dependences are met. Returns the execution trace, or the first error
    /// (remaining tasks are cancelled, not run).
    pub fn run<F>(&self, graph: &TaskGraph, f: F) -> Result<TraceReport, ExecError>
    where
        F: Fn(TaskId, &TaskKind) -> Result<(), String> + Sync,
    {
        let n = graph.len();
        if n == 0 {
            return Ok(TraceReport::new(Vec::new(), 0.0, self.workers));
        }
        let indegree: Vec<AtomicUsize> = graph
            .nodes()
            .iter()
            .map(|t| AtomicUsize::new(t.indegree))
            .collect();
        let remaining = AtomicUsize::new(n);
        let cancelled = AtomicBool::new(false);
        let error: Mutex<Option<ExecError>> = Mutex::new(None);
        let spans: Mutex<Vec<TaskSpan>> = Mutex::new(Vec::with_capacity(n));
        let spans_ref = &spans;
        let epoch = Instant::now();

        match self.scheduler {
            SchedulerKind::WorkStealing => {
                let injector = Injector::new();
                for r in graph.roots() {
                    injector.push(r);
                }
                let locals: Vec<Worker<usize>> =
                    (0..self.workers).map(|_| Worker::new_lifo()).collect();
                let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
                std::thread::scope(|scope| {
                    for (wid, local) in locals.into_iter().enumerate() {
                        let injector = &injector;
                        let stealers = &stealers;
                        let ctx = Ctx {
                            graph,
                            indegree: &indegree,
                            remaining: &remaining,
                            cancelled: &cancelled,
                            error: &error,
                            f: &f,
                            epoch,
                        };
                        scope.spawn(move || {
                            let mut local_spans = Vec::new();
                            // Misses since the last successful pop/steal;
                            // drives the idle back-off below.
                            let mut misses = 0u32;
                            loop {
                                if ctx.remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                let task = local.pop().or_else(|| {
                                    std::iter::repeat_with(|| {
                                        injector.steal_batch_and_pop(&local).or_else(|| {
                                            stealers
                                                .iter()
                                                .map(|s| s.steal())
                                                .collect::<Steal<usize>>()
                                        })
                                    })
                                    .find(|s| !s.is_retry())
                                    .and_then(|s| s.success())
                                });
                                match task {
                                    Some(id) => {
                                        misses = 0;
                                        ctx.execute(id, wid, &mut local_spans, |succ| {
                                            local.push(succ)
                                        });
                                    }
                                    None => {
                                        // Brief yields first (a ready task is
                                        // usually moments away), then sleep
                                        // with exponential back-off. The cap
                                        // stays low (320 µs): enough to stop
                                        // an idle worker burning its core,
                                        // small enough that a sleeper picks
                                        // up a fresh fan-out of ~1 ms tile
                                        // kernels without serializing them.
                                        misses += 1;
                                        if misses < 16 {
                                            std::thread::yield_now();
                                        } else {
                                            let exp = (misses - 16).min(4);
                                            std::thread::sleep(std::time::Duration::from_micros(
                                                20 << exp,
                                            ));
                                        }
                                    }
                                }
                            }
                            spans_ref.lock().extend(local_spans);
                        });
                    }
                });
            }
            SchedulerKind::PriorityHeap | SchedulerKind::Fifo => {
                let q = GlobalQueue {
                    state: Mutex::new(QueueState {
                        queue: match self.scheduler {
                            SchedulerKind::PriorityHeap => QueueImpl::Heap(BinaryHeap::new()),
                            _ => QueueImpl::Fifo(VecDeque::new()),
                        },
                        closed: false,
                    }),
                    cv: Condvar::new(),
                };
                for r in graph.roots() {
                    q.push(graph.node(r).priority, r);
                }
                std::thread::scope(|scope| {
                    for wid in 0..self.workers {
                        let q = &q;
                        let ctx = Ctx {
                            graph,
                            indegree: &indegree,
                            remaining: &remaining,
                            cancelled: &cancelled,
                            error: &error,
                            f: &f,
                            epoch,
                        };
                        scope.spawn(move || {
                            let mut local_spans = Vec::new();
                            // `pop` blocks on the queue's condvar; `None`
                            // means the queue was closed after the last task.
                            while let Some(id) = q.pop() {
                                ctx.execute(id, wid, &mut local_spans, |succ| {
                                    q.push(ctx.graph.node(succ).priority, succ)
                                });
                                if ctx.remaining.load(Ordering::Acquire) == 0 {
                                    q.close();
                                }
                            }
                            spans_ref.lock().extend(local_spans);
                        });
                    }
                });
            }
        }

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        let mut spans = spans.into_inner();
        spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        Ok(TraceReport::new(
            spans,
            epoch.elapsed().as_secs_f64(),
            self.workers,
        ))
    }
}

/// Shared per-run context captured by every worker.
struct Ctx<'a, F> {
    graph: &'a TaskGraph,
    indegree: &'a [AtomicUsize],
    remaining: &'a AtomicUsize,
    cancelled: &'a AtomicBool,
    error: &'a Mutex<Option<ExecError>>,
    f: &'a F,
    epoch: Instant,
}

impl<'a, F> Ctx<'a, F>
where
    F: Fn(TaskId, &TaskKind) -> Result<(), String> + Sync,
{
    /// Run one task (unless cancelled), record its span, and release its
    /// successors through `push_ready`.
    fn execute<P: FnMut(usize)>(
        &self,
        id: usize,
        worker: usize,
        local_spans: &mut Vec<TaskSpan>,
        mut push_ready: P,
    ) {
        let node = self.graph.node(id);
        if !self.cancelled.load(Ordering::Acquire) {
            let t0 = self.epoch.elapsed().as_secs_f64();
            // A panicking task must not tear down the whole scope: catch it
            // and report it like an `Err`, attributed to this task.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.f)(id, &node.kind)))
                    .unwrap_or_else(|payload| {
                        Err(format!(
                            "task panicked: {}",
                            panic_message(payload.as_ref())
                        ))
                    });
            match outcome {
                Ok(()) => {
                    let t1 = self.epoch.elapsed().as_secs_f64();
                    local_spans.push(TaskSpan {
                        task: id,
                        kind: node.kind,
                        worker,
                        start: t0,
                        end: t1,
                    });
                }
                Err(message) => {
                    self.cancelled.store(true, Ordering::Release);
                    let mut e = self.error.lock();
                    if e.is_none() {
                        *e = Some(ExecError { task: id, message });
                    }
                }
            }
        }
        // Propagate completion even when cancelled so all workers terminate.
        for &s in &node.successors {
            if self.indegree[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                push_ready(s);
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Best-effort human-readable text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{cholesky_graph, TaskGraph, TaskKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn all_schedulers() -> [SchedulerKind; 3] {
        [
            SchedulerKind::WorkStealing,
            SchedulerKind::PriorityHeap,
            SchedulerKind::Fifo,
        ]
    }

    #[test]
    fn runs_every_task_exactly_once() {
        for sched in all_schedulers() {
            let g = cholesky_graph(6);
            let count = AtomicUsize::new(0);
            let exec = Executor::new(4, sched);
            let trace = exec
                .run(&g, |_, _| {
                    count.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .unwrap();
            assert_eq!(count.load(Ordering::Relaxed), g.len(), "{sched:?}");
            assert_eq!(trace.spans.len(), g.len());
        }
    }

    #[test]
    fn respects_dependence_order() {
        for sched in all_schedulers() {
            let mut g = TaskGraph::new();
            let mut prev = g.add(TaskKind::Generic(0), 0, &[]);
            for i in 1..50u64 {
                prev = g.add(TaskKind::Generic(i), 0, &[prev]);
            }
            let next_expected = AtomicUsize::new(0);
            let exec = Executor::new(4, sched);
            exec.run(&g, |id, _| {
                let e = next_expected.fetch_add(1, Ordering::SeqCst);
                if e != id {
                    return Err(format!("expected {e}, ran {id}"));
                }
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{sched:?}: {e}"));
        }
    }

    #[test]
    fn diamond_dependences_block_join() {
        for sched in all_schedulers() {
            let mut g = TaskGraph::new();
            let a = g.add(TaskKind::Generic(0), 0, &[]);
            let b = g.add(TaskKind::Generic(1), 0, &[a]);
            let c = g.add(TaskKind::Generic(2), 0, &[a]);
            let d = g.add(TaskKind::Generic(3), 0, &[b, c]);
            let done = Mutex::new(Vec::new());
            Executor::new(3, sched)
                .run(&g, |id, _| {
                    done.lock().push(id);
                    Ok(())
                })
                .unwrap();
            let order = done.into_inner();
            let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
            assert!(pos(a) < pos(b) && pos(a) < pos(c));
            assert!(pos(d) > pos(b) && pos(d) > pos(c), "{sched:?}: {order:?}");
        }
    }

    #[test]
    fn error_cancels_remaining_work() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Generic(0), 0, &[]);
        let b = g.add(TaskKind::Generic(1), 0, &[a]);
        let _c = g.add(TaskKind::Generic(2), 0, &[b]);
        let ran = AtomicUsize::new(0);
        let err = Executor::new(2, SchedulerKind::PriorityHeap)
            .run(&g, |id, _| {
                if id == b {
                    return Err("boom".into());
                }
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.task, b);
        assert_eq!(err.message, "boom");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "c must not run");
    }

    #[test]
    fn parallel_speedup_on_wide_graph() {
        // 64 independent ~1 ms tasks: N workers must beat 1 worker by a
        // margin scaled to the parallelism actually available. Meaningless
        // on a single-core host (CI containers sometimes are), so skip
        // there instead of asserting.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping speedup assertion on {cores}-core host");
            return;
        }
        let _timing = crate::TIMING_TEST_LOCK.lock();
        let workers = cores.min(8);
        let mut g = TaskGraph::new();
        for i in 0..64u64 {
            g.add(TaskKind::Generic(i), 0, &[]);
        }
        let work = || {
            let t = std::time::Instant::now();
            while t.elapsed().as_micros() < 1000 {
                std::hint::spin_loop();
            }
        };
        let t1 = {
            let e = Executor::new(1, SchedulerKind::WorkStealing);
            let tr = e.run(&g, |_, _| {
                work();
                Ok(())
            });
            tr.unwrap().wall
        };
        let tn = {
            let e = Executor::new(workers, SchedulerKind::WorkStealing);
            let tr = e.run(&g, |_, _| {
                work();
                Ok(())
            });
            tr.unwrap().wall
        };
        // Expect at least ~30% parallel efficiency per extra worker — loose
        // enough for noisy shared CI hosts, tight enough to catch a
        // sequentialized executor.
        let min_speedup = 1.0 + 0.3 * (workers as f64 - 1.0);
        assert!(
            t1 / tn > min_speedup,
            "workers={workers}: t1={t1}, tn={tn}, want ≥ {min_speedup}×"
        );
    }

    #[test]
    fn panicking_task_becomes_error_with_attribution() {
        for sched in all_schedulers() {
            let mut g = TaskGraph::new();
            let a = g.add(TaskKind::Generic(0), 0, &[]);
            let b = g.add(TaskKind::Generic(1), 0, &[a]);
            let _c = g.add(TaskKind::Generic(2), 0, &[b]);
            let ran = AtomicUsize::new(0);
            let err = Executor::new(2, sched)
                .run(&g, |id, _| {
                    if id == b {
                        panic!("kernel blew up");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .unwrap_err();
            assert_eq!(err.task, b, "{sched:?}");
            assert!(
                err.message.contains("task panicked") && err.message.contains("kernel blew up"),
                "{sched:?}: {}",
                err.message
            );
            assert_eq!(ran.load(Ordering::Relaxed), 1, "{sched:?}: c must not run");
        }
    }

    #[test]
    fn global_queue_pop_blocks_until_push_or_close() {
        use std::sync::mpsc;
        use std::time::Duration;

        let q = std::sync::Arc::new(GlobalQueue {
            state: Mutex::new(QueueState {
                queue: QueueImpl::Fifo(VecDeque::new()),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        // Two waiters: one will receive the pushed task, the other the
        // shutdown broadcast. Neither may return while the queue is open
        // and empty (the old implementation returned `None` immediately,
        // which is what made workers spin).
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let q = std::sync::Arc::clone(&q);
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                tx.send(q.pop()).unwrap();
            }));
        }
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "pop returned on an open empty queue instead of blocking"
        );
        q.push(0, 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(7),
            "push must wake a blocked waiter"
        );
        q.close();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            None,
            "close must release the remaining waiter"
        );
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn empty_graph_completes() {
        for sched in all_schedulers() {
            let g = TaskGraph::new();
            let trace = Executor::new(4, sched).run(&g, |_, _| Ok(())).unwrap();
            assert!(trace.spans.is_empty(), "{sched:?}");
        }
    }

    #[test]
    fn priority_heap_prefers_high_priority_roots() {
        // Many roots with distinct priorities, one worker: execution order
        // must be non-increasing in priority.
        let mut g = TaskGraph::new();
        for i in 0..32u64 {
            g.add(TaskKind::Generic(i), (i as i64 * 37) % 101, &[]);
        }
        let order = Mutex::new(Vec::new());
        Executor::new(1, SchedulerKind::PriorityHeap)
            .run(&g, |id, _| {
                order.lock().push(id);
                Ok(())
            })
            .unwrap();
        let order = order.into_inner();
        let prios: Vec<i64> = order.iter().map(|&id| g.node(id).priority).collect();
        for w in prios.windows(2) {
            assert!(w[0] >= w[1], "priority inversion: {prios:?}");
        }
    }

    #[test]
    fn trace_spans_are_consistent() {
        let g = cholesky_graph(4);
        let trace = Executor::new(3, SchedulerKind::WorkStealing)
            .run(&g, |_, _| Ok(()))
            .unwrap();
        assert_eq!(trace.workers, 3);
        for s in &trace.spans {
            assert!(s.end >= s.start);
            assert!(s.worker < 3);
            assert!(s.end <= trace.wall + 1e-3);
        }
    }
}
