//! Streaming and batch summary statistics used by the consistency checks
//! that compare emulated fields against training simulations.

/// Numerically stable streaming mean/variance (Welford) with min/max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Feed a slice of observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Count of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum seen (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum seen (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Batch mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Batch sample variance (n-1 denominator).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample autocorrelation function up to `max_lag` (inclusive); `acf[0] = 1`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(max_lag < n, "lag {max_lag} needs more than {n} samples");
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    (0..=max_lag)
        .map(|lag| {
            let num: f64 = (0..n - lag).map(|t| (xs[t] - m) * (xs[t + lag] - m)).sum();
            num / denom
        })
        .collect()
}

/// Pearson correlation between two equal-length slices.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Quantile by linear interpolation on the sorted copy (`q ∈ [0,1]`).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = pos - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

/// Root-mean-square error between two slices.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

/// Maximum absolute difference between two slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, -3.0, 0.5];
        let mut o = OnlineStats::new();
        o.extend(&xs);
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(o.count(), xs.len() as u64);
        assert_eq!(o.min(), -3.0);
        assert_eq!(o.max(), 16.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(&xs);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.extend(&xs[..37]);
        b.extend(&xs[37..]);
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.mean(), a.variance(), a.count()));
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    /// Deterministic uniform noise in [0,1) from a 64-bit LCG (MMIX constants).
    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn acf_of_white_noise_decays() {
        let xs: Vec<f64> = lcg_noise(4000, 9).iter().map(|u| u - 0.5).collect();
        let r = acf(&xs, 5);
        assert!((r[0] - 1.0).abs() < 1e-12);
        for &rk in &r[1..] {
            assert!(rk.abs() < 0.06, "white-noise acf too large: {rk}");
        }
    }

    #[test]
    fn acf_of_ar1_matches_phi() {
        let phi = 0.8;
        let mut x = 0.0;
        let xs: Vec<f64> = lcg_noise(20000, 77)
            .iter()
            .map(|u| {
                x = phi * x + (u - 0.5);
                x
            })
            .collect();
        let r = acf(&xs, 3);
        assert!((r[1] - phi).abs() < 0.05, "lag-1 {}", r[1]);
        assert!((r[2] - phi * phi).abs() < 0.07, "lag-2 {}", r[2]);
    }

    #[test]
    fn correlation_limits() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_maxdiff() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 7.0];
        assert!((rmse(&a, &b) - (16.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs_diff(&a, &b), 4.0);
    }
}
