//! Double-precision complex arithmetic.
//!
//! A deliberately small, `Copy`, `#[repr(C)]` complex type. The FFT and the
//! spherical harmonic transform are the only heavy users; they need
//! multiply/add, conjugation, and `exp(iθ)` construction, all of which are
//! branch-free here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Create a complex number from its parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `exp(i * theta)` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// `i^k` for integer `k` (exact, no rounding).
    #[inline]
    pub fn i_pow(k: i64) -> Self {
        match k.rem_euclid(4) {
            0 => Self::new(1.0, 0.0),
            1 => Self::new(0.0, 1.0),
            2 => Self::new(-1.0, 0.0),
            _ => Self::new(0.0, -1.0),
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (uses `hypot` for robustness near over/underflow).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-add: `self * b + c` (not hardware-fused; a single
    /// expression the optimizer can vectorize).
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        Self {
            re: r * c,
            im: r * s,
        }
    }

    /// Square root on the principal branch.
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((m - self.re) * 0.5).max(0.0).sqrt();
        Self {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z · w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -4.0);
        let b = Complex64::new(-1.5, 2.25);
        assert_eq!(a + b - b, a);
        let p = a * b;
        assert!((p / b - a).abs() < EPS);
        assert_eq!(-(-a), a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!((a * a.conj()).re, 25.0);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(t);
            assert!((z.abs() - 1.0).abs() < EPS);
            assert!(
                (z.arg() - t).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
                    || (t - z.arg()).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
            );
        }
    }

    #[test]
    fn i_pow_cycles() {
        assert_eq!(Complex64::i_pow(0), Complex64::ONE);
        assert_eq!(Complex64::i_pow(1), Complex64::I);
        assert_eq!(Complex64::i_pow(2), Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::i_pow(3), Complex64::new(0.0, -1.0));
        assert_eq!(Complex64::i_pow(4), Complex64::ONE);
        assert_eq!(Complex64::i_pow(-1), Complex64::new(0.0, -1.0));
        assert_eq!(Complex64::i_pow(-2), Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        let e = z.exp();
        assert!((e.re + 1.0).abs() < EPS && e.im.abs() < EPS);
        let z = Complex64::new(1.0, 0.5);
        let e = z.exp();
        assert!((e.abs() - 1f64.exp()).abs() < 1e-10);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            let back = s * s;
            assert!((back - z).abs() < 1e-10, "sqrt({z:?})^2 = {back:?}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.25, -0.5);
        let b = Complex64::new(-2.0, 0.75);
        let c = Complex64::new(0.1, 0.2);
        assert_eq!(a.mul_add(b, c), a * b + c);
    }

    #[test]
    fn sum_folds() {
        let v = [Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let s: Complex64 = v.iter().copied().sum();
        assert_eq!(s, Complex64::new(2.0, 2.0));
    }
}
