//! Gauss–Legendre quadrature nodes and weights.
//!
//! The Gauss–Legendre grid is one of the two spherical grids supported by the
//! SHT crate: an `n`-point rule integrates polynomials of degree `2n-1`
//! exactly, which makes the forward transform exact for band-limited fields
//! with `n >= L` latitude rings.

/// Nodes and weights of an `n`-point Gauss–Legendre rule on `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    /// Quadrature nodes in ascending order, `x_k ∈ (-1, 1)`.
    pub nodes: Vec<f64>,
    /// Positive weights summing to 2.
    pub weights: Vec<f64>,
}

impl GaussLegendre {
    /// Compute the `n`-point rule with Newton iteration on Legendre `P_n`.
    ///
    /// Initial guesses use the Tricomi asymptotic for the roots of `P_n`;
    /// each root converges in 3–4 Newton steps to machine precision.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "Gauss-Legendre rule needs at least one node");
        let mut nodes = vec![0.0f64; n];
        let mut weights = vec![0.0f64; n];
        let m = n.div_ceil(2);
        for k in 0..m {
            // Tricomi initial guess for the (k+1)-th root counted from +1.
            let mut x = (std::f64::consts::PI * (k as f64 + 0.75) / (n as f64 + 0.5)).cos();
            for _ in 0..100 {
                let (p, d) = legendre_pn_and_deriv(n, x);
                let dx = p / d;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            // Final derivative evaluation at the converged root for the weight.
            let (_, dp) = legendre_pn_and_deriv(n, x);
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[n - 1 - k] = x;
            weights[n - 1 - k] = w;
            nodes[k] = -x;
            weights[k] = w;
        }
        if n % 2 == 1 {
            // Middle node is exactly zero by symmetry.
            let (_, d) = legendre_pn_and_deriv(n, 0.0);
            nodes[m - 1] = 0.0;
            weights[m - 1] = 2.0 / (d * d);
        }
        Self { nodes, weights }
    }

    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the rule is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrate `f` over `[-1, 1]`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Integrate `f` over an arbitrary interval `[a, b]` by affine mapping.
    pub fn integrate_on<F: FnMut(f64) -> f64>(&self, a: f64, b: f64, mut f: F) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        half * self.integrate(|x| f(mid + half * x))
    }
}

/// Evaluate `(P_n(x), P_n'(x))` with the standard three-term recurrence.
fn legendre_pn_and_deriv(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0f64;
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p1 = x;
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    let d = if (1.0 - x * x).abs() < 1e-300 {
        // Endpoint derivative of P_n: n(n+1)/2 * (±1)^{n+1}
        let s = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 + 1)
        };
        s * n as f64 * (n as f64 + 1.0) / 2.0
    } else {
        n as f64 * (x * p1 - p0) / (x * x - 1.0)
    };
    (p1, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1, 2, 3, 7, 16, 33, 64, 129] {
            let gl = GaussLegendre::new(n);
            let s: f64 = gl.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: sum={s}");
            assert!(gl.weights.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn nodes_sorted_and_symmetric() {
        let gl = GaussLegendre::new(20);
        for w in gl.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for k in 0..10 {
            assert!((gl.nodes[k] + gl.nodes[19 - k]).abs() < 1e-14);
            assert!((gl.weights[k] - gl.weights[19 - k]).abs() < 1e-14);
        }
    }

    #[test]
    fn exact_for_polynomials() {
        // n-point rule is exact for degree 2n-1.
        let gl = GaussLegendre::new(5);
        for deg in 0..=9usize {
            let got = gl.integrate(|x| x.powi(deg as i32));
            let expect = if deg % 2 == 0 {
                2.0 / (deg as f64 + 1.0)
            } else {
                0.0
            };
            assert!((got - expect).abs() < 1e-13, "deg {deg}: {got} vs {expect}");
        }
    }

    #[test]
    fn integrates_transcendental() {
        let gl = GaussLegendre::new(32);
        // ∫_{-1}^{1} e^x dx = e - 1/e
        let got = gl.integrate(f64::exp);
        let expect = 1f64.exp() - (-1f64).exp();
        assert!((got - expect).abs() < 1e-13);
        // ∫_0^π sin θ dθ = 2
        let got = gl.integrate_on(0.0, std::f64::consts::PI, f64::sin);
        assert!((got - 2.0).abs() < 1e-13);
    }

    #[test]
    fn known_two_point_rule() {
        let gl = GaussLegendre::new(2);
        let r = 1.0 / 3f64.sqrt();
        assert!((gl.nodes[0] + r).abs() < 1e-14);
        assert!((gl.nodes[1] - r).abs() < 1e-14);
        assert!((gl.weights[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn large_rule_converges() {
        // Sanity at a size typical of the SHT latitude count.
        let gl = GaussLegendre::new(721);
        let got = gl.integrate(|x| 1.0 / (1.0 + x * x));
        let expect = 2.0 * 1f64.atan();
        assert!((got - expect).abs() < 1e-12);
    }
}
