//! Special functions needed by the spherical-harmonic machinery.
//!
//! Log-gamma (Lanczos), exact small factorials, and numerically safe ratios
//! of factorials such as `sqrt((l-m)!/(l+m)!)` which underflow catastrophically
//! if evaluated naively at the band-limits used by the emulator (L ≈ 5,000).

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~1e-13 relative over the range used here (arguments up to
/// ~2·10⁴ from factorial ratios at L ≈ 10⁴).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for tiny arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` for non-negative `n`, exact table for `n <= 20`.
pub fn ln_factorial(n: u64) -> f64 {
    #[allow(clippy::approx_constant)] // ln(2!) happens to be ln 2
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.6931471805599453,
        1.791759469228055,
        3.1780538303479458,
        4.787491742782046,
        6.579251212010101,
        8.525161361065415,
        10.60460290274525,
        12.801827480081469,
        15.104412573075516,
        17.502307845873887,
        19.987214495661885,
        22.552163853123425,
        25.19122118273868,
        27.89927138384089,
        30.671860106080672,
        33.50507345013689,
        36.39544520803305,
        39.339884187199495,
        42.335616460753485,
    ];
    if n <= 20 {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Exact `n!` as f64 for `n <= 170` (beyond that f64 overflows).
pub fn factorial(n: u64) -> f64 {
    assert!(n <= 170, "factorial({n}) overflows f64");
    let mut acc = 1.0f64;
    for k in 2..=n {
        acc *= k as f64;
    }
    acc
}

/// `sqrt((l-m)! / (l+m)!)` computed in log space — the normalization factor
/// of associated Legendre functions. Stable for any `l` up to ~10⁶.
pub fn sqrt_factorial_ratio(l: u64, m: u64) -> f64 {
    assert!(m <= l);
    (0.5 * (ln_factorial(l - m) - ln_factorial(l + m))).exp()
}

/// Binomial coefficient `C(n, k)` as f64 via log-gamma (exact to f64 rounding
/// for moderate n).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
}

/// `(-1)^k` without a branch on float parity.
#[inline(always)]
pub fn neg_one_pow(k: i64) -> f64 {
    if k & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the complementary error function (Abramowitz &
/// Stegun 7.1.26-style rational approximation refined with one Newton step;
/// absolute error < 1e-12).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Complementary error function, |error| < 1.2e-7 (Numerical Recipes
/// Chebyshev fit) — ample for the tail-probability diagnostics it backs.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=20 {
            let lg = ln_gamma(n as f64 + 1.0);
            let lf = ln_factorial(n);
            assert!((lg - lf).abs() < 1e-10, "n={n}: {lg} vs {lf}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi)
        let g = ln_gamma(0.5);
        assert!((g - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Gamma(3/2) = sqrt(pi)/2
        let g = ln_gamma(1.5);
        assert!((g - (0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2)).abs() < 1e-12);
    }

    #[test]
    fn factorial_exact_small() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(10), 3_628_800.0);
    }

    #[test]
    fn sqrt_ratio_stable_at_large_l() {
        // For l = 5000, m = 50 the naive ratio underflows; log-space must not.
        let r = sqrt_factorial_ratio(5000, 50);
        assert!(r > 0.0 && r.is_finite());
        // Check against the product form for a modest case.
        let l = 30u64;
        let m = 7u64;
        let mut prod = 1.0f64;
        for k in (l - m + 1)..=(l + m) {
            prod *= k as f64;
        }
        let expect = (1.0 / prod).sqrt();
        let got = sqrt_factorial_ratio(l, m);
        assert!((got - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn binomial_rows() {
        assert_eq!(binomial(5, 0), 1.0);
        assert!((binomial(10, 5) - 252.0).abs() < 1e-9);
        assert_eq!(binomial(4, 7), 0.0);
    }

    #[test]
    fn neg_one_pow_parity() {
        assert_eq!(neg_one_pow(0), 1.0);
        assert_eq!(neg_one_pow(1), -1.0);
        assert_eq!(neg_one_pow(-3), -1.0);
        assert_eq!(neg_one_pow(8), 1.0);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        for &x in &[0.5, 1.0, 1.96, 3.0] {
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-9, "symmetry at {x}: {s}");
        }
        // Phi(1.96) ≈ 0.9750021
        assert!((normal_cdf(1.96) - 0.975_002_1).abs() < 1e-5);
        // Phi(1) ≈ 0.8413447
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
    }

    #[test]
    fn erfc_limits() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-15);
        assert!((erfc(-6.0) - 2.0).abs() < 1e-15);
    }
}
