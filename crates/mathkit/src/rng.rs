//! Random-variate generation built on the `rand` core traits.
//!
//! `rand_distr` is not on the sanctioned crate list, so the Gaussian sampler
//! (polar Box–Muller with a cached second variate) and the correlated
//! multivariate-normal sampler (lower-triangular factor times i.i.d. normals)
//! live here.

use rand::Rng;

/// Standard normal sampler using the polar (Marsaglia) Box–Muller method.
///
/// Each acceptance produces two independent N(0,1) variates; the second is
/// cached so the amortized cost is one log/sqrt per variate.
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    cache: Option<f64>,
}

impl StandardNormal {
    /// Create a sampler with an empty cache.
    pub fn new() -> Self {
        Self { cache: None }
    }

    /// Draw one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cache.take() {
            return v;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.cache = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill a slice with i.i.d. standard normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.sample(rng);
        }
    }

    /// Draw `n` variates into a fresh vector.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(rng, &mut v);
        v
    }
}

/// Sampler for `N(mean, Σ)` given a lower-triangular factor `V` with
/// `Σ = V Vᵀ` (e.g. a Cholesky factor), stored row-major packed.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    dim: usize,
    mean: Vec<f64>,
    /// Row-major lower-triangular factor, row `i` occupies `i+1` entries.
    factor_packed: Vec<f64>,
    normal: StandardNormal,
}

impl MultivariateNormal {
    /// Build from a dense row-major `dim × dim` lower-triangular factor;
    /// entries above the diagonal are ignored.
    pub fn from_lower_factor(mean: Vec<f64>, factor: &[f64], dim: usize) -> Self {
        assert_eq!(mean.len(), dim);
        assert_eq!(factor.len(), dim * dim);
        let mut packed = Vec::with_capacity(dim * (dim + 1) / 2);
        for i in 0..dim {
            packed.extend_from_slice(&factor[i * dim..i * dim + i + 1]);
        }
        Self {
            dim,
            mean,
            factor_packed: packed,
            normal: StandardNormal::new(),
        }
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one sample: `mean + V η`, `η ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        let eta = self.normal.sample_vec(rng, self.dim);
        let mut out = self.mean.clone();
        let mut row_start = 0usize;
        for i in 0..self.dim {
            let row = &self.factor_packed[row_start..row_start + i + 1];
            let mut acc = 0.0;
            for (l, e) in row.iter().zip(&eta[..=i]) {
                acc += l * e;
            }
            out[i] += acc;
            row_start += i + 1;
        }
        out
    }
}

/// Chi-squared-free sample-vs-theory check utility: returns `(mean, var)` of
/// a slice. Used in tests of the samplers and of emulated fields.
pub fn sample_moments(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sn = StandardNormal::new();
        let xs = sn.sample_vec(&mut rng, 200_000);
        let (m, v) = sample_moments(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
        // Skewness near zero, kurtosis near 3.
        let skew: f64 = xs.iter().map(|x| x.powi(3)).sum::<f64>() / xs.len() as f64;
        let kurt: f64 = xs.iter().map(|x| x.powi(4)).sum::<f64>() / xs.len() as f64;
        assert!(skew.abs() < 0.03, "skew {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurt {kurt}");
    }

    #[test]
    fn normal_tail_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sn = StandardNormal::new();
        let n = 100_000;
        let beyond = (0..n).filter(|_| sn.sample(&mut rng).abs() > 1.96).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "two-sided 5% tail: {frac}");
    }

    #[test]
    fn mvn_reproduces_covariance() {
        // Σ = V Vᵀ with V = [[2,0],[1,1]] → Σ = [[4,2],[2,2]].
        let factor = vec![2.0, 0.0, 1.0, 1.0];
        let mut mvn = MultivariateNormal::from_lower_factor(vec![10.0, -5.0], &factor, 2);
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let (mut s0, mut s1, mut s00, mut s11, mut s01) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = mvn.sample(&mut rng);
            s0 += x[0];
            s1 += x[1];
            s00 += x[0] * x[0];
            s11 += x[1] * x[1];
            s01 += x[0] * x[1];
        }
        let nf = n as f64;
        let (m0, m1) = (s0 / nf, s1 / nf);
        assert!((m0 - 10.0).abs() < 0.05, "m0={m0}");
        assert!((m1 + 5.0).abs() < 0.05, "m1={m1}");
        let c00 = s00 / nf - m0 * m0;
        let c11 = s11 / nf - m1 * m1;
        let c01 = s01 / nf - m0 * m1;
        assert!((c00 - 4.0).abs() < 0.1, "c00={c00}");
        assert!((c11 - 2.0).abs() < 0.06, "c11={c11}");
        assert!((c01 - 2.0).abs() < 0.07, "c01={c01}");
    }

    #[test]
    fn mvn_dim_one_degenerates_to_normal() {
        let mut mvn = MultivariateNormal::from_lower_factor(vec![0.0], &[3.0], 1);
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..50_000).map(|_| mvn.sample(&mut rng)[0]).collect();
        let (m, v) = sample_moments(&xs);
        assert!(m.abs() < 0.05);
        assert!((v - 9.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StandardNormal::new();
        let mut b = StandardNormal::new();
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }
}
