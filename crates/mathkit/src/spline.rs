//! Natural cubic spline interpolation.
//!
//! The paper up-samples the 0.25° ERA5 grid to band-limits 1,440 / 2,880 /
//! 5,219 by spline interpolation (§IV.A). This module provides the 1D
//! natural cubic spline used (separably) for that up-sampling.

/// A natural cubic spline through `(x_i, y_i)` with `y'' = 0` at both ends.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    y2: Vec<f64>,
}

impl CubicSpline {
    /// Fit a natural spline. `xs` must be strictly increasing and have the
    /// same length as `ys` (≥ 2 points).
    pub fn new(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(xs.len() >= 2, "spline needs at least two points");
        assert!(
            xs.windows(2).all(|w| w[0] < w[1]),
            "spline abscissae must be strictly increasing"
        );
        let n = xs.len();
        let mut y2 = vec![0.0f64; n];
        let mut u = vec![0.0f64; n];
        // Tridiagonal sweep (Thomas algorithm specialized to the natural BC).
        for i in 1..n - 1 {
            let sig = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1]);
            let p = sig * y2[i - 1] + 2.0;
            y2[i] = (sig - 1.0) / p;
            let d = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])
                - (ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]);
            u[i] = (6.0 * d / (xs[i + 1] - xs[i - 1]) - sig * u[i - 1]) / p;
        }
        y2[n - 1] = 0.0;
        for i in (0..n - 1).rev() {
            y2[i] = y2[i] * y2[i + 1] + u[i];
        }
        Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            y2,
        }
    }

    /// Fit over uniformly spaced abscissae `x_i = x0 + i*dx`.
    pub fn uniform(x0: f64, dx: f64, ys: &[f64]) -> Self {
        let xs: Vec<f64> = (0..ys.len()).map(|i| x0 + i as f64 * dx).collect();
        Self::new(&xs, ys)
    }

    /// Evaluate at `x`. Outside the knot range the spline extrapolates with
    /// the boundary cubic (clamped queries are the caller's business).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Binary search for the bracketing interval.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (hi + lo) / 2;
            if self.xs[mid] > x {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let h = self.xs[hi] - self.xs[lo];
        let a = (self.xs[hi] - x) / h;
        let b = (x - self.xs[lo]) / h;
        a * self.ys[lo]
            + b * self.ys[hi]
            + ((a * a * a - a) * self.y2[lo] + (b * b * b - b) * self.y2[hi]) * (h * h) / 6.0
    }

    /// Evaluate at many points.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True iff the spline has no knots (cannot occur after construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// Up-sample a periodic sequence (period = len·dx) by cubic spline, wrapping
/// three guard points on each side so the seam is smooth. Used for the
/// longitude direction of grid up-sampling.
pub fn upsample_periodic(ys: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor >= 1);
    assert!(ys.len() >= 4, "periodic upsampling needs >= 4 samples");
    if factor == 1 {
        return ys.to_vec();
    }
    let n = ys.len();
    const GUARD: usize = 3;
    let mut ext = Vec::with_capacity(n + 2 * GUARD);
    for i in 0..GUARD {
        ext.push(ys[n - GUARD + i]);
    }
    ext.extend_from_slice(ys);
    for item in ys.iter().take(GUARD) {
        ext.push(*item);
    }
    let sp = CubicSpline::uniform(-(GUARD as f64), 1.0, &ext);
    let m = n * factor;
    (0..m).map(|j| sp.eval(j as f64 / factor as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [0.0, 1.0, 2.5, 4.0, 5.0];
        let ys = [1.0, -2.0, 0.5, 3.0, 3.5];
        let sp = CubicSpline::new(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((sp.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn reproduces_linear_functions_exactly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let sp = CubicSpline::new(&xs, &ys);
        for k in 0..90 {
            let x = k as f64 * 0.1;
            assert!((sp.eval(x) - (3.0 * x - 2.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn smooth_function_accuracy_improves_with_density() {
        let f = |x: f64| (2.0 * x).sin() + 0.3 * x;
        let err = |n: usize| -> f64 {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 3.0).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
            let sp = CubicSpline::new(&xs, &ys);
            (0..300)
                .map(|k| {
                    let x = k as f64 / 299.0 * 3.0;
                    (sp.eval(x) - f(x)).abs()
                })
                .fold(0.0, f64::max)
        };
        let e1 = err(10);
        let e2 = err(40);
        // Natural spline interior error is O(h^4); x16 density -> huge drop.
        assert!(e2 < e1 / 20.0, "e1={e1}, e2={e2}");
    }

    #[test]
    fn uniform_matches_explicit() {
        let ys = [0.0, 1.0, 0.0, -1.0, 0.0];
        let a = CubicSpline::uniform(0.0, 0.5, &ys);
        let xs: Vec<f64> = (0..5).map(|i| i as f64 * 0.5).collect();
        let b = CubicSpline::new(&xs, &ys);
        for k in 0..=20 {
            let x = k as f64 * 0.1;
            assert!((a.eval(x) - b.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_upsample_preserves_samples() {
        let ys: Vec<f64> = (0..16)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin())
            .collect();
        let up = upsample_periodic(&ys, 4);
        assert_eq!(up.len(), 64);
        for i in 0..16 {
            assert!((up[4 * i] - ys[i]).abs() < 1e-10, "sample {i}");
        }
        // Interpolated values stay close to the underlying sine.
        for (j, item) in up.iter().enumerate() {
            let truth = (2.0 * std::f64::consts::PI * j as f64 / 64.0).sin();
            assert!((item - truth).abs() < 5e-3, "j={j}: {item} vs {truth}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        let _ = CubicSpline::new(&[0.0, 2.0, 1.0], &[0.0, 0.0, 0.0]);
    }
}
