//! # exaclim-mathkit
//!
//! Math substrate for the `exaclim` climate emulator: complex arithmetic,
//! special functions (log-gamma, factorial ratios), Gauss–Legendre
//! quadrature, natural cubic splines, random-variate generation, and
//! streaming summary statistics.
//!
//! Everything here is implemented from scratch so that the rest of the
//! workspace only needs the small set of sanctioned external crates.

pub mod complex;
pub mod quadrature;
pub mod rng;
pub mod special;
pub mod spline;
pub mod stats;

pub use complex::Complex64;
pub use quadrature::GaussLegendre;
pub use rng::{MultivariateNormal, StandardNormal};
pub use spline::CubicSpline;
pub use stats::{acf, mean, variance, OnlineStats};

/// Machine-independent comparison of floats with both absolute and relative
/// tolerance: `|a - b| <= atol + rtol * max(|a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Assert helper used across the workspace tests.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol): (f64, f64, f64) = ($a, $b, $tol);
        assert!(
            (a - b).abs() <= tol,
            "assert_close failed: {a} vs {b} (|diff| = {} > {tol})",
            (a - b).abs()
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 0.0, 1e-9));
    }
}
