//! Emulator configuration.

use exaclim_linalg::precision::PrecisionPolicy;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the climate emulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Spherical-harmonic band-limit `L` of the stochastic component.
    pub lmax: usize,
    /// Harmonic pairs `K` in the mean-trend model (paper: 5).
    pub k_harmonics: usize,
    /// Time steps per period `τ` (12 monthly / 365 daily / 8760 hourly).
    pub tau: usize,
    /// VAR order `P` (paper: 3).
    pub var_order: usize,
    /// Grid of candidate lag-decay values `ρ` for the trend profile fit.
    pub rho_grid: Vec<f64>,
    /// Precision policy for the covariance Cholesky.
    pub precision: PrecisionPolicy,
    /// Tile side of the covariance factorization (must divide `L²`).
    pub tile: usize,
    /// Worker threads for the task-parallel Cholesky.
    pub workers: usize,
}

impl EmulatorConfig {
    /// Small daily configuration for tests/examples at band-limit `lmax`.
    pub fn small(lmax: usize) -> Self {
        Self {
            lmax,
            k_harmonics: 3,
            tau: 365,
            var_order: 2,
            rho_grid: vec![0.0, 0.3, 0.6, 0.9],
            precision: PrecisionPolicy::dp(),
            tile: lmax, // L divides L²
            workers: 4,
        }
    }

    /// The paper's choices (`K = 5`, `P = 3`) at a given band-limit and
    /// temporal resolution.
    pub fn paper(lmax: usize, tau: usize) -> Self {
        Self {
            lmax,
            k_harmonics: 5,
            tau,
            var_order: 3,
            rho_grid: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            precision: PrecisionPolicy::dp_hp(),
            tile: lmax,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// Dimension of the coefficient space (`L²`).
    pub fn coeff_dim(&self) -> usize {
        self.lmax * self.lmax
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn check(&self) -> Result<(), String> {
        if self.lmax < 2 {
            return Err("band-limit must be at least 2".into());
        }
        if !self.coeff_dim().is_multiple_of(self.tile) {
            return Err(format!(
                "tile {} must divide L² = {}",
                self.tile,
                self.coeff_dim()
            ));
        }
        if self.var_order == 0 {
            return Err("VAR order must be positive".into());
        }
        if self.rho_grid.is_empty() {
            return Err("rho grid must be non-empty".into());
        }
        if self.rho_grid.iter().any(|r| !(0.0..1.0).contains(r)) {
            return Err("rho values must lie in [0, 1)".into());
        }
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        assert!(EmulatorConfig::small(8).check().is_ok());
        assert_eq!(EmulatorConfig::small(8).coeff_dim(), 64);
    }

    #[test]
    fn paper_config_matches_paper_constants() {
        let c = EmulatorConfig::paper(720, 8760);
        assert_eq!(c.k_harmonics, 5);
        assert_eq!(c.var_order, 3);
        assert_eq!(c.tau, 8760);
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_catches_bad_tile() {
        let mut c = EmulatorConfig::small(8);
        c.tile = 7;
        assert!(c.check().unwrap_err().contains("divide"));
    }

    #[test]
    fn check_catches_bad_rho() {
        let mut c = EmulatorConfig::small(8);
        c.rho_grid = vec![1.5];
        assert!(c.check().is_err());
    }

    #[test]
    fn config_serializes() {
        let c = EmulatorConfig::small(8);
        let json = serde_json::to_string(&c).unwrap();
        let back: EmulatorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lmax, 8);
        assert_eq!(back.rho_grid, c.rho_grid);
    }
}
