//! Training and emulation: the end-to-end pipeline of Figure 3.

use crate::config::EmulatorConfig;
use exaclim_climate::generator::Dataset;
use exaclim_linalg::tiled::TiledMatrix;
use exaclim_mathkit::rng::StandardNormal;
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use exaclim_sht::{analysis_batch, synthesis_batch, HarmonicCoeffs, ShtPlan};
use exaclim_stats::covariance::{empirical_covariance, ensure_spd};
use exaclim_stats::emulate::CoefficientSampler;
use exaclim_stats::forcing::ForcingSeries;
use exaclim_stats::trend::{fit_grid, TrendConfig, TrendModel};
use exaclim_stats::var::{fit_diagonal_var, DiagonalVar};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Errors surfaced by training or emulation.
#[derive(Debug, Clone)]
pub enum EmulationError {
    /// Invalid configuration.
    Config(String),
    /// The training data does not match the configuration.
    Data(String),
    /// The covariance factorization failed.
    Factorization(String),
}

impl std::fmt::Display for EmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulationError::Config(m) => write!(f, "configuration error: {m}"),
            EmulationError::Data(m) => write!(f, "data error: {m}"),
            EmulationError::Factorization(m) => write!(f, "factorization error: {m}"),
        }
    }
}

impl std::error::Error for EmulationError {}

/// Entry point for training.
pub struct ClimateEmulator;

/// Grid-vs-config compatibility checks shared by the training entry points.
fn check_geometry(data: &Dataset, config: &EmulatorConfig) -> Result<(), EmulationError> {
    if data.ntheta <= config.lmax {
        return Err(EmulationError::Data(format!(
            "grid has {} rings; Wigner SHT needs Nθ > L = {}",
            data.ntheta, config.lmax
        )));
    }
    if data.nphi < 2 * config.lmax - 1 {
        return Err(EmulationError::Data(format!(
            "grid has {} longitudes; need ≥ 2L−1 = {}",
            data.nphi,
            2 * config.lmax - 1
        )));
    }
    if data.t_max <= config.var_order + 2 {
        return Err(EmulationError::Data("too few time steps".into()));
    }
    Ok(())
}

/// A trained emulator: everything needed to generate emulations, and
/// everything that gets *stored* instead of the raw simulation archive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedEmulator {
    /// Hyper-parameters used at training time.
    pub config: EmulatorConfig,
    /// Grid rows of the training data.
    pub ntheta: usize,
    /// Grid columns.
    pub nphi: usize,
    /// Calendar year of step 0.
    pub start_year: i64,
    /// Per-location trend models (β, ρ, harmonics, σ) — eq. (2).
    pub trend: Vec<TrendModel>,
    /// Diagonal VAR(P) on coefficient channels.
    pub var: DiagonalVar,
    /// Dense lower Cholesky factor `V` of the innovation covariance `Û`.
    pub factor: Vec<f64>,
    /// Per-location truncation-residual variance `v²` (the `ε` nugget).
    pub v2: Vec<f64>,
    /// Radiative forcing used by the trend (stored for emulation).
    pub forcing: ForcingSeries,
    /// Diagonal jitter added to make `Û` positive definite (paper §III.A.3).
    pub jitter: f64,
}

impl ClimateEmulator {
    /// Fit the emulator on an ensemble of simulations (`R ≥ 1` members
    /// sharing geometry and period). `m_t`, `σ`, and `Φ_p` are shared
    /// across members; the innovation covariance averages over all
    /// `R(T−P)` innovation vectors — exactly eq. (9).
    pub fn train_ensemble(
        members: &[&Dataset],
        config: EmulatorConfig,
    ) -> Result<TrainedEmulator, EmulationError> {
        config.check().map_err(EmulationError::Config)?;
        let first = *members
            .first()
            .ok_or_else(|| EmulationError::Data("need at least one member".into()))?;
        for m in members {
            if (m.ntheta, m.nphi, m.t_max, m.tau, m.start_year)
                != (
                    first.ntheta,
                    first.nphi,
                    first.t_max,
                    first.tau,
                    first.start_year,
                )
            {
                return Err(EmulationError::Data(
                    "ensemble members must share geometry and period".into(),
                ));
            }
        }
        check_geometry(first, &config)?;
        let npoints = first.npoints;
        let t_max = first.t_max;
        let r_members = members.len();

        // Stage 1: trend. With an identical design matrix across members,
        // stacked OLS equals OLS on the ensemble-mean series; σ is then
        // re-estimated from the pooled residuals of all members.
        let mean_data: Vec<f64> = if r_members == 1 {
            first.data.clone()
        } else {
            let mut acc = vec![0.0f64; t_max * npoints];
            for m in members {
                for (a, v) in acc.iter_mut().zip(&m.data) {
                    *a += v;
                }
            }
            let inv = 1.0 / r_members as f64;
            acc.iter_mut().for_each(|a| *a *= inv);
            acc
        };
        let years = (t_max / first.tau + 2) as i64;
        let forcing =
            ForcingSeries::historical_like(first.start_year, first.start_year + years, 30);
        let trend_cfg = TrendConfig {
            k_harmonics: config.k_harmonics,
            tau: first.tau,
            rho_grid: config.rho_grid.clone(),
            start_year: first.start_year,
        };
        let fit = fit_grid(&mean_data, t_max, npoints, &trend_cfg, &forcing);
        let mut models = fit.models;
        let means: Vec<Vec<f64>> = models
            .par_iter()
            .map(|m| m.mean_series(&trend_cfg, &forcing, t_max))
            .collect();
        // Pooled σ per location.
        let mut sig2 = vec![0.0f64; npoints];
        for m in members {
            for t in 0..t_max {
                let row = &m.data[t * npoints..(t + 1) * npoints];
                for (p, (v, s)) in row.iter().zip(sig2.iter_mut()).enumerate() {
                    let d = v - means[p][t];
                    *s += d * d;
                }
            }
        }
        let denom = (r_members * t_max) as f64;
        for (model, s) in models.iter_mut().zip(&sig2) {
            model.sigma = (s / denom).sqrt().max(1e-12);
        }

        // Stage 2: SHT of each member's standardized residuals.
        let plan = ShtPlan::equiangular(config.lmax, first.ntheta, first.nphi);
        let mut all_series: Vec<Vec<Vec<f64>>> = Vec::with_capacity(r_members);
        let mut v2 = vec![0.0f64; npoints];
        for m in members {
            let mut residuals = vec![0.0f64; t_max * npoints];
            residuals
                .par_chunks_mut(npoints)
                .enumerate()
                .for_each(|(t, row)| {
                    for (p, r) in row.iter_mut().enumerate() {
                        *r = (m.data[t * npoints + p] - means[p][t]) / models[p].sigma;
                    }
                });
            let coeff_sets = analysis_batch(&plan, &residuals, t_max);
            let recon = synthesis_batch(&plan, &coeff_sets);
            for t in 0..t_max {
                for p in 0..npoints {
                    let d = residuals[t * npoints + p] - recon[t * npoints + p];
                    v2[p] += d * d;
                }
            }
            all_series.push(
                coeff_sets
                    .par_iter()
                    .map(HarmonicCoeffs::to_real_vector)
                    .collect(),
            );
        }
        for v in v2.iter_mut() {
            *v /= denom;
        }

        // Stage 3: shared VAR(P) over all members.
        let refs: Vec<&[Vec<f64>]> = all_series.iter().map(|s| s.as_slice()).collect();
        let var = exaclim_stats::var::fit_diagonal_var_multi(&refs, config.var_order);

        // Stage 4: eq. (9) — pool every member's innovations.
        let mut xi_all = Vec::new();
        for s in &all_series {
            xi_all.extend(var.innovations(s));
        }
        let mut u = empirical_covariance(&xi_all);
        let jitter = ensure_spd(&mut u);
        let dim = config.coeff_dim();
        let mut tiled = TiledMatrix::from_dense(u.as_slice(), dim, config.tile, &config.precision);
        parallel_tile_cholesky(&mut tiled, config.workers, SchedulerKind::PriorityHeap)
            .map_err(|e| EmulationError::Factorization(e.to_string()))?;
        let factor = tiled.to_dense_lower();

        Ok(TrainedEmulator {
            config,
            ntheta: first.ntheta,
            nphi: first.nphi,
            start_year: first.start_year,
            trend: models,
            var,
            factor,
            v2,
            forcing,
            jitter,
        })
    }

    /// Fit the full emulator on a training dataset.
    pub fn train(
        data: &Dataset,
        config: EmulatorConfig,
    ) -> Result<TrainedEmulator, EmulationError> {
        config.check().map_err(EmulationError::Config)?;
        let npoints = data.npoints;
        check_geometry(data, &config)?;

        // Stage 1: mean trend + scale, standardized residuals.
        let years = (data.t_max / data.tau + 2) as i64;
        let forcing = ForcingSeries::historical_like(data.start_year, data.start_year + years, 30);
        let trend_cfg = TrendConfig {
            k_harmonics: config.k_harmonics,
            tau: data.tau,
            rho_grid: config.rho_grid.clone(),
            start_year: data.start_year,
        };
        let fit = fit_grid(&data.data, data.t_max, npoints, &trend_cfg, &forcing);

        // Stage 2: forward SHT of every residual slice.
        let plan = ShtPlan::equiangular(config.lmax, data.ntheta, data.nphi);
        let coeff_sets = analysis_batch(&plan, &fit.residuals, data.t_max);
        let series: Vec<Vec<f64>> = coeff_sets
            .par_iter()
            .map(HarmonicCoeffs::to_real_vector)
            .collect();

        // Truncation residual variance v² per location.
        let recon = synthesis_batch(&plan, &coeff_sets);
        let mut v2 = vec![0.0f64; npoints];
        for t in 0..data.t_max {
            let z = &fit.residuals[t * npoints..(t + 1) * npoints];
            let r = &recon[t * npoints..(t + 1) * npoints];
            for p in 0..npoints {
                let d = z[p] - r[p];
                v2[p] += d * d;
            }
        }
        for v in v2.iter_mut() {
            *v /= data.t_max as f64;
        }

        // Stage 3: temporal model.
        let var = fit_diagonal_var(&series, config.var_order);
        let xi = var.innovations(&series);

        // Stage 4: innovation covariance + mixed-precision Cholesky.
        let mut u = empirical_covariance(&xi);
        let jitter = ensure_spd(&mut u);
        let dim = config.coeff_dim();
        let mut tiled = TiledMatrix::from_dense(u.as_slice(), dim, config.tile, &config.precision);
        parallel_tile_cholesky(&mut tiled, config.workers, SchedulerKind::PriorityHeap)
            .map_err(|e| EmulationError::Factorization(e.to_string()))?;
        let factor = tiled.to_dense_lower();

        Ok(TrainedEmulator {
            config,
            ntheta: data.ntheta,
            nphi: data.nphi,
            start_year: data.start_year,
            trend: fit.models,
            var,
            factor,
            v2,
            forcing,
            jitter,
        })
    }
}

impl TrainedEmulator {
    /// Grid points per field.
    pub fn npoints(&self) -> usize {
        self.ntheta * self.nphi
    }

    /// Generate one emulation of `t_max` steps (paper §III.B).
    pub fn emulate(&self, t_max: usize, seed: u64) -> Result<Dataset, EmulationError> {
        if t_max == 0 {
            return Err(EmulationError::Data("t_max must be positive".into()));
        }
        let cfg = &self.config;
        let dim = cfg.coeff_dim();
        let plan = ShtPlan::equiangular(cfg.lmax, self.ntheta, self.nphi);
        let npoints = self.npoints();

        // Coefficient paths: ξ = Vη through the VAR recursion.
        let sampler = CoefficientSampler::new(self.var.clone(), self.factor.clone(), dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = sampler.sample_path(t_max, &mut rng);

        // Inverse SHT of every slice.
        let coeff_sets: Vec<HarmonicCoeffs> = path
            .par_iter()
            .map(|f| HarmonicCoeffs::from_real_vector(cfg.lmax, f))
            .collect();
        let z = synthesis_batch(&plan, &coeff_sets);

        // Mean series per location.
        let trend_cfg = TrendConfig {
            k_harmonics: cfg.k_harmonics,
            tau: cfg.tau,
            rho_grid: cfg.rho_grid.clone(),
            start_year: self.start_year,
        };
        let means: Vec<Vec<f64>> = self
            .trend
            .par_iter()
            .map(|m| m.mean_series(&trend_cfg, &self.forcing, t_max))
            .collect();

        // Assemble y = m + σ (Z̃ + ε).
        let mut sn = StandardNormal::new();
        let mut data = vec![0.0f64; t_max * npoints];
        for t in 0..t_max {
            let zrow = &z[t * npoints..(t + 1) * npoints];
            let row = &mut data[t * npoints..(t + 1) * npoints];
            for p in 0..npoints {
                let eps = sn.sample(&mut rng) * self.v2[p].sqrt();
                row[p] = means[p][t] + self.trend[p].sigma * (zrow[p] + eps);
            }
        }
        Ok(Dataset {
            data,
            t_max,
            npoints,
            ntheta: self.ntheta,
            nphi: self.nphi,
            start_year: self.start_year,
            tau: cfg.tau,
        })
    }

    /// Bytes this trained model occupies when serialized as raw f64
    /// parameters (the "emulator side" of the storage-savings ledger).
    pub fn parameter_bytes(&self) -> usize {
        let trend = self.npoints() * (6 + 2 * self.config.k_harmonics);
        let var = self.var.dim() * self.config.var_order;
        let factor = self.factor.len();
        let v2 = self.v2.len();
        (trend + var + factor + v2) * 8
    }

    /// Storage model comparing an `ensemble_size × t_max` archive at this
    /// grid against this emulator.
    pub fn storage_model(&self, ensemble_size: u64, t_max: u64) -> exaclim_climate::StorageModel {
        exaclim_climate::StorageModel {
            ensemble_size,
            t_max,
            npoints: self.npoints() as u64,
            lmax: self.config.lmax as u64,
            k_harmonics: self.config.k_harmonics as u64,
            var_order: self.config.var_order as u64,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained emulator serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, EmulationError> {
        serde_json::from_str(s).map_err(|e| EmulationError::Data(e.to_string()))
    }

    /// Member name of the emulator snapshot inside an ECA1 archive.
    pub const SNAPSHOT_MEMBER: &'static str = "trained_emulator";
    /// Schema version written by [`TrainedEmulator::save`]. Bump on any
    /// incompatible change to the serialized model.
    pub const SNAPSHOT_VERSION: u32 = 1;

    /// Package this model as an ECA1 snapshot (member
    /// [`TrainedEmulator::SNAPSHOT_MEMBER`], schema
    /// [`TrainedEmulator::SNAPSHOT_VERSION`]).
    ///
    /// The returned [`exaclim_store::Snapshot`] can be written to its own
    /// archive via [`exaclim_store::write_snapshot_file`] (what
    /// [`TrainedEmulator::save`] does) or embedded next to field members in
    /// a larger archive via [`exaclim_store::ArchiveWriter::add_snapshot`],
    /// which is how a serving catalog ships an emulator alongside the data
    /// it was trained on.
    pub fn to_snapshot(&self) -> exaclim_store::Snapshot {
        exaclim_store::Snapshot::new(
            Self::SNAPSHOT_MEMBER,
            Self::SNAPSHOT_VERSION,
            self.to_json().into_bytes(),
        )
    }

    /// Reconstruct a model from a snapshot produced by
    /// [`TrainedEmulator::to_snapshot`], wherever it was stored. Rejects
    /// unknown schema versions before touching the payload.
    pub fn from_snapshot(snapshot: &exaclim_store::Snapshot) -> Result<Self, EmulationError> {
        if snapshot.version != Self::SNAPSHOT_VERSION {
            return Err(EmulationError::Data(format!(
                "snapshot schema version {} is not supported (expected {})",
                snapshot.version,
                Self::SNAPSHOT_VERSION
            )));
        }
        let json = std::str::from_utf8(&snapshot.payload)
            .map_err(|_| EmulationError::Data("snapshot payload is not UTF-8".to_string()))?;
        Self::from_json(json)
    }

    /// Persist to an ECA1 snapshot archive at `path` (compressed,
    /// checksummed). Returns the container size in bytes.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<u64, EmulationError> {
        exaclim_store::write_snapshot_file(path, &self.to_snapshot())
            .map_err(|e| EmulationError::Data(e.to_string()))
    }

    /// Reload an emulator persisted with [`TrainedEmulator::save`]. The
    /// reloaded model emulates bit-identically for the same seed.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, EmulationError> {
        let snapshot = exaclim_store::read_snapshot_file(path, Self::SNAPSHOT_MEMBER)
            .map_err(|e| EmulationError::Data(e.to_string()))?;
        Self::from_snapshot(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};

    fn train_small() -> (TrainedEmulator, Dataset) {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let training = gen.generate_member(0, 3 * 365);
        let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
        (em, training)
    }

    #[test]
    fn train_and_emulate_shapes() {
        let (em, training) = train_small();
        assert_eq!(em.npoints(), training.npoints);
        assert_eq!(em.trend.len(), training.npoints);
        assert_eq!(em.var.dim(), 64);
        assert_eq!(em.factor.len(), 64 * 64);
        let out = em.emulate(200, 7).unwrap();
        assert_eq!(out.t_max, 200);
        assert_eq!(out.npoints, training.npoints);
        assert!(out.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn emulation_temperatures_are_plausible() {
        let (em, _) = train_small();
        let out = em.emulate(365, 3).unwrap();
        for &v in &out.data {
            assert!((170.0..350.0).contains(&v), "temperature {v} K");
        }
    }

    #[test]
    fn emulations_differ_across_seeds_but_not_within() {
        let (em, _) = train_small();
        let a = em.emulate(50, 1).unwrap();
        let b = em.emulate(50, 2).unwrap();
        let c = em.emulate(50, 1).unwrap();
        assert_eq!(a.data, c.data, "same seed, same emulation");
        assert!(a.data.iter().zip(&b.data).any(|(x, y)| x != y));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let (em, _) = train_small();
        let path = std::env::temp_dir().join("exaclim_core_snapshot_test.eca1");
        let bytes = em.save(&path).unwrap();
        assert!(bytes > 0);
        let back = TrainedEmulator::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let a = em.emulate(40, 17).unwrap();
        let b = back.emulate(40, 17).unwrap();
        assert_eq!(
            a.data, b.data,
            "reloaded emulator must emulate bit-identically"
        );
    }

    #[test]
    fn snapshot_embeds_in_mixed_archive() {
        // An emulator snapshot stored *next to* field members — the layout
        // a serving catalog reads — reloads bit-identically.
        use exaclim_store::{ArchiveReader, ArchiveWriter, ByteCodec, Codec, FieldMeta};
        use std::io::Cursor;
        let (em, training) = train_small();
        let snap = em.to_snapshot();
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        let meta = FieldMeta {
            ntheta: training.ntheta,
            nphi: training.nphi,
            start_year: training.start_year,
            tau: training.tau,
        };
        w.add_field(
            "t2m/member0",
            Codec::F32,
            meta,
            training.npoints,
            32,
            &training.data,
        )
        .unwrap();
        w.add_snapshot(
            &snap.name,
            snap.version,
            ByteCodec::Rle,
            &snap.payload,
            1 << 16,
        )
        .unwrap();
        let (cursor, _) = w.finish().unwrap();
        let mut r = ArchiveReader::new(cursor).unwrap();
        let (version, payload) = r.read_snapshot(TrainedEmulator::SNAPSHOT_MEMBER).unwrap();
        let back = TrainedEmulator::from_snapshot(&exaclim_store::Snapshot::new(
            TrainedEmulator::SNAPSHOT_MEMBER,
            version,
            payload,
        ))
        .unwrap();
        assert_eq!(
            em.emulate(30, 5).unwrap().data,
            back.emulate(30, 5).unwrap().data
        );
        // Version gate holds for embedded snapshots too.
        let wrong = exaclim_store::Snapshot::new("x", 999, b"{}".to_vec());
        assert!(TrainedEmulator::from_snapshot(&wrong).is_err());
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let (em, _) = train_small();
        let json = em.to_json();
        let back = TrainedEmulator::from_json(&json).unwrap();
        let a = em.emulate(30, 9).unwrap();
        let b = back.emulate(30, 9).unwrap();
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn emulator_is_smaller_than_training_data() {
        let (em, training) = train_small();
        let training_bytes = training.data.len() * 4; // archive at f32
        assert!(
            em.parameter_bytes() < training_bytes,
            "{} vs {}",
            em.parameter_bytes(),
            training_bytes
        );
        let model = em.storage_model(10, training.t_max as u64);
        assert!(model.savings_ratio() > 1.0);
    }

    #[test]
    fn rejects_bad_configs_and_grids() {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let training = gen.generate_member(0, 400);
        // Band-limit too high for the grid.
        let err = ClimateEmulator::train(&training, EmulatorConfig::small(14)).unwrap_err();
        assert!(matches!(err, EmulationError::Data(_)), "{err}");
        // Invalid tile.
        let mut cfg = EmulatorConfig::small(8);
        cfg.tile = 7;
        let err = ClimateEmulator::train(&training, cfg).unwrap_err();
        assert!(matches!(err, EmulationError::Config(_)));
    }

    #[test]
    fn ensemble_training_pools_members() {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let members: Vec<_> = (0..3).map(|r| gen.generate_member(r, 2 * 365)).collect();
        let refs: Vec<&exaclim_climate::Dataset> = members.iter().collect();
        let em = ClimateEmulator::train_ensemble(&refs, EmulatorConfig::small(8)).unwrap();
        let out = em.emulate(365, 3).unwrap();
        let report = crate::validate::validate_consistency(&members[0], &out);
        assert!(report.passes(), "{report:?}");
        // Single-member path must agree with the R=1 ensemble path.
        let single = ClimateEmulator::train(&members[0], EmulatorConfig::small(8)).unwrap();
        let ens1 = ClimateEmulator::train_ensemble(&refs[..1], EmulatorConfig::small(8)).unwrap();
        // Same estimator up to floating-point summation order.
        for (a, b) in single.factor.iter().zip(&ens1.factor) {
            assert!(
                (a - b).abs() < 1e-6,
                "R=1 ensemble ≡ single-member: {a} vs {b}"
            );
        }
        for (a, b) in single.trend.iter().zip(&ens1.trend) {
            assert!((a.sigma - b.sigma).abs() < 1e-9);
            assert!((a.beta1 - b.beta1).abs() < 1e-9);
        }
    }

    #[test]
    fn ensemble_rejects_mismatched_members() {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let a = gen.generate_member(0, 400);
        let b = gen.generate_member(1, 500); // different length
        let err = ClimateEmulator::train_ensemble(&[&a, &b], EmulatorConfig::small(8)).unwrap_err();
        assert!(matches!(err, EmulationError::Data(_)));
    }

    #[test]
    fn mixed_precision_training_also_works() {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let training = gen.generate_member(0, 2 * 365);
        let mut cfg = EmulatorConfig::small(8);
        cfg.precision = exaclim_linalg::precision::PrecisionPolicy::dp_hp();
        cfg.tile = 16;
        let em = ClimateEmulator::train(&training, cfg).unwrap();
        let out = em.emulate(100, 5).unwrap();
        assert!(out.data.iter().all(|v| v.is_finite()));
    }
}
