//! # exaclim — an exascale-class climate emulator in Rust
//!
//! Reproduction of *"Boosting Earth System Model Outputs And Saving
//! PetaBytes in Their Storage Using Exascale Climate Emulators"*
//! (Abdulah et al., SC 2024). The crate assembles the full pipeline of the
//! paper's Figure 3:
//!
//! 1. **Mean & scale** — per-location distributed-lag + harmonic trend
//!    (eq. 2) and residual standardization ([`exaclim_stats::trend`]),
//! 2. **Spherical harmonic transform** — the Wigner-d/FFT equiangular SHT
//!    of eqs. 4–8 ([`exaclim_sht`]),
//! 3. **Temporal model** — diagonal VAR(P) on coefficient vectors
//!    ([`exaclim_stats::var`]),
//! 4. **Innovation covariance** — empirical `Û` (eq. 9) factorized by the
//!    task-parallel mixed-precision tile Cholesky
//!    ([`exaclim_runtime::parallel_tile_cholesky`]),
//! 5. **Emulation** — sample `ξ = Vη`, run the VAR forward, inverse SHT,
//!    re-apply `σ` and `m_t` (§III.B).
//!
//! ```no_run
//! use exaclim::{ClimateEmulator, EmulatorConfig};
//! use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
//!
//! let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(16));
//! let training = gen.generate_member(0, 2 * 365);
//! let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(16)).unwrap();
//! let emulation = emulator.emulate(365, 42).unwrap();
//! assert_eq!(emulation.t_max, 365);
//! ```

pub mod config;
pub mod emulator;
pub mod validate;

pub use config::EmulatorConfig;
pub use emulator::{ClimateEmulator, EmulationError, TrainedEmulator};
pub use validate::{validate_consistency, ConsistencyReport};

// Re-export the substrate crates under one roof.
pub use exaclim_climate as climate;
pub use exaclim_cluster as cluster;
pub use exaclim_fft as fft;
pub use exaclim_linalg as linalg;
pub use exaclim_mathkit as mathkit;
pub use exaclim_runtime as runtime;
pub use exaclim_sht as sht;
pub use exaclim_sphere as sphere;
pub use exaclim_stats as stats;
pub use exaclim_store as store;
