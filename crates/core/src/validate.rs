//! Statistical consistency between emulations and training simulations.
//!
//! The paper (Figures 2 and 4, and ref. \[23\]) claims emulations are
//! *statistically consistent* with the simulations: same per-location
//! climatology, variability, and temporal persistence — without matching
//! weather realizations point for point. This module quantifies that.

use exaclim_climate::generator::Dataset;
use exaclim_mathkit::stats::{acf, correlation, mean, variance};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Summary of simulation-vs-emulation statistical agreement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// RMSE of per-location time means, normalized by the simulation's
    /// spatial standard deviation of means.
    pub mean_nrmse: f64,
    /// Median over locations of emulated/simulated standard-deviation ratio.
    pub std_ratio_median: f64,
    /// Correlation across locations of the per-location time means.
    pub mean_field_correlation: f64,
    /// Correlation across locations of per-location standard deviations.
    pub std_field_correlation: f64,
    /// |lag-1 autocorrelation difference| of the global-mean series.
    pub acf1_abs_diff: f64,
    /// Largest quantile mismatch of the pooled anomaly distributions over
    /// q ∈ {1%, 5%, 25%, 50%, 75%, 95%, 99%}, in simulation-anomaly
    /// standard deviations — an extremes/Q-Q diagnostic (heatwaves and cold
    /// snaps live in these tails).
    pub max_quantile_gap: f64,
}

impl ConsistencyReport {
    /// The default acceptance thresholds used by the test suite and the
    /// figure harnesses.
    pub fn passes(&self) -> bool {
        self.mean_nrmse < 0.15
            && (self.std_ratio_median - 1.0).abs() < 0.3
            && self.mean_field_correlation > 0.98
            && self.std_field_correlation > 0.6
            && self.acf1_abs_diff < 0.25
            && self.max_quantile_gap < 0.5
    }
}

fn location_series(d: &Dataset, p: usize) -> Vec<f64> {
    (0..d.t_max).map(|t| d.data[t * d.npoints + p]).collect()
}

fn global_mean_series(d: &Dataset) -> Vec<f64> {
    (0..d.t_max).map(|t| d.field_mean(t)).collect()
}

/// Compare an emulation against its training simulation.
pub fn validate_consistency(simulation: &Dataset, emulation: &Dataset) -> ConsistencyReport {
    assert_eq!(simulation.npoints, emulation.npoints, "grids must match");
    let np = simulation.npoints;
    let stats: Vec<(f64, f64, f64, f64)> = (0..np)
        .into_par_iter()
        .map(|p| {
            let s = location_series(simulation, p);
            let e = location_series(emulation, p);
            (mean(&s), mean(&e), variance(&s).sqrt(), variance(&e).sqrt())
        })
        .collect();
    let sim_means: Vec<f64> = stats.iter().map(|s| s.0).collect();
    let emu_means: Vec<f64> = stats.iter().map(|s| s.1).collect();
    let sim_stds: Vec<f64> = stats.iter().map(|s| s.2).collect();
    let emu_stds: Vec<f64> = stats.iter().map(|s| s.3).collect();

    let spatial_scale = variance(&sim_means).sqrt().max(1e-12);
    let mean_rmse = exaclim_mathkit::stats::rmse(&sim_means, &emu_means);

    let mut ratios: Vec<f64> = sim_stds
        .iter()
        .zip(&emu_stds)
        .filter(|(s, _)| **s > 1e-9)
        .map(|(s, e)| e / s)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let std_ratio_median = if ratios.is_empty() {
        1.0
    } else {
        ratios[ratios.len() / 2]
    };

    let gs = global_mean_series(simulation);
    let ge = global_mean_series(emulation);
    let lag = 1usize;
    let a_s = acf(&gs, lag)[1];
    let a_e = acf(&ge, lag)[1];

    // Pooled anomaly Q-Q check: subtract each location's own time mean so
    // quantiles measure variability shape, not geography.
    let anomalies = |d: &Dataset, means: &[f64]| -> Vec<f64> {
        let mut a = Vec::with_capacity(d.data.len());
        for t in 0..d.t_max {
            for p in 0..d.npoints {
                a.push(d.data[t * d.npoints + p] - means[p]);
            }
        }
        a
    };
    let sim_anom = anomalies(simulation, &sim_means);
    let emu_anom = anomalies(emulation, &emu_means);
    let anom_scale = variance(&sim_anom).sqrt().max(1e-12);
    let mut max_gap = 0.0f64;
    for q in [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
        let gap = (exaclim_mathkit::stats::quantile(&sim_anom, q)
            - exaclim_mathkit::stats::quantile(&emu_anom, q))
        .abs()
            / anom_scale;
        max_gap = max_gap.max(gap);
    }

    ConsistencyReport {
        mean_nrmse: mean_rmse / spatial_scale,
        std_ratio_median,
        mean_field_correlation: correlation(&sim_means, &emu_means),
        std_field_correlation: correlation(&sim_stds, &emu_stds),
        acf1_abs_diff: (a_s - a_e).abs(),
        max_quantile_gap: max_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmulatorConfig;
    use crate::emulator::ClimateEmulator;
    use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};

    #[test]
    fn emulation_is_statistically_consistent_with_simulation() {
        // The headline scientific claim at test scale: train on 3 years,
        // emulate 3 years, compare statistics (Figure 2's "statistically
        // consistent" caption).
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let training = gen.generate_member(0, 3 * 365);
        let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
        let emulation = em.emulate(3 * 365, 99).unwrap();
        let report = validate_consistency(&training, &emulation);
        assert!(report.passes(), "consistency failed: {report:?}");
    }

    #[test]
    fn self_comparison_is_perfect() {
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let d = gen.generate_member(0, 120);
        let r = validate_consistency(&d, &d);
        assert!(r.mean_nrmse < 1e-12);
        assert!((r.std_ratio_median - 1.0).abs() < 1e-12);
        assert!(r.mean_field_correlation > 0.999999);
        assert!(r.acf1_abs_diff < 1e-12);
        assert!(r.max_quantile_gap < 1e-12);
        assert!(r.passes());
    }

    #[test]
    fn shuffled_emulation_fails_consistency() {
        // A "wrong" emulation (fields from a different climate: +20 K)
        // must fail the mean check.
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let d = gen.generate_member(0, 120);
        let mut bad = d.clone();
        for v in bad.data.iter_mut() {
            *v += 20.0;
        }
        let r = validate_consistency(&d, &bad);
        assert!(!r.passes(), "shifted climate must fail: {r:?}");
    }

    #[test]
    fn inflated_variability_fails_the_quantile_gap() {
        // Same means, 3× the anomaly amplitude: means/correlations stay
        // fine but the Q-Q diagnostic must reject.
        let gen = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
        let d = gen.generate_member(0, 200);
        let np = d.npoints;
        let mut means = vec![0.0f64; np];
        for t in 0..d.t_max {
            for p in 0..np {
                means[p] += d.data[t * np + p];
            }
        }
        means.iter_mut().for_each(|m| *m /= d.t_max as f64);
        let mut bad = d.clone();
        for t in 0..d.t_max {
            for p in 0..np {
                let v = d.data[t * np + p];
                bad.data[t * np + p] = means[p] + 3.0 * (v - means[p]);
            }
        }
        let r = validate_consistency(&d, &bad);
        assert!(r.max_quantile_gap > 0.5, "gap {}", r.max_quantile_gap);
        assert!(!r.passes());
    }
}
