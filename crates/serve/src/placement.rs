//! Cost-model-driven shard placement: score candidate ring layouts
//! before the [`crate::router::Router`] adopts one.
//!
//! Placement here is not ad hoc. A candidate layout — a virtual-node
//! count and a replication factor for the consistent-hash ring — is
//! evaluated the way the source paper evaluates machine configurations:
//! in a model first. For each candidate this module
//!
//! 1. assigns every expected key ([`KeyWeight`]) to its primary shard
//!    through the exact ring the router would build,
//! 2. weights emulator-backed keys by the Figure-1 design cost model
//!    ([`exaclim_cluster::CostModel`], via [`emulator_weight`]) — an
//!    `O(L³T + L⁴)` emulation is a hotter key than a byte-bound slice —
//! 3. hands the resulting per-shard load vector to
//!    [`exaclim_cluster::simulate_placement`] with the target machine's
//!    [`exaclim_cluster::MachineSpec`], which predicts load skew,
//!    scatter-gather fan-out, and cluster scaling,
//!
//! and [`plan_layout`] returns the best candidate the simulation calls
//! balanced. The skew guarantee the test suite pins — no shard owns
//! more than 2× the mean key count at 128 virtual nodes — is checked
//! against [`assign_primaries`], the same assignment the live ring
//! uses.

use crate::router::Ring;
use exaclim_cluster::costmodel::{CostModel, EmulatorClass};
use exaclim_cluster::{simulate_placement, MachineSpec, PlacementConfig, PlacementReport};

/// Response payload bytes assumed per request when scoring layouts (a
/// typical compressed-chunk slice window).
const AVG_REQUEST_BYTES: f64 = 64.0 * 1024.0;
/// Requests per incoming batch assumed when scoring scatter-gather
/// fan-out.
const REQUESTS_PER_BATCH: usize = 32;
/// Virtual-node counts scored by [`plan_layout`].
const VNODE_CANDIDATES: [usize; 3] = [64, 128, 256];

/// One expected routing key and its relative demand.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyWeight {
    /// Archive part of the routing key (empty for emulator keys).
    pub archive: String,
    /// Member part (member name, or emulator name for emulator keys).
    pub member: String,
    /// Relative demand (any positive scale; [`KeyWeight::unit`] for
    /// "every key equally hot").
    pub weight: f64,
}

impl KeyWeight {
    /// An archive-member key with unit weight.
    pub fn unit(archive: impl Into<String>, member: impl Into<String>) -> Self {
        Self {
            archive: archive.into(),
            member: member.into(),
            weight: 1.0,
        }
    }

    /// An emulator key (the routing key [`crate::server::Request::Emulate`]
    /// and ensemble products hash to), weighted by the design cost model.
    pub fn emulator(name: impl Into<String>, lmax: usize, t_max: usize) -> Self {
        Self {
            archive: String::new(),
            member: name.into(),
            weight: emulator_weight(lmax, t_max),
        }
    }
}

/// Relative demand weight of an emulator key: the Figure-1 axially-symmetric
/// design cost `O(L³T + L⁴)` of an `lmax`-band-limit, `t_max`-step run,
/// normalized so a small (L=32, T=64) emulation weighs 1.0 — emulator
/// keys concentrate compute the way big matrices concentrate flops, so
/// placement must see them as hotter than byte-bound slice keys.
pub fn emulator_weight(lmax: usize, t_max: usize) -> f64 {
    let cost = |l: f64, t: f64| CostModel::design_flops(EmulatorClass::AxiallySymmetric, l, t);
    (cost(lmax as f64, t_max as f64) / cost(32.0, 64.0)).max(1.0)
}

/// A scored layout: what [`plan_layout`] chose and why.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// Ring points per shard of the chosen layout.
    pub virtual_nodes: usize,
    /// Replication factor of the chosen layout.
    pub replication: usize,
    /// Weighted demand each shard's primaries carry under the chosen
    /// layout (one entry per shard, label order).
    pub shard_loads: Vec<f64>,
    /// The simulation's verdict on the chosen layout.
    pub report: PlacementReport,
}

/// Primary-shard index of every key under the exact ring the router
/// builds for `labels` with `virtual_nodes` points per shard and the
/// given `seed` — the placement-skew property test runs over this.
pub fn assign_primaries(
    labels: &[String],
    virtual_nodes: usize,
    seed: u64,
    keys: &[KeyWeight],
) -> Vec<usize> {
    let ring = Ring::build(labels, virtual_nodes, 1, seed);
    keys.iter()
        .map(|k| {
            let reps = ring.replicas(ring.key_hash(&k.archive, &k.member));
            usize::from(*reps.first().expect("non-empty ring"))
        })
        .collect()
}

/// Weighted per-shard load vector of `keys` under one candidate ring.
fn shard_loads(labels: &[String], virtual_nodes: usize, seed: u64, keys: &[KeyWeight]) -> Vec<f64> {
    let mut loads = vec![0.0f64; labels.len()];
    for (k, shard) in keys
        .iter()
        .zip(assign_primaries(labels, virtual_nodes, seed, keys))
    {
        loads[shard] += k.weight.max(0.0);
    }
    loads
}

/// Score candidate layouts for `keys` on `machine` and return the best
/// one the simulation accepts: every virtual-node candidate crossed
/// with replication factors `min_replication` and `min_replication + 1`
/// (capped at the shard count), ranked by predicted cluster bandwidth
/// among balanced candidates — or, when no candidate balances (e.g. one
/// key carries all the weight), the least-skewed candidate, whose
/// report says `balanced: false` so the caller knows the model objected.
pub fn plan_layout(
    labels: &[String],
    keys: &[KeyWeight],
    machine: &MachineSpec,
    seed: u64,
    min_replication: usize,
) -> PlacementPlan {
    let shards = labels.len().max(1);
    let min_replication = min_replication.clamp(1, shards);
    let replication_candidates = [min_replication, (min_replication + 1).min(shards)];

    let mut best: Option<PlacementPlan> = None;
    for &virtual_nodes in &VNODE_CANDIDATES {
        let loads = shard_loads(labels, virtual_nodes, seed, keys);
        for &replication in &replication_candidates {
            let report = simulate_placement(
                machine,
                &PlacementConfig {
                    shard_loads: loads.clone(),
                    replication,
                    avg_request_bytes: AVG_REQUEST_BYTES,
                    requests_per_batch: REQUESTS_PER_BATCH,
                },
            );
            let candidate = PlacementPlan {
                virtual_nodes,
                replication,
                shard_loads: loads.clone(),
                report,
            };
            best = Some(match best.take() {
                None => candidate,
                Some(cur) => {
                    let cand_wins = match (candidate.report.balanced, cur.report.balanced) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => candidate.report.cluster_gbs > cur.report.cluster_gbs,
                        (false, false) => candidate.report.skew < cur.report.skew,
                    };
                    if cand_wins {
                        candidate
                    } else {
                        cur
                    }
                }
            });
        }
    }
    best.expect("at least one candidate layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_cluster::Machine;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    fn synthetic_keys(n: usize) -> Vec<KeyWeight> {
        (0..n)
            .map(|i| KeyWeight::unit(format!("arc{}", i % 3), format!("member-{i}")))
            .collect()
    }

    #[test]
    fn plan_is_deterministic_and_balanced_on_uniform_keys() {
        let machine = MachineSpec::of(Machine::Frontier);
        let keys = synthetic_keys(512);
        let a = plan_layout(&labels(4), &keys, &machine, 0xECA1, 2);
        let b = plan_layout(&labels(4), &keys, &machine, 0xECA1, 2);
        assert_eq!(a.virtual_nodes, b.virtual_nodes);
        assert_eq!(a.shard_loads, b.shard_loads);
        assert!(a.report.balanced, "{:?}", a.report);
        assert!(a.replication >= 2);
        assert!(
            a.report.speedup_vs_single >= 2.5,
            "4 shards must predict ≥ 2.5×: {:?}",
            a.report
        );
    }

    #[test]
    fn pathological_weights_are_flagged_not_hidden() {
        let machine = MachineSpec::of(Machine::Frontier);
        // One key carries 100× every other: no ring can balance that.
        let mut keys = synthetic_keys(64);
        keys[0].weight = 6400.0;
        let plan = plan_layout(&labels(4), &keys, &machine, 1, 1);
        assert!(!plan.report.balanced, "{:?}", plan.report);
        assert!(plan.report.skew > 2.0);
    }

    #[test]
    fn emulator_keys_outweigh_slice_keys() {
        let small = emulator_weight(32, 64);
        let big = emulator_weight(128, 256);
        assert!((small - 1.0).abs() < 1e-12);
        assert!(big > 20.0 * small, "L=128 T=256 weight {big}");
    }

    #[test]
    fn primaries_match_the_live_ring() {
        let keys = synthetic_keys(100);
        let labels = labels(4);
        let primaries = assign_primaries(&labels, 128, 9, &keys);
        assert_eq!(primaries.len(), keys.len());
        assert!(primaries.iter().all(|&p| p < 4));
        // Every shard owns something at 128 vnodes over 100 keys.
        for s in 0..4 {
            assert!(primaries.contains(&s), "shard {s} owns nothing");
        }
    }
}
