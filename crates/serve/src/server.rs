//! The request/response server: catalog + cache + batcher over the pool.
//!
//! [`Server::handle_batch`] is the core entry point. A batch runs in two
//! parallel phases on the process-wide
//! [`exaclim_runtime::pool`] worker pool:
//!
//! 1. **Fetch** — the batch's slice requests are planned
//!    ([`crate::batch::BatchPlan`]) and the deduplicated set of touched
//!    chunks is resolved in parallel: cache hit → shared `Arc` of the
//!    decoded values; miss → the single-flight reservation map elects one
//!    leader per chunk (cross-batch stampedes coalesce onto it), which
//!    fetches the stored bytes — a lock-free borrowed view on mapped and
//!    in-memory archives, a mutex-serialized read on stream archives —
//!    and decodes them on its own worker, outside any lock.
//! 2. **Answer** — every request is answered in parallel: slice responses
//!    are assembled from the shared decoded chunks, emulation requests run
//!    the registered model (its internal data parallelism nests safely —
//!    pool calls from workers run inline), and catalog queries read the
//!    immutable catalog.
//!
//! Both phases use the same pool the training/emulation hot paths use, so
//! `EXACLIM_THREADS` bounds serve concurrency the same way it bounds
//! compute parallelism: `EXACLIM_THREADS=1` serves every batch on the
//! caller thread, bit-identically to the concurrent configuration.

use crate::batch::{BatchPlan, SliceRequest};
use crate::cache::{CacheStats, ChunkCache, ChunkKey, Fetch, ProductCache};
use crate::catalog::Catalog;
use crate::error::ServeError;
use crate::product::{ProductData, ProductDescriptor, ScenarioSpec};
use exaclim_climate::Dataset;
use exaclim_store::{Codec, MemberKind};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Byte budget of the decoded-chunk cache (0 disables caching).
    pub cache_bytes: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Byte budget of the derived-product cache (0 disables it); products
    /// share the chunk cache's shard count.
    pub product_cache_bytes: usize,
}

impl Default for ServeConfig {
    /// 256 MiB of chunk cache across 16 shards, 64 MiB of product cache.
    fn default() -> Self {
        Self {
            cache_bytes: 256 << 20,
            cache_shards: 16,
            product_cache_bytes: 64 << 20,
        }
    }
}

/// A serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read time slices of a field member.
    Slice(SliceRequest),
    /// Run a registered emulator forward.
    Emulate {
        /// Catalog name of the emulator.
        emulator: String,
        /// Steps to emulate.
        t_max: usize,
        /// Seed of the run (same seed ⇒ bit-identical output).
        seed: u64,
    },
    /// Query the catalog.
    Catalog(CatalogQuery),
    /// Snapshot the server's serving counters ([`ServeStats`]). Over the
    /// network front end this is the monitoring op: cheap, read-only, and
    /// answered from atomics without touching any archive.
    Stats,
    /// Evaluate a derived climate product server-side (scenario engine):
    /// windowed raw values, anomalies, ensemble mean/spread, trend,
    /// persistence, or Tukey tail extremes over an archive member or a
    /// fresh emulated ensemble. Results are cached by canonical
    /// descriptor hash with single-flight stampede protection.
    Product(ProductDescriptor),
    /// Emulate an ensemble of stochastic realizations in one request,
    /// fanned over the worker pool with per-realization seeds. Sugar for
    /// a [`Request::Product`] with [`crate::product::ProductStat::Raw`]
    /// and no windows — both forms share one cache entry.
    Ensemble(ScenarioSpec),
    /// Wire-v4 deadline wrapper: answer the inner request only if less
    /// than `budget_ms` milliseconds have passed since the server
    /// *received* it; otherwise skip the work entirely and answer
    /// [`ServeError::DeadlineExpired`]. The budget covers queue time —
    /// under backlog, requests whose caller has certainly given up are
    /// dropped before they consume a worker. A zero budget is always
    /// expired (a deterministic probe of the deadline path). One level
    /// only: the wire decoder rejects a nested wrapper as malformed, and
    /// the server answers an in-process nested wrapper with
    /// [`ServeError::BadRequest`].
    WithDeadline {
        /// Milliseconds of budget from receipt to execution start.
        budget_ms: u32,
        /// The wrapped request (never itself a `WithDeadline`).
        request: Box<Request>,
    },
}

/// Metadata queries against the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogQuery {
    /// Every open archive.
    ListArchives,
    /// Every member of one archive.
    ListMembers {
        /// Catalog name of the archive.
        archive: String,
    },
    /// One member's metadata.
    MemberInfo {
        /// Catalog name of the archive.
        archive: String,
        /// Member name.
        member: String,
    },
    /// Every registered emulator.
    ListEmulators,
}

/// A served field slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceData {
    /// Archive the slice came from.
    pub archive: String,
    /// Member the slice came from.
    pub member: String,
    /// The served time range.
    pub range: Range<u64>,
    /// Grid values per time slice.
    pub values_per_slice: u64,
    /// `(range.end − range.start) × values_per_slice` values, time-major —
    /// bit-identical to a sequential
    /// [`exaclim_store::ArchiveReader::read_field_slices`] read.
    pub values: Vec<f64>,
}

/// Summary of one open archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveInfo {
    /// Catalog name.
    pub name: String,
    /// Member count.
    pub members: usize,
    /// Container length in bytes.
    pub total_len: u64,
}

/// Summary of one archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// Member name.
    pub name: String,
    /// Field or snapshot.
    pub kind: MemberKind,
    /// Wire codec id ([`exaclim_store::Codec`] for fields,
    /// [`exaclim_store::ByteCodec`] for snapshots).
    pub codec: u8,
    /// Time steps (fields) or payload bytes (snapshots).
    pub t_max: u64,
    /// Grid values per slice (0 for snapshots).
    pub values_per_slice: u64,
    /// Chunk count.
    pub chunks: usize,
    /// Snapshot schema version (0 for fields).
    pub snapshot_version: u32,
}

/// Summary of one registered emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmulatorInfo {
    /// Catalog name.
    pub name: String,
    /// Spherical-harmonic band-limit of the model.
    pub lmax: usize,
    /// Grid rows × columns the model emulates.
    pub grid: (usize, usize),
    /// Serialized parameter footprint in bytes.
    pub parameter_bytes: usize,
}

/// Answer to a [`CatalogQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogAnswer {
    /// Reply to [`CatalogQuery::ListArchives`].
    Archives(Vec<ArchiveInfo>),
    /// Reply to [`CatalogQuery::ListMembers`].
    Members(Vec<MemberInfo>),
    /// Reply to [`CatalogQuery::MemberInfo`].
    Member(MemberInfo),
    /// Reply to [`CatalogQuery::ListEmulators`].
    Emulators(Vec<EmulatorInfo>),
}

/// A serving response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Slice`].
    Slice(SliceData),
    /// Reply to [`Request::Emulate`]: the emulated dataset.
    Emulate(Dataset),
    /// Reply to [`Request::Catalog`].
    Catalog(CatalogAnswer),
    /// Reply to [`Request::Stats`]: the counters at answer time.
    Stats(ServeStats),
    /// Reply to [`Request::Product`] and [`Request::Ensemble`]: the
    /// evaluated product block.
    Product(ProductData),
}

/// Point-in-time serving counters (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Slice requests answered successfully.
    pub slices: u64,
    /// Emulation requests answered successfully.
    pub emulations: u64,
    /// Catalog queries answered successfully.
    pub catalog_queries: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Batches processed (single `handle` calls count as 1-batches).
    pub batches: u64,
    /// Chunk touches across all slice requests, before coalescing.
    pub chunk_touches: u64,
    /// Unique chunks actually resolved after coalescing; the difference
    /// to [`ServeStats::chunk_touches`] is work the batcher saved.
    pub chunk_fetches: u64,
    /// Chunks actually read and decoded from an archive — what remains
    /// after the cache absorbs hits and the single-flight reservation map
    /// collapses cross-batch stampedes. Under a hot-chunk stampede this
    /// counts exactly one decode per distinct chunk.
    pub chunk_decodes: u64,
    /// Derived-product requests answered successfully
    /// ([`Request::Product`] and [`Request::Ensemble`]).
    pub products: u64,
    /// Products actually evaluated — what remains after the product
    /// cache absorbs hits and its single-flight map collapses stampedes.
    /// A stampede on one descriptor counts exactly one compute.
    pub product_computes: u64,
    /// Wall-clock nanoseconds spent inside `handle_batch`.
    pub busy_nanos: u64,
    /// Requests skipped because their [`Request::WithDeadline`] budget
    /// had already expired when the batch started executing. Each also
    /// counts in [`ServeStats::errors`] (the request drew
    /// [`ServeError::DeadlineExpired`]).
    pub deadline_expired: u64,
}

/// One request's answer before materialization: either a finished
/// [`Response`], or a slice answer held as references into the batch's
/// decoded chunks. The wire layer encodes the latter without ever
/// concatenating the values ([`crate::wire::encode_reply_batch`]), which
/// is what lets slice responses stream out of the chunk cache with zero
/// copies; [`Reply::into_response`] materializes it for in-process
/// callers, reproducing [`crate::batch::BatchPlan::assemble`] exactly.
pub(crate) enum Reply {
    /// A fully materialized answer.
    Full(Result<Response, ServeError>),
    /// A slice answer as `(decoded chunk, value range)` parts whose
    /// in-order concatenation is the response's `values`.
    Slice {
        archive: String,
        member: String,
        range: Range<u64>,
        values_per_slice: u64,
        parts: Vec<(Arc<[f64]>, Range<usize>)>,
    },
}

impl Reply {
    /// Materialize into the classic response form (copies slice values).
    pub(crate) fn into_response(self) -> Result<Response, ServeError> {
        match self {
            Reply::Full(r) => r,
            Reply::Slice {
                archive,
                member,
                range,
                values_per_slice,
                parts,
            } => {
                let total: usize = parts.iter().map(|(_, r)| r.len()).sum();
                let mut values = Vec::with_capacity(total);
                for (chunk, r) in parts {
                    values.extend_from_slice(&chunk[r]);
                }
                Ok(Response::Slice(SliceData {
                    archive,
                    member,
                    range,
                    values_per_slice,
                    values,
                }))
            }
        }
    }
}

/// What the network front end dispatches decoded batches to: an
/// in-process [`Server`], or a [`crate::router::Router`] scatter-
/// gathering over backend shards. Both answer in [`Reply`] form so the
/// wire encoder keeps its zero-copy slice path regardless of backend.
pub(crate) trait ServeBackend: Send + Sync {
    /// Answer a batch with an explicit receipt time (deadline budgets
    /// cover queue time — see [`Server::handle_batch_replies_from`]).
    fn batch_replies_from(&self, requests: &[Request], received: std::time::Instant) -> Vec<Reply>;
}

impl ServeBackend for Server {
    fn batch_replies_from(&self, requests: &[Request], received: std::time::Instant) -> Vec<Reply> {
        self.handle_batch_replies_from(requests, received)
    }
}

#[derive(Default)]
pub(crate) struct StatCells {
    slices: AtomicU64,
    emulations: AtomicU64,
    catalog_queries: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    chunk_touches: AtomicU64,
    chunk_fetches: AtomicU64,
    chunk_decodes: AtomicU64,
    products: AtomicU64,
    pub(crate) product_computes: AtomicU64,
    busy_nanos: AtomicU64,
    deadline_expired: AtomicU64,
}

/// A serving instance: an immutable [`Catalog`] fronted by a
/// [`ChunkCache`], answering requests concurrently on the shared worker
/// pool.
///
/// ```
/// use exaclim_serve::{Catalog, Request, Response, ServeConfig, Server, SliceRequest};
/// use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
/// use std::io::Cursor;
///
/// // A single-member archive in memory.
/// let data: Vec<f64> = (0..4 * 12).map(f64::from).collect();
/// let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
/// w.add_field("t2m", Codec::Raw64, FieldMeta::default(), 4, 5, &data).unwrap();
/// let (cursor, _) = w.finish().unwrap();
///
/// let mut catalog = Catalog::new();
/// catalog.open_archive_bytes("era5", cursor.into_inner()).unwrap();
/// let server = Server::new(catalog, ServeConfig::default());
///
/// let request = Request::Slice(SliceRequest {
///     archive: "era5".to_string(),
///     member: "t2m".to_string(),
///     range: 3..7,
/// });
/// let Ok(Response::Slice(slice)) = server.handle(&request) else { panic!() };
/// assert_eq!(slice.values, data[3 * 4..7 * 4]);
/// assert_eq!(server.stats().slices, 1);
/// ```
pub struct Server {
    pub(crate) catalog: Catalog,
    pub(crate) cache: ChunkCache,
    pub(crate) product_cache: ProductCache,
    pub(crate) stats: StatCells,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("archives", &self.catalog.archives().len())
            .field("emulators", &self.catalog.emulators().len())
            .field("cache", &self.cache)
            .finish()
    }
}

impl Server {
    /// Build a server over `catalog` with the given cache configuration.
    pub fn new(catalog: Catalog, config: ServeConfig) -> Self {
        Self {
            catalog,
            cache: ChunkCache::new(config.cache_bytes, config.cache_shards),
            product_cache: ProductCache::new(config.product_cache_bytes, config.cache_shards),
            stats: StatCells::default(),
        }
    }

    /// The catalog being served.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current chunk-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Current derived-product cache counters, separate from the chunk
    /// counters so bench reports can tell the two apart.
    pub fn product_cache_stats(&self) -> CacheStats {
        self.product_cache.stats()
    }

    /// Drop every cached chunk and product (counters survive). Benches
    /// use this to re-measure cold reads on a warmed server.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.product_cache.clear();
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            slices: self.stats.slices.load(Ordering::Relaxed),
            emulations: self.stats.emulations.load(Ordering::Relaxed),
            catalog_queries: self.stats.catalog_queries.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            chunk_touches: self.stats.chunk_touches.load(Ordering::Relaxed),
            chunk_fetches: self.stats.chunk_fetches.load(Ordering::Relaxed),
            chunk_decodes: self.stats.chunk_decodes.load(Ordering::Relaxed),
            products: self.stats.products.load(Ordering::Relaxed),
            product_computes: self.stats.product_computes.load(Ordering::Relaxed),
            busy_nanos: self.stats.busy_nanos.load(Ordering::Relaxed),
            deadline_expired: self.stats.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// Answer one request (a 1-element batch).
    pub fn handle(&self, request: &Request) -> Result<Response, ServeError> {
        self.handle_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answer a batch of requests, coalescing slice reads that touch the
    /// same chunk and spreading chunk resolution + response assembly
    /// across the worker pool. Responses align with the input order, and
    /// each request fails or succeeds individually.
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Result<Response, ServeError>> {
        self.handle_batch_replies(requests)
            .into_iter()
            .map(Reply::into_response)
            .collect()
    }

    /// The core of [`Server::handle_batch`]: answer a batch, but leave
    /// slice answers as chunk references ([`Reply::Slice`]) instead of
    /// concatenated value vectors — the network front end encodes these
    /// straight out of the chunk cache.
    pub(crate) fn handle_batch_replies(&self, requests: &[Request]) -> Vec<Reply> {
        self.handle_batch_replies_from(requests, std::time::Instant::now())
    }

    /// [`Server::handle_batch_replies`] with an explicit receipt time:
    /// `received` is when the batch *arrived* (for the network front
    /// ends, when its request frame was read off the socket), so
    /// [`Request::WithDeadline`] budgets cover dispatch-queue time, not
    /// just execution. Expired requests are answered
    /// [`ServeError::DeadlineExpired`] without planning, fetching, or
    /// computing anything on their behalf.
    pub(crate) fn handle_batch_replies_from(
        &self,
        requests: &[Request],
        received: std::time::Instant,
    ) -> Vec<Reply> {
        let t0 = std::time::Instant::now();
        let pool = exaclim_runtime::pool::global();

        // Strip deadline wrappers up front: an expired request becomes
        // `None` (answered below without touching any archive), a live
        // one contributes its inner request to planning and execution.
        let waited = t0.saturating_duration_since(received);
        let effective: Vec<Option<&Request>> = requests
            .iter()
            .map(|r| match r {
                Request::WithDeadline { budget_ms, request } => {
                    if waited >= std::time::Duration::from_millis(u64::from(*budget_ms)) {
                        None
                    } else {
                        Some(request.as_ref())
                    }
                }
                other => Some(other),
            })
            .collect();

        // Plan the batch's slice requests together.
        let slice_reqs: Vec<SliceRequest> = effective
            .iter()
            .filter_map(|r| match r {
                Some(Request::Slice(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        let plan = BatchPlan::build(&self.catalog, &slice_reqs);

        // Phase 1: resolve the deduplicated chunk set in parallel.
        let mut fetched: Vec<Option<Result<Arc<[f64]>, ServeError>>> =
            vec![None; plan.fetches.len()];
        pool.parallel_chunks_mut(&mut fetched, 1, |i, slot| {
            slot[0] = Some(self.resolve_chunk(plan.fetches[i]));
        });
        let fetched: Vec<Result<Arc<[f64]>, ServeError>> = fetched
            .into_iter()
            .map(|slot| slot.expect("every fetch slot filled"))
            .collect();

        // Phase 2: answer every request in parallel.
        let mut out: Vec<Option<Reply>> = (0..requests.len()).map(|_| None).collect();
        {
            let mut slice_no = 0usize;
            let slice_order: Vec<usize> = effective
                .iter()
                .map(|r| match r {
                    Some(Request::Slice(_)) => {
                        slice_no += 1;
                        slice_no - 1
                    }
                    _ => usize::MAX,
                })
                .collect();
            pool.parallel_chunks_mut(&mut out, 1, |i, slot| {
                slot[0] = Some(match effective[i] {
                    None => Reply::Full(Err(ServeError::DeadlineExpired)),
                    Some(Request::Slice(req)) => {
                        self.answer_slice(req, &plan, slice_order[i], &fetched)
                    }
                    Some(Request::Emulate {
                        emulator,
                        t_max,
                        seed,
                    }) => Reply::Full(self.answer_emulate(emulator, *t_max, *seed)),
                    Some(Request::Catalog(query)) => Reply::Full(self.answer_catalog(query)),
                    Some(Request::Stats) => Reply::Full(Ok(Response::Stats(self.stats()))),
                    Some(Request::Product(descriptor)) => {
                        Reply::Full(self.answer_product(descriptor))
                    }
                    Some(Request::Ensemble(spec)) => Reply::Full(
                        self.answer_product(&crate::scenario::ensemble_descriptor(spec)),
                    ),
                    // The wire decoder rejects nesting; an in-process
                    // caller that builds one gets a typed refusal.
                    Some(Request::WithDeadline { .. }) => Reply::Full(Err(ServeError::BadRequest(
                        "nested deadline wrapper".to_string(),
                    ))),
                });
            });
        }
        let replies: Vec<Reply> = out
            .into_iter()
            .map(|slot| slot.expect("every response slot filled"))
            .collect();

        // Bookkeeping.
        for r in &replies {
            let cell = match r {
                Reply::Slice { .. } | Reply::Full(Ok(Response::Slice(_))) => &self.stats.slices,
                Reply::Full(Ok(Response::Emulate(_))) => &self.stats.emulations,
                Reply::Full(Ok(Response::Catalog(_))) | Reply::Full(Ok(Response::Stats(_))) => {
                    &self.stats.catalog_queries
                }
                Reply::Full(Ok(Response::Product(_))) => &self.stats.products,
                Reply::Full(Err(_)) => &self.stats.errors,
            };
            cell.fetch_add(1, Ordering::Relaxed);
        }
        let expired = effective.iter().filter(|r| r.is_none()).count() as u64;
        if expired > 0 {
            self.stats
                .deadline_expired
                .fetch_add(expired, Ordering::Relaxed);
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .chunk_touches
            .fetch_add(plan.touches as u64, Ordering::Relaxed);
        self.stats
            .chunk_fetches
            .fetch_add(plan.fetches.len() as u64, Ordering::Relaxed);
        self.stats
            .busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        replies
    }

    /// Resolve one chunk: cache hit, single-flight wait, or lead the
    /// (exactly one) decode.
    pub(crate) fn resolve_chunk(&self, key: ChunkKey) -> Result<Arc<[f64]>, ServeError> {
        match self.cache.begin_fetch(key) {
            Fetch::Ready(values) => Ok(values),
            // Another worker (possibly in a different batch) is decoding
            // this very chunk: share its result instead of redecoding.
            Fetch::Wait(flight) => flight.wait(),
            Fetch::Lead(lead) => {
                let result = self.decode_chunk(key);
                lead.finish(result.clone());
                result
            }
        }
    }

    /// Fetch and decode one chunk from its archive. Over a zero-copy
    /// backend (mmap, in-memory) the stored bytes are a borrowed view —
    /// no lock, no copy; over a stream backend the read serializes on the
    /// source's internal mutex. Decode always runs on this worker,
    /// outside any lock.
    fn decode_chunk(&self, key: ChunkKey) -> Result<Arc<[f64]>, ServeError> {
        let archive = &self.catalog.archives()[key.archive as usize];
        let m = &archive.members()[key.member as usize];
        // Fault site `decode`: chunk fetch+decode. Corrupt surfaces as a
        // checksum failure (retryable; the single-flight map never caches
        // errors, so a retry re-decodes cleanly); other actions degrade
        // to a delay or no-op.
        if let Some(action) = exaclim_runtime::faults::check("decode") {
            use exaclim_runtime::FaultAction;
            match action {
                FaultAction::Delay(d) | FaultAction::Stall(d) => std::thread::sleep(d),
                FaultAction::Corrupt => {
                    return Err(ServeError::Archive(
                        exaclim_store::ArchiveError::ChecksumMismatch {
                            member: m.name.clone(),
                            chunk: key.chunk as usize,
                        },
                    ));
                }
                FaultAction::Error => {
                    return Err(ServeError::Internal("injected decode fault".to_string()));
                }
                _ => {}
            }
        }
        let codec = Codec::from_id(m.codec)?;
        let entry = m.chunks[key.chunk as usize];
        let stored = archive.fetch_chunk_stored(key.member as usize, key.chunk as usize)?;
        let n_values = entry.t_len as usize * m.values_per_slice as usize;
        let values: Arc<[f64]> = codec.decode(&stored, n_values)?.into();
        self.stats.chunk_decodes.fetch_add(1, Ordering::Relaxed);
        Ok(values)
    }

    /// Answer one slice request as chunk references — no values are
    /// copied here; [`Reply::into_response`] or the wire encoder
    /// concatenate (or stream) the parts later.
    fn answer_slice(
        &self,
        req: &SliceRequest,
        plan: &BatchPlan,
        slice_idx: usize,
        fetched: &[Result<Arc<[f64]>, ServeError>],
    ) -> Reply {
        let sp = match plan.per_request[slice_idx].as_ref() {
            Ok(sp) => sp,
            Err(e) => return Reply::Full(Err(e.clone())),
        };
        for &fi in &sp.fetch_indices {
            if let Err(e) = &fetched[fi] {
                return Reply::Full(Err(e.clone()));
            }
        }
        let parts = plan
            .assemble_parts(&self.catalog, sp)
            .into_iter()
            .map(|(fi, r)| {
                let chunk = fetched[fi].as_ref().expect("errors returned above");
                (Arc::clone(chunk), r)
            })
            .collect();
        Reply::Slice {
            archive: req.archive.clone(),
            member: req.member.clone(),
            range: sp.range.clone(),
            values_per_slice: sp.values_per_slice,
            parts,
        }
    }

    /// Run a registered emulator forward.
    fn answer_emulate(
        &self,
        emulator: &str,
        t_max: usize,
        seed: u64,
    ) -> Result<Response, ServeError> {
        let served = self.catalog.emulator(emulator)?;
        let dataset = served.emulator.emulate(t_max, seed)?;
        Ok(Response::Emulate(dataset))
    }

    /// Answer a catalog/metadata query.
    fn answer_catalog(&self, query: &CatalogQuery) -> Result<Response, ServeError> {
        let member_info = |m: &exaclim_store::MemberEntry| MemberInfo {
            name: m.name.clone(),
            kind: m.kind,
            codec: m.codec,
            t_max: m.t_max,
            values_per_slice: m.values_per_slice,
            chunks: m.chunks.len(),
            snapshot_version: m.snapshot_version,
        };
        let answer = match query {
            CatalogQuery::ListArchives => CatalogAnswer::Archives(
                self.catalog
                    .archives()
                    .iter()
                    .map(|a| ArchiveInfo {
                        name: a.name().to_string(),
                        members: a.members().len(),
                        total_len: a.total_len(),
                    })
                    .collect(),
            ),
            CatalogQuery::ListMembers { archive } => {
                let a = self.catalog.archive(archive)?;
                CatalogAnswer::Members(a.members().iter().map(member_info).collect())
            }
            CatalogQuery::MemberInfo { archive, member } => {
                let a = self.catalog.archive(archive)?;
                let idx = a.member_index(member)?;
                CatalogAnswer::Member(member_info(&a.members()[idx]))
            }
            CatalogQuery::ListEmulators => CatalogAnswer::Emulators(
                self.catalog
                    .emulators()
                    .iter()
                    .map(|e| EmulatorInfo {
                        name: e.name.clone(),
                        lmax: e.emulator.config.lmax,
                        grid: (e.emulator.ntheta, e.emulator.nphi),
                        parameter_bytes: e.emulator.parameter_bytes(),
                    })
                    .collect(),
            ),
        };
        Ok(Response::Catalog(answer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_store::{ArchiveReader, ArchiveWriter, FieldMeta};
    use std::io::Cursor;

    fn archive_bytes(codec: Codec, vps: usize, t_max: usize, chunk_t: usize) -> Vec<u8> {
        let data: Vec<f64> = (0..vps * t_max)
            .map(|i| 260.0 + 30.0 * (i as f64 * 0.013).sin())
            .collect();
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("t2m", codec, FieldMeta::default(), vps, chunk_t, &data)
            .unwrap();
        w.finish().unwrap().0.into_inner()
    }

    fn server_with(codec: Codec, cache_bytes: usize) -> (Server, Vec<u8>) {
        let bytes = archive_bytes(codec, 6, 23, 4);
        let mut catalog = Catalog::new();
        catalog.open_archive_bytes("a", bytes.clone()).unwrap();
        (
            Server::new(
                catalog,
                ServeConfig {
                    cache_bytes,
                    cache_shards: 4,
                    ..ServeConfig::default()
                },
            ),
            bytes,
        )
    }

    fn slice(range: Range<u64>) -> Request {
        Request::Slice(SliceRequest {
            archive: "a".to_string(),
            member: "t2m".to_string(),
            range,
        })
    }

    #[test]
    fn batched_slices_match_sequential_reader_bitwise() {
        for codec in Codec::ALL {
            let (server, bytes) = server_with(codec, 1 << 20);
            let mut reader = ArchiveReader::new(Cursor::new(bytes)).unwrap();
            let ranges = [0..23u64, 2..9, 8..9, 0..4, 20..23, 5..5];
            let batch: Vec<Request> = ranges.iter().map(|r| slice(r.clone())).collect();
            for r in server.handle_batch(&batch).into_iter().zip(&ranges) {
                let (Ok(Response::Slice(got)), range) = r else {
                    panic!("slice failed");
                };
                let want = reader.read_field_slices("t2m", range.clone()).unwrap();
                assert_eq!(got.values, want, "{} {range:?}", codec.label());
            }
        }
    }

    #[test]
    fn warm_reads_hit_the_cache() {
        let (server, _) = server_with(Codec::F32Shuffle, 1 << 20);
        let batch = vec![slice(0..23)];
        server.handle_batch(&batch);
        let cold = server.cache_stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, 6); // ceil(23 / 4) chunks
        server.handle_batch(&batch);
        let warm = server.cache_stats();
        assert_eq!(warm.hits, 6);
        assert_eq!(warm.misses, 6, "no new misses on the warm pass");
    }

    #[test]
    fn mixed_batch_answers_everything_in_order() {
        let (server, _) = server_with(Codec::F32, 1 << 20);
        let batch = vec![
            Request::Catalog(CatalogQuery::ListArchives),
            slice(1..6),
            Request::Catalog(CatalogQuery::MemberInfo {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            }),
            Request::Emulate {
                emulator: "none".to_string(),
                t_max: 10,
                seed: 0,
            },
        ];
        let responses = server.handle_batch(&batch);
        assert!(matches!(
            responses[0],
            Ok(Response::Catalog(CatalogAnswer::Archives(_)))
        ));
        assert!(matches!(responses[1], Ok(Response::Slice(_))));
        let Ok(Response::Catalog(CatalogAnswer::Member(info))) = &responses[2] else {
            panic!("member info failed");
        };
        assert_eq!((info.t_max, info.values_per_slice, info.chunks), (23, 6, 6));
        assert!(matches!(responses[3], Err(ServeError::UnknownEmulator(_))));
        let stats = server.stats();
        assert_eq!(
            (stats.slices, stats.catalog_queries, stats.errors),
            (1, 2, 1)
        );
    }

    #[test]
    fn coalescing_is_visible_in_stats() {
        let (server, _) = server_with(Codec::Raw64, 1 << 20);
        // 8 requests over the same two chunks.
        let batch: Vec<Request> = (0..8).map(|_| slice(0..8)).collect();
        server.handle_batch(&batch);
        let stats = server.stats();
        assert_eq!(stats.chunk_touches, 16);
        assert_eq!(stats.chunk_fetches, 2);
    }

    #[test]
    fn per_request_errors_do_not_poison_the_batch() {
        let (server, _) = server_with(Codec::F16, 1 << 20);
        let batch = vec![slice(0..5), slice(4..99), slice(6..8)];
        let responses = server.handle_batch(&batch);
        assert!(responses[0].is_ok());
        assert!(matches!(responses[1], Err(ServeError::Archive(_))));
        assert!(responses[2].is_ok());
    }

    #[test]
    fn expired_deadlines_are_skipped_and_counted() {
        let (server, _) = server_with(Codec::Raw64, 1 << 20);
        let batch = vec![
            // Zero budget ⇒ always expired, even in-process.
            Request::WithDeadline {
                budget_ms: 0,
                request: Box::new(slice(0..4)),
            },
            // A generous budget ⇒ answered normally.
            Request::WithDeadline {
                budget_ms: 60_000,
                request: Box::new(slice(0..4)),
            },
            Request::WithDeadline {
                budget_ms: 60_000,
                request: Box::new(Request::WithDeadline {
                    budget_ms: 60_000,
                    request: Box::new(Request::Stats),
                }),
            },
        ];
        let responses = server.handle_batch(&batch);
        assert_eq!(responses[0], Err(ServeError::DeadlineExpired));
        assert!(matches!(responses[1], Ok(Response::Slice(_))));
        assert!(matches!(responses[2], Err(ServeError::BadRequest(_))));
        let stats = server.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.slices, 1);
    }

    #[test]
    fn zero_budget_cache_still_serves_correct_bytes() {
        let (server, bytes) = server_with(Codec::F32Shuffle, 0);
        let mut reader = ArchiveReader::new(Cursor::new(bytes)).unwrap();
        for _ in 0..3 {
            let responses = server.handle_batch(&[slice(3..17)]);
            let Ok(Response::Slice(got)) = &responses[0] else {
                panic!()
            };
            assert_eq!(got.values, reader.read_field_slices("t2m", 3..17).unwrap());
        }
        assert_eq!(server.cache_stats().hits, 0);
    }
}
