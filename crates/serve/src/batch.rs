//! Request batching: coalesce slice reads that touch the same chunk.
//!
//! A batch of `(archive, member, time-range)` slice requests usually
//! overlaps heavily — clients page through the same members, and ranges
//! that cross chunk seams touch neighbouring chunks twice. Planning a
//! batch resolves every request to `(archive, member)` indices, walks the
//! chunk map ([`exaclim_store::MemberEntry::chunks_for_range`]), and
//! deduplicates the union of touched chunks, so each distinct chunk is
//! fetched and decoded **once** per batch no matter how many requests
//! reference it. Responses are then assembled from the shared decoded
//! chunks.
//!
//! The plan is deterministic: fetches appear in first-touch order, and
//! each request records which fetches it consumes, in time order — which
//! is what makes batched responses bit-identical to sequential
//! [`exaclim_store::ArchiveReader::read_field_slices`] reads.

use crate::cache::ChunkKey;
use crate::catalog::Catalog;
use crate::error::ServeError;
use exaclim_store::{ArchiveError, MemberKind};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// One field-slice request: time steps `range` of `member` in `archive`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceRequest {
    /// Catalog name of the archive.
    pub archive: String,
    /// Member name within the archive.
    pub member: String,
    /// Half-open time-step range to read.
    pub range: Range<u64>,
}

/// A validated slice request with its chunk fetches resolved.
#[derive(Debug, Clone)]
pub struct SlicePlan {
    /// Catalog index of the archive.
    pub archive: usize,
    /// Member index within the archive.
    pub member: usize,
    /// The requested time range.
    pub range: Range<u64>,
    /// Values per time slice of the member (response geometry).
    pub values_per_slice: u64,
    /// Indices into [`BatchPlan::fetches`], in chunk-time order.
    pub fetch_indices: Vec<usize>,
}

/// The coalesced execution plan of one batch of slice requests.
#[derive(Debug)]
pub struct BatchPlan {
    /// Unique chunks the batch needs, in first-touch order.
    pub fetches: Vec<ChunkKey>,
    /// Per-request plans, aligned with the input order. Requests that fail
    /// validation (unknown names, out-of-range slices) carry their error.
    pub per_request: Vec<Result<SlicePlan, ServeError>>,
    /// Total chunk touches before deduplication; `touches −
    /// fetches.len()` chunk decodes were saved by coalescing.
    pub touches: usize,
}

impl BatchPlan {
    /// Plan a batch against `catalog`. Never fails as a whole — invalid
    /// requests surface individually in [`BatchPlan::per_request`].
    pub fn build(catalog: &Catalog, requests: &[SliceRequest]) -> Self {
        let mut fetches: Vec<ChunkKey> = Vec::new();
        let mut index_of: HashMap<ChunkKey, usize> = HashMap::new();
        let mut touches = 0usize;
        let per_request = requests
            .iter()
            .map(|req| {
                let archive_idx = catalog.archive_index(&req.archive)?;
                let archive = &catalog.archives()[archive_idx];
                let member_idx = archive.member_index(&req.member)?;
                let m = &archive.members()[member_idx];
                if m.kind != MemberKind::Field {
                    return Err(ServeError::Archive(ArchiveError::BadRequest(format!(
                        "member `{}` is not a field",
                        req.member
                    ))));
                }
                if req.range.start > req.range.end || req.range.end > m.t_max {
                    return Err(ServeError::Archive(ArchiveError::BadRequest(format!(
                        "slice range {}..{} out of bounds for {} time steps",
                        req.range.start, req.range.end, m.t_max
                    ))));
                }
                let fetch_indices: Vec<usize> = m
                    .chunks_for_range(req.range.start, req.range.end)
                    .into_iter()
                    .map(|chunk_idx| {
                        touches += 1;
                        let key = ChunkKey {
                            archive: archive_idx as u32,
                            member: member_idx as u32,
                            chunk: chunk_idx as u32,
                        };
                        *index_of.entry(key).or_insert_with(|| {
                            fetches.push(key);
                            fetches.len() - 1
                        })
                    })
                    .collect();
                Ok(SlicePlan {
                    archive: archive_idx,
                    member: member_idx,
                    range: req.range.clone(),
                    values_per_slice: m.values_per_slice,
                    fetch_indices,
                })
            })
            .collect();
        Self {
            fetches,
            per_request,
            touches,
        }
    }

    /// The `(fetch index, value range)` parts whose in-order
    /// concatenation is the request's response — the geometry of
    /// [`BatchPlan::assemble`] without touching any values, so callers
    /// can reference the decoded chunks (zero-copy streaming) instead of
    /// copying out of them.
    pub fn assemble_parts(
        &self,
        catalog: &Catalog,
        plan: &SlicePlan,
    ) -> Vec<(usize, Range<usize>)> {
        let entries = &catalog.archives()[plan.archive].members()[plan.member].chunks;
        let vps = plan.values_per_slice as usize;
        plan.fetch_indices
            .iter()
            .map(|&fi| {
                let key = self.fetches[fi];
                let c = entries[key.chunk as usize];
                let lo = plan.range.start.max(c.t0);
                let hi = plan.range.end.min(c.t0 + u64::from(c.t_len));
                let a = (lo - c.t0) as usize * vps;
                let b = (hi - c.t0) as usize * vps;
                (fi, a..b)
            })
            .collect()
    }

    /// Assemble one request's response values from the batch's decoded
    /// chunks (`chunks` aligned with [`BatchPlan::fetches`]). Concatenates
    /// each overlapping chunk's in-range part in time order — exactly what
    /// [`exaclim_store::ArchiveReader::read_field_slices`] does, hence
    /// bit-identical output.
    pub fn assemble(&self, catalog: &Catalog, plan: &SlicePlan, chunks: &[Arc<[f64]>]) -> Vec<f64> {
        let vps = plan.values_per_slice as usize;
        let mut out = Vec::with_capacity((plan.range.end - plan.range.start) as usize * vps);
        for (fi, r) in self.assemble_parts(catalog, plan) {
            out.extend_from_slice(&chunks[fi][r]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
    use std::io::Cursor;

    fn catalog_with(vps: usize, t_max: usize, chunk_t: usize) -> (Catalog, Vec<f64>) {
        let data: Vec<f64> = (0..vps * t_max).map(|i| i as f64 * 0.5).collect();
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("f", Codec::Raw64, FieldMeta::default(), vps, chunk_t, &data)
            .unwrap();
        let (cursor, _) = w.finish().unwrap();
        let mut c = Catalog::new();
        c.open_archive_bytes("a", cursor.into_inner()).unwrap();
        (c, data)
    }

    fn req(range: Range<u64>) -> SliceRequest {
        SliceRequest {
            archive: "a".to_string(),
            member: "f".to_string(),
            range,
        }
    }

    #[test]
    fn overlapping_requests_coalesce() {
        let (catalog, _) = catalog_with(3, 20, 4); // 5 chunks of 4 steps
                                                   // Three requests all inside chunks 0–2; chunk 1 touched 3 times.
        let plan = BatchPlan::build(&catalog, &[req(0..8), req(2..6), req(4..12)]);
        assert_eq!(plan.touches, 2 + 2 + 2);
        assert_eq!(plan.fetches.len(), 3, "chunks 0, 1, 2 fetched once each");
        for p in &plan.per_request {
            assert!(p.is_ok());
        }
    }

    #[test]
    fn assembly_matches_sequential_read() {
        let (catalog, data) = catalog_with(5, 17, 4);
        let ranges = [0..17u64, 3..9, 4..4, 15..17, 0..1];
        let reqs: Vec<SliceRequest> = ranges.iter().map(|r| req(r.clone())).collect();
        let plan = BatchPlan::build(&catalog, &reqs);
        let archive = &catalog.archives()[0];
        let chunks: Vec<std::sync::Arc<[f64]>> = plan
            .fetches
            .iter()
            .map(|k| {
                archive
                    .fetch_field_chunk(0, k.chunk as usize)
                    .unwrap()
                    .into()
            })
            .collect();
        for (r, p) in ranges.iter().zip(&plan.per_request) {
            let got = plan.assemble(&catalog, p.as_ref().unwrap(), &chunks);
            let want = &data[r.start as usize * 5..r.end as usize * 5];
            assert_eq!(got, want, "range {r:?}");
        }
    }

    #[test]
    fn invalid_requests_fail_individually() {
        let (catalog, _) = catalog_with(3, 10, 4);
        let bad_member = SliceRequest {
            member: "nope".to_string(),
            ..req(0..1)
        };
        let bad_archive = SliceRequest {
            archive: "nope".to_string(),
            ..req(0..1)
        };
        let plan = BatchPlan::build(&catalog, &[req(0..10), bad_member, req(5..99), bad_archive]);
        assert!(plan.per_request[0].is_ok());
        assert!(matches!(
            plan.per_request[1],
            Err(ServeError::Archive(ArchiveError::MemberNotFound(_)))
        ));
        assert!(matches!(
            plan.per_request[2],
            Err(ServeError::Archive(ArchiveError::BadRequest(_)))
        ));
        assert!(matches!(
            plan.per_request[3],
            Err(ServeError::UnknownArchive(_))
        ));
        // The valid request still plans: 3 chunks.
        assert_eq!(plan.fetches.len(), 3);
    }
}
