//! Sharded LRU caches of decoded values: chunks and derived products.
//!
//! [`ValueCache`] is generic over its key ([`CacheKey`]) and stores
//! immutable `Arc<[f64]>` blocks: a hit hands out another reference to
//! bytes that can never change, so readers can never observe a torn or
//! partially evicted entry, and eviction merely drops the cache's own
//! reference while in-flight requests keep theirs alive. Two
//! instantiations serve the server:
//!
//! * [`ChunkCache`] — whole decoded chunks, the unit
//!   [`exaclim_store::ArchiveReader::read_field_chunk`] produces, keyed
//!   by `(archive, member, chunk)` indices ([`ChunkKey`]),
//! * [`ProductCache`] — evaluated derived products of the scenario
//!   engine, keyed by the canonical descriptor hash
//!   ([`crate::product::ProductKey`]).
//!
//! **Eviction** is byte-budgeted LRU per shard: the configured budget is
//! split evenly across shards, and an insert that would overflow its shard
//! evicts least-recently-used entries until the new value fits. A value
//! larger than one shard's budget is served but never cached. Keys are
//! spread across shards by a fixed multiplicative hash of
//! [`CacheKey::pack`], so two requests for different entries almost
//! always lock different shards.
//!
//! **Single-flight.** Concurrent misses on the same key from *different*
//! batches (the batcher already dedups within one) coalesce through a
//! reservation map: the first fetcher becomes the **leader**
//! ([`Fetch::Lead`]) and computes; every racer gets a [`Fetch::Wait`]
//! handle and parks on the leader's [`Flight`] instead of recomputing.
//! The leader publishes its result (inserting into the cache first,
//! removing the reservation second — under the reservation lock — so a
//! key is always either cached or reserved once a computation has
//! started), and a dropped leader fails its waiters rather than hanging
//! them. The reservation lock is only ever touched on a cache miss; hits
//! stay on the lock-free shard fast path.

use crate::error::ServeError;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cache key: small, copyable, and reducible to a well-mixed `u64` for
/// shard selection.
pub trait CacheKey: Copy + Eq + std::hash::Hash + Send + Sync + std::fmt::Debug + 'static {
    /// Pack the key into one `u64`; the cache spreads shards by a
    /// multiplicative hash of this value, so distinct keys should pack
    /// distinctly (collisions cost shard balance, never correctness).
    fn pack(&self) -> u64;
}

/// Identity of one decoded chunk in the cache.
///
/// All three components are *indices* (into the catalog's archive list and
/// the archive's member/chunk tables), not names: the serving layer
/// resolves names once per request, and the per-chunk hot path stays
/// string-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Catalog index of the archive.
    pub archive: u32,
    /// Member index within the archive directory.
    pub member: u32,
    /// Chunk index within the member.
    pub chunk: u32,
}

impl CacheKey for ChunkKey {
    fn pack(&self) -> u64 {
        (u64::from(self.archive) << 44) ^ (u64::from(self.member) << 22) ^ u64::from(self.chunk)
    }
}

impl CacheKey for crate::product::ProductKey {
    fn pack(&self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }
}

/// One cached value block with its LRU stamp.
struct Entry {
    values: Arc<[f64]>,
    /// Last-touch tick; smallest stamp in a shard is the LRU entry.
    stamp: u64,
}

/// Entries and bookkeeping of one shard, guarded by one mutex.
struct Shard<K> {
    map: HashMap<K, Entry>,
    /// Decoded bytes currently held (8 × values).
    bytes: usize,
    /// Monotonic touch counter feeding the stamps.
    tick: u64,
}

/// Point-in-time counters of one [`ValueCache`] instance. The chunk and
/// product caches each keep their own, so chunk traffic and product
/// traffic never mix in one set of counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts rejected because the value alone exceeds a shard budget.
    pub oversize_rejects: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_chunks: u64,
    /// Misses that became single-flight leaders (computed the value).
    pub flight_leads: u64,
    /// Misses that coalesced onto an in-flight computation instead of
    /// recomputing — cross-batch stampede work the reservation map saved.
    pub flight_waits: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, byte-budgeted LRU cache of immutable `Arc<[f64]>` blocks
/// with single-flight stampede protection, generic over its key.
///
/// ```
/// use exaclim_serve::cache::{ChunkCache, ChunkKey};
/// use std::sync::Arc;
///
/// let cache = ChunkCache::new(1 << 20, 4); // 1 MiB budget, ≤ 4 shards
/// let key = ChunkKey { archive: 0, member: 0, chunk: 7 };
/// assert!(cache.get(key).is_none());
/// cache.insert(key, Arc::from(vec![1.0, 2.0, 3.0]));
/// assert_eq!(cache.get(key).unwrap().as_ref(), &[1.0, 2.0, 3.0]);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct ValueCache<K: CacheKey> {
    shards: Vec<Mutex<Shard<K>>>,
    /// Byte budget of each shard (total budget / shard count).
    shard_budget: usize,
    /// Reservations of values currently being computed, keyed like the
    /// cache. Touched only on misses; completion removes the entry under
    /// this lock *after* the cache insert, so post-completion fetchers
    /// always find the cached value.
    inflight: Mutex<HashMap<K, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    oversize_rejects: AtomicU64,
    flight_leads: AtomicU64,
    flight_waits: AtomicU64,
}

/// The cache of decoded field chunks, keyed by [`ChunkKey`].
pub type ChunkCache = ValueCache<ChunkKey>;

/// The cache of evaluated derived products, keyed by
/// [`crate::product::ProductKey`].
pub type ProductCache = ValueCache<crate::product::ProductKey>;

/// One in-flight computation, shared between its leader and waiters.
pub struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader published its result (waiters clone it).
    Done(Result<Arc<[f64]>, ServeError>),
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &*self.state.lock() {
            FlightState::Pending => "pending",
            FlightState::Done(Ok(_)) => "done",
            FlightState::Done(Err(_)) => "failed",
        };
        f.debug_struct("Flight").field("state", &state).finish()
    }
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        })
    }

    /// Block until the leader publishes, then return its result. The
    /// leader is always another thread actively computing on its own
    /// worker (never queued behind this one), so waiting cannot deadlock;
    /// a leader that dies publishes an error from its guard's `Drop`.
    pub fn wait(&self) -> Result<Arc<[f64]>, ServeError> {
        let mut state = self.state.lock();
        loop {
            if let FlightState::Done(result) = &*state {
                return result.clone();
            }
            self.done.wait(&mut state);
        }
    }

    fn publish(&self, result: Result<Arc<[f64]>, ServeError>) {
        *self.state.lock() = FlightState::Done(result);
        self.done.notify_all();
    }
}

/// Outcome of [`ValueCache::begin_fetch`].
#[derive(Debug)]
pub enum Fetch<'a, K: CacheKey> {
    /// Cache hit: the stored values.
    Ready(Arc<[f64]>),
    /// Cache miss with no computation in flight: the caller is the leader
    /// and **must** resolve the guard via [`FlightLead::finish`]
    /// (dropping it fails the flight, so waiters never hang).
    Lead(FlightLead<'a, K>),
    /// Another fetch is already computing this value: park on it via
    /// [`Flight::wait`].
    Wait(Arc<Flight>),
}

/// Leadership of one in-flight computation; ties the reservation to the
/// cache it was made in.
#[derive(Debug)]
pub struct FlightLead<'a, K: CacheKey> {
    cache: &'a ValueCache<K>,
    key: K,
    flight: Arc<Flight>,
    resolved: bool,
}

impl<K: CacheKey> FlightLead<'_, K> {
    /// Publish the result: a success is inserted into the cache (before
    /// the reservation is released) and handed to every waiter; an error
    /// is handed to the waiters as-is.
    pub fn finish(mut self, result: Result<Arc<[f64]>, ServeError>) {
        self.resolved = true;
        self.cache.complete_flight(self.key, &self.flight, result);
    }
}

impl<K: CacheKey> Drop for FlightLead<'_, K> {
    fn drop(&mut self) {
        if !self.resolved {
            // The leader unwound (panic mid-computation) — fail the
            // waiters instead of leaving them parked forever.
            self.cache.complete_flight(
                self.key,
                &self.flight,
                Err(ServeError::BadRequest(
                    "chunk decode abandoned by its leader".to_string(),
                )),
            );
        }
    }
}

impl<K: CacheKey> std::fmt::Debug for ValueCache<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .finish()
    }
}

impl<K: CacheKey> ValueCache<K> {
    /// Bytes of budget below which a shard is not worth its lock: the
    /// shard count is reduced until every shard holds at least this much
    /// (or one shard remains), so small budgets degrade to fewer shards
    /// instead of shards too small to fit any entry.
    pub const MIN_SHARD_BUDGET: usize = 8 << 20;

    /// Build a cache holding at most `budget_bytes` of decoded values,
    /// split evenly across up to `shards` independently locked shards
    /// (clamped to `1..=1024`, and reduced so each shard gets at least
    /// [`ValueCache::MIN_SHARD_BUDGET`] — a tiny budget becomes one
    /// shard, never many useless ones). A value larger than one shard's
    /// share is served but not cached. A budget of 0 disables caching:
    /// every `get` misses and every `insert` is dropped, which is the
    /// "cold" configuration the benches compare against.
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards
            .min(budget_bytes.div_ceil(Self::MIN_SHARD_BUDGET).max(1))
            .clamp(1, 1024);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                        tick: 0,
                    })
                })
                .collect(),
            shard_budget: budget_bytes / shards,
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            oversize_rejects: AtomicU64::new(0),
            flight_leads: AtomicU64::new(0),
            flight_waits: AtomicU64::new(0),
        }
    }

    /// Shard owning `key` (fixed multiplicative hash of the packed key).
    fn shard_of(&self, key: K) -> &Mutex<Shard<K>> {
        let h = key.pack().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up an entry, refreshing its LRU position on a hit.
    pub fn get(&self, key: K) -> Option<Arc<[f64]>> {
        let mut shard = self.shard_of(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.stamp = tick;
                let values = Arc::clone(&entry.values);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(values)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up an entry without touching the hit/miss counters or the LRU
    /// stamp — the double-check inside [`ValueCache::begin_fetch`], whose
    /// first (counted) lookup already classified this fetch.
    fn peek(&self, key: K) -> Option<Arc<[f64]>> {
        let shard = self.shard_of(key).lock();
        shard.map.get(&key).map(|e| Arc::clone(&e.values))
    }

    /// Start resolving a value with cross-batch stampede protection.
    ///
    /// * [`Fetch::Ready`] — cached; nothing to do.
    /// * [`Fetch::Lead`] — this caller owns the (single) computation; it
    ///   must call [`FlightLead::finish`] with the outcome.
    /// * [`Fetch::Wait`] — some other caller is computing this very
    ///   value; [`Flight::wait`] returns its published result.
    ///
    /// The fast path is one counted cache lookup — identical to
    /// [`ValueCache::get`] — so hits never touch the reservation lock.
    /// On a miss, the reservation map is consulted (and the cache
    /// re-checked) under the reservation lock; because a completing
    /// leader inserts into the cache *before* releasing its reservation,
    /// every fetch lands in exactly one of the three arms and at most one
    /// computation per key can be in flight.
    pub fn begin_fetch(&self, key: K) -> Fetch<'_, K> {
        if let Some(values) = self.get(key) {
            return Fetch::Ready(values);
        }
        let mut inflight = self.inflight.lock();
        // Double-check: a leader may have completed between the miss
        // above and taking the reservation lock.
        if let Some(values) = self.peek(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // The first lookup counted a miss for what is now a hit;
            // leave both counts — they describe what each lookup saw.
            return Fetch::Ready(values);
        }
        if let Some(flight) = inflight.get(&key) {
            self.flight_waits.fetch_add(1, Ordering::Relaxed);
            return Fetch::Wait(Arc::clone(flight));
        }
        let flight = Flight::new();
        inflight.insert(key, Arc::clone(&flight));
        self.flight_leads.fetch_add(1, Ordering::Relaxed);
        Fetch::Lead(FlightLead {
            cache: self,
            key,
            flight,
            resolved: false,
        })
    }

    /// Publish a leader's result and release its reservation. The cache
    /// insert strictly precedes the reservation removal, so a racer that
    /// misses the cache and then takes the reservation lock either finds
    /// the flight still registered (→ waits) or, if it is gone, is
    /// guaranteed to find the value cached by its double-check. The
    /// insert itself (shard lock + possible LRU eviction loop) runs
    /// *outside* the reservation lock so leaders completing unrelated
    /// keys never serialize on it.
    fn complete_flight(
        &self,
        key: K,
        flight: &Arc<Flight>,
        result: Result<Arc<[f64]>, ServeError>,
    ) {
        if let Ok(values) = &result {
            self.insert(key, Arc::clone(values));
        }
        self.inflight.lock().remove(&key);
        flight.publish(result);
    }

    /// Insert a value, evicting LRU entries of its shard until it fits.
    /// Re-inserting an existing key refreshes the value (the bytes are
    /// identical by construction — both sides computed the same
    /// deterministic function of the same inputs). Values larger than one
    /// shard's budget are not cached.
    pub fn insert(&self, key: K, values: Arc<[f64]>) {
        let cost = std::mem::size_of_val(values.as_ref());
        if cost > self.shard_budget {
            self.oversize_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_of(key).lock();
            if let Some(old) = shard.map.remove(&key) {
                shard.bytes -= std::mem::size_of_val(old.values.as_ref());
            }
            while shard.bytes + cost > self.shard_budget {
                // O(n) LRU scan: eviction only triggers once a shard is
                // full, and shards stay small under tight budgets — the
                // regime where this runs at all.
                let Some((&lru, _)) = shard.map.iter().min_by_key(|(_, e)| e.stamp) else {
                    break;
                };
                let old = shard.map.remove(&lru).expect("lru key present");
                shard.bytes -= std::mem::size_of_val(old.values.as_ref());
                evicted += 1;
            }
            shard.tick += 1;
            let stamp = shard.tick;
            shard.bytes += cost;
            shard.map.insert(key, Entry { values, stamp });
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every entry, keeping the lifetime counters. Benches use this
    /// to re-measure the cold path on a warmed server.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0u64;
        let mut resident_chunks = 0u64;
        for shard in &self.shards {
            let s = shard.lock();
            resident_bytes += s.bytes as u64;
            resident_chunks += s.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            oversize_rejects: self.oversize_rejects.load(Ordering::Relaxed),
            resident_bytes,
            resident_chunks,
            flight_leads: self.flight_leads.load(Ordering::Relaxed),
            flight_waits: self.flight_waits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(chunk: u32) -> ChunkKey {
        ChunkKey {
            archive: 0,
            member: 0,
            chunk,
        }
    }

    fn chunk_of(len: usize, fill: f64) -> Arc<[f64]> {
        Arc::from(vec![fill; len])
    }

    #[test]
    fn hit_returns_inserted_values() {
        let cache = ChunkCache::new(1 << 16, 2);
        cache.insert(key(1), chunk_of(8, 1.5));
        assert_eq!(cache.get(key(1)).unwrap().as_ref(), &[1.5; 8]);
        assert!(cache.get(key(2)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident_chunks), (1, 1, 1));
    }

    #[test]
    fn lru_entry_is_evicted_first() {
        // Single shard, room for exactly two 8-value chunks.
        let cache = ChunkCache::new(2 * 8 * 8, 1);
        cache.insert(key(1), chunk_of(8, 1.0));
        cache.insert(key(2), chunk_of(8, 2.0));
        // Touch 1 so 2 becomes LRU.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), chunk_of(8, 3.0));
        assert!(cache.get(key(1)).is_some(), "recently used stays");
        assert!(cache.get(key(2)).is_none(), "LRU evicted");
        assert!(cache.get(key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ChunkCache::new(0, 4);
        cache.insert(key(1), chunk_of(4, 1.0));
        assert!(cache.get(key(1)).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().oversize_rejects, 1);
    }

    #[test]
    fn oversize_chunks_are_served_uncached() {
        let cache = ChunkCache::new(64, 1); // budget: one 8-value chunk
        cache.insert(key(1), chunk_of(100, 1.0));
        assert!(cache.get(key(1)).is_none());
        assert_eq!(cache.stats().oversize_rejects, 1);
        // Small chunks still cache fine.
        cache.insert(key(2), chunk_of(4, 2.0));
        assert!(cache.get(key(2)).is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = ChunkCache::new(1 << 12, 1);
        cache.insert(key(1), chunk_of(16, 1.0));
        cache.insert(key(1), chunk_of(16, 1.0));
        let s = cache.stats();
        assert_eq!(s.resident_chunks, 1);
        assert_eq!(s.resident_bytes, 16 * 8);
    }

    #[test]
    fn budget_is_respected_under_churn() {
        let budget = 4 * 32 * 8;
        let cache = ChunkCache::new(budget, 2);
        for i in 0..200 {
            cache.insert(key(i), chunk_of(32, f64::from(i)));
        }
        let s = cache.stats();
        assert!(s.resident_bytes <= budget as u64);
        assert!(s.evictions > 0);
        // Whatever survived reads back intact.
        for i in 0..200 {
            if let Some(v) = cache.get(key(i)) {
                assert!(v.iter().all(|&x| x == f64::from(i)));
            }
        }
    }

    #[test]
    fn small_budgets_collapse_to_fewer_shards() {
        // A budget far below MIN_SHARD_BUDGET × shards must not be diced
        // into shards too small to hold a chunk: 16 requested shards over
        // a 2-chunk budget become one shard holding both chunks.
        let cache = ChunkCache::new(2 * 64 * 8, 16);
        cache.insert(key(1), chunk_of(64, 1.0));
        cache.insert(key(2), chunk_of(64, 2.0));
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(2)).is_some());
        assert_eq!(cache.stats().oversize_rejects, 0);
        // Large budgets keep the requested shard count.
        let cache = ChunkCache::new(256 << 20, 16);
        assert_eq!(cache.shards.len(), 16);
    }

    #[test]
    fn single_flight_leads_then_serves_from_cache() {
        let cache = ChunkCache::new(1 << 16, 2);
        // First fetch leads…
        let Fetch::Lead(lead) = cache.begin_fetch(key(1)) else {
            panic!("first fetch must lead");
        };
        // …a racing fetch waits on the same flight…
        let Fetch::Wait(flight) = cache.begin_fetch(key(1)) else {
            panic!("racing fetch must wait");
        };
        // …and an unrelated key gets its own lead.
        let Fetch::Lead(other) = cache.begin_fetch(key(2)) else {
            panic!("unrelated key must lead");
        };
        other.finish(Ok(chunk_of(4, 2.0)));
        lead.finish(Ok(chunk_of(4, 1.0)));
        assert_eq!(flight.wait().unwrap().as_ref(), &[1.0; 4]);
        // Post-completion fetches are plain hits.
        let Fetch::Ready(v) = cache.begin_fetch(key(1)) else {
            panic!("completed chunk must be cached");
        };
        assert_eq!(v.as_ref(), &[1.0; 4]);
        let s = cache.stats();
        assert_eq!((s.flight_leads, s.flight_waits), (2, 1));
    }

    #[test]
    fn dropped_leader_fails_waiters_instead_of_hanging() {
        let cache = ChunkCache::new(1 << 16, 1);
        let Fetch::Lead(lead) = cache.begin_fetch(key(7)) else {
            panic!()
        };
        let Fetch::Wait(flight) = cache.begin_fetch(key(7)) else {
            panic!()
        };
        drop(lead); // leader panicked / unwound
        assert!(flight.wait().is_err());
        // The reservation is released: the next fetch leads afresh.
        assert!(matches!(cache.begin_fetch(key(7)), Fetch::Lead(_)));
    }

    #[test]
    fn failed_decode_propagates_to_waiters_and_is_not_cached() {
        let cache = ChunkCache::new(1 << 16, 1);
        let Fetch::Lead(lead) = cache.begin_fetch(key(3)) else {
            panic!()
        };
        let Fetch::Wait(flight) = cache.begin_fetch(key(3)) else {
            panic!()
        };
        lead.finish(Err(crate::error::ServeError::BadRequest("boom".into())));
        assert!(flight.wait().is_err());
        assert_eq!(cache.stats().resident_chunks, 0);
        assert!(matches!(cache.begin_fetch(key(3)), Fetch::Lead(_)));
    }

    #[test]
    fn zero_budget_single_flight_still_hands_waiters_the_value() {
        let cache = ChunkCache::new(0, 4);
        let Fetch::Lead(lead) = cache.begin_fetch(key(1)) else {
            panic!()
        };
        let Fetch::Wait(flight) = cache.begin_fetch(key(1)) else {
            panic!()
        };
        lead.finish(Ok(chunk_of(4, 9.0)));
        // Waiters share the flight's value even though nothing is cached…
        assert_eq!(flight.wait().unwrap().as_ref(), &[9.0; 4]);
        // …and with no cache to land in, the next fetch decodes again.
        assert!(matches!(cache.begin_fetch(key(1)), Fetch::Lead(_)));
    }

    #[test]
    fn concurrent_stampede_coalesces_to_one_lead() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = std::sync::Arc::new(ChunkCache::new(1 << 20, 4));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let decodes = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let barrier = std::sync::Arc::clone(&barrier);
                let decodes = std::sync::Arc::clone(&decodes);
                std::thread::spawn(move || -> Arc<[f64]> {
                    barrier.wait();
                    match cache.begin_fetch(key(42)) {
                        Fetch::Ready(v) => v,
                        Fetch::Wait(flight) => flight.wait().unwrap(),
                        Fetch::Lead(lead) => {
                            decodes.fetch_add(1, Ordering::SeqCst);
                            let v = chunk_of(16, 42.0);
                            lead.finish(Ok(Arc::clone(&v)));
                            v
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().as_ref(), &[42.0; 16]);
        }
        assert_eq!(
            decodes.load(Ordering::SeqCst),
            1,
            "exactly one thread may decode a stampeded chunk"
        );
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let cache = ChunkCache::new(1 << 12, 1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(key(1), chunk_of(4, 0.0));
        let _ = cache.get(key(1));
        let _ = cache.get(key(2));
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn product_cache_instantiates_independently() {
        use crate::product::{ProductDescriptor, ProductSource, ProductStat};
        let products = ProductCache::new(1 << 16, 2);
        let d = ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "m".to_string(),
            },
            stat: ProductStat::MeanStd,
            time: None,
            space: None,
        };
        let Fetch::Lead(lead) = products.begin_fetch(d.key()) else {
            panic!("first product fetch must lead");
        };
        lead.finish(Ok(chunk_of(2, 3.5)));
        let Fetch::Ready(v) = products.begin_fetch(d.key()) else {
            panic!("product must be cached");
        };
        assert_eq!(v.as_ref(), &[3.5; 2]);
        let s = products.stats();
        assert_eq!((s.hits, s.misses, s.flight_leads), (1, 1, 1));
    }
}
