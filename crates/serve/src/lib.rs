//! # exaclim-serve
//!
//! The serving layer of the reproduction — the ROADMAP's north-star
//! workload. A long-running process opens ECA1 archives and trained
//! emulator snapshots once, then answers three request kinds at scale:
//!
//! * **field slices** — `(archive, member, time-range)` reads, assembled
//!   from whole decoded chunks,
//! * **emulation runs** — a registered [`exaclim::TrainedEmulator`] run
//!   forward for `(t_max, seed)`,
//! * **catalog queries** — archive, member, and emulator metadata,
//! * **derived products** — the scenario engine: ensemble fan-out and
//!   server-side statistics (anomaly, mean/std, trend, persistence,
//!   Tukey extremes) over archive members or fresh ensemble output,
//!   described by a [`ProductDescriptor`] and cached by content hash.
//!
//! The architecture is the one `exaclim-store`'s chunk granularity was
//! designed for:
//!
//! * [`catalog`] — the name space of opened archives and registered
//!   emulators; each archive is an [`exaclim_store::Archive`] over a
//!   byte source: memory-mapped files and in-memory buffers serve
//!   **lock-free zero-copy** chunk fetches, arbitrary streams fall back
//!   to a mutex inside the source (decode always outside any lock),
//! * [`cache`] — a sharded LRU of **decoded** chunks keyed by
//!   `(archive, member, chunk)` with byte-budget eviction; entries are
//!   immutable `Arc<[f64]>` values, so hits are zero-copy and eviction can
//!   never tear a response in flight; a **single-flight** reservation map
//!   collapses concurrent cross-batch misses on one chunk into exactly
//!   one decode,
//! * [`batch`] — request coalescing: a batch's slice requests are planned
//!   together and each distinct chunk is fetched and decoded once,
//! * [`product`] / [`scenario`] — the scenario engine: canonical
//!   [`ProductDescriptor`]s hash to [`ProductKey`]s, and evaluation
//!   (ensemble fan-out with decorrelated per-realization seeds, then a
//!   statistic kernel) flows through a product-level single-flight cache
//!   so a stampede on one descriptor computes it exactly once,
//! * [`server`] — the request/response front end, dispatching chunk
//!   resolution and response assembly over the
//!   [`exaclim_runtime::pool`] worker pool (`EXACLIM_THREADS` bounds serve
//!   concurrency exactly as it bounds compute),
//! * [`wire`] — the dependency-free `ECN1` framed wire protocol:
//!   versioned 24-byte headers, CRC32-protected length-capped payloads,
//!   a full request/response codec whose round trip is bit-identical,
//!   and (v3) a zero-copy streaming encoder that cuts large responses
//!   into sequenced, FIN-terminated stream fragments whose payload
//!   bytes are borrowed straight from the chunk cache's value buffers,
//! * [`net`] — the TCP front end over [`wire`]: a [`net::NetServer`]
//!   whose connections are nonblocking frame state machines multiplexed
//!   over the [`exaclim_runtime::reactor`] (thread count constant in the
//!   connection count, per-connection back-pressure with memory bounded
//!   by about one stream fragment, idle reaping, graceful drain via the
//!   wakeup fd — with a thread-per-connection fallback off unix or
//!   under `EXACLIM_REACTOR=0`), and a blocking [`net::Client`] with
//!   connection reuse, pipelining, and transparent stream reassembly,
//! * [`router`] — the scale-out front end: a [`router::Router`] speaks
//!   ECN1 on both sides, placing `(archive, member)` keys on N backend
//!   [`net::NetServer`] shards via a seeded consistent-hash ring with
//!   configurable replication, scatter-gathering each batch over pooled
//!   self-healing clients and reassembling responses bit-identical to a
//!   single server — a dead shard fails over to its keys' replicas,
//! * [`placement`] — the router's layout brains: candidate ring layouts
//!   are scored against [`exaclim_cluster::MachineSpec`] machine models
//!   (emulator keys weighted by the Figure-1 cost model) and validated
//!   by [`exaclim_cluster::simulate_placement`] — load skew, fan-out,
//!   predicted scaling — before the router adopts one.
//!
//! The serving stack is built to **survive chaos**: a seeded fault plan
//! ([`exaclim_runtime::faults`], armed via `EXACLIM_FAULTS`) injects
//! socket failures, decode corruption, and worker panics at named
//! sites; the server contains dispatch panics as typed
//! [`ServeError::Internal`] responses, sheds work past a configurable
//! backlog as retryable [`ServeError::Overloaded`] hints, and skips
//! requests whose (v4) deadline wrapper already expired; the client
//! self-heals with capped decorrelated-jitter retries and
//! reconnect-with-replay when a [`RetryPolicy`] is armed — sound
//! because every serving operation is read-only.
//!
//! Served bytes are **bit-identical** to sequential
//! [`exaclim_store::ArchiveReader`] reads at any thread count and any
//! cache budget — caching and batching change performance, never values.
//!
//! ## Example
//!
//! ```
//! use exaclim_serve::{Catalog, Request, Response, ServeConfig, Server, SliceRequest};
//! use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
//! use std::io::Cursor;
//!
//! // Build a small in-memory archive: 8 time steps of a 6-value field.
//! let data: Vec<f64> = (0..6 * 8).map(|i| 280.0 + i as f64 * 0.1).collect();
//! let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
//! w.add_field("t2m", Codec::F32Shuffle, FieldMeta::default(), 6, 3, &data).unwrap();
//! let (cursor, _) = w.finish().unwrap();
//!
//! // Open it in a catalog and serve a batch of overlapping slices.
//! let mut catalog = Catalog::new();
//! catalog.open_archive_bytes("demo", cursor.into_inner()).unwrap();
//! let server = Server::new(catalog, ServeConfig::default());
//! let slice = |range| Request::Slice(SliceRequest {
//!     archive: "demo".to_string(),
//!     member: "t2m".to_string(),
//!     range,
//! });
//! let responses = server.handle_batch(&[slice(0..8), slice(2..5), slice(4..8)]);
//! assert!(responses.iter().all(|r| r.is_ok()));
//!
//! // The three requests touched 3 + 2 + 2 chunks but each of the three
//! // distinct chunks was fetched once; a repeat batch is all cache hits.
//! let stats = server.stats();
//! assert_eq!((stats.chunk_touches, stats.chunk_fetches), (7, 3));
//! server.handle_batch(&[slice(0..8)]);
//! assert_eq!(server.cache_stats().hits, 3);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod error;
pub mod net;
pub mod placement;
pub mod product;
pub mod router;
pub mod scenario;
pub mod server;
pub mod wire;

pub use batch::{BatchPlan, SliceRequest};
pub use cache::{
    CacheKey, CacheStats, ChunkCache, ChunkKey, Fetch, Flight, FlightLead, ProductCache, ValueCache,
};
pub use catalog::{ByteSource, Catalog, ServedArchive, ServedEmulator};
pub use error::{ServeError, WireError};
pub use net::{
    Client, ClientConfig, ClientStats, NetConfig, NetServer, NetServerHandle, NetStats, RetryPolicy,
};
pub use placement::{assign_primaries, emulator_weight, plan_layout, KeyWeight, PlacementPlan};
pub use product::{
    ProductData, ProductDescriptor, ProductKey, ProductSource, ProductStat, ScenarioSpec,
};
pub use router::{Router, RouterConfig, RouterStats, ShardHealth, ShardSpec};
pub use server::{
    ArchiveInfo, CatalogAnswer, CatalogQuery, EmulatorInfo, MemberInfo, Request, Response,
    ServeConfig, ServeStats, Server, SliceData,
};
