//! Consistent-hash router: one ECN1 front end over N backend shards.
//!
//! A [`Router`] speaks the wire protocol on both sides. In front, it is
//! a drop-in [`crate::net::NetServer`] backend
//! ([`crate::net::NetServer::bind_router`]): clients connect with the
//! ordinary [`crate::net::Client`] and see responses **bit-identical**
//! to a single [`crate::server::Server`] over the same catalog. Behind,
//! it holds pooled self-healing [`Client`]s to each backend shard and
//! scatter-gathers every batch:
//!
//! 1. each request is routed by its `(archive, member)` key — emulator
//!    ops by emulator name, catalog queries by archive — through a
//!    seeded consistent-hash **ring** ([`RouterConfig::virtual_nodes`]
//!    points per shard) to a preference list of
//!    [`RouterConfig::replication`] distinct shards,
//! 2. the batch splits into one sub-batch per first-choice live shard,
//!    preserving request order within each sub-batch,
//! 3. sub-batches execute concurrently over the shard connection pools,
//! 4. responses reassemble in the original request order.
//!
//! Every shard opens the same archives (the data plane is replicated;
//! the ring partitions the *cache working set*, not the bytes), which is
//! what makes failover honest: when a shard dies mid-batch — its
//! [`Client`] exhausts the [`crate::net::RetryPolicy`] and surfaces a
//! peer-labelled transport error — the router marks it down for
//! [`RouterConfig::down_cooldown`], bumps
//! [`RouterStats::failovers`], and re-routes the affected requests to
//! each key's next replica. The caller sees the same bytes it would
//! have seen from the dead shard, not an error frame.
//!
//! Placement is validated before it is trusted: construct with
//! [`Router::connect_placed`] and the layout (virtual-node count,
//! replication factor) is chosen by [`crate::placement`], which scores
//! candidates against a machine model
//! ([`exaclim_cluster::MachineSpec`]) via
//! [`exaclim_cluster::simulate_placement`] — load skew, scatter-gather
//! fan-out, predicted scaling — and the router adopts only what the
//! simulation accepts. [`Router::rebalance`] re-scores with observed
//! weights at runtime and swaps the ring only for a layout the model
//! calls balanced, counting [`RouterStats::rebalance_events`].
//!
//! [`Request::Stats`] fans out to every live shard and returns the
//! field-wise **sum** of their [`ServeStats`]; the router's own
//! counters are a separate [`RouterStats`] ([`Router::router_stats`]).

use crate::error::{ServeError, WireError};
use crate::net::{Client, ClientConfig, RetryPolicy};
use crate::placement::{self, KeyWeight};
use crate::product::ProductSource;
use crate::server::{CatalogQuery, Reply, Request, Response, ServeBackend, ServeStats};
use exaclim_cluster::{MachineSpec, PlacementReport};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One backend shard a [`Router`] fronts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Stable name of the shard (ring positions hash over it, so a
    /// shard keeps its keys across router restarts).
    pub label: String,
    /// Address of the shard's [`crate::net::NetServer`].
    pub addr: SocketAddr,
}

impl ShardSpec {
    /// A spec with the conventional `shard-<i>` label.
    pub fn numbered(i: usize, addr: SocketAddr) -> Self {
        Self {
            label: format!("shard-{i}"),
            addr,
        }
    }
}

/// Liveness snapshot of one shard ([`Router::shard_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard's [`ShardSpec::label`].
    pub label: String,
    /// The shard's address.
    pub addr: SocketAddr,
    /// Whether the router currently routes to it (false while inside
    /// the post-failure [`RouterConfig::down_cooldown`]).
    pub alive: bool,
}

/// Knobs of a [`Router`] (see [`Router::connect`]).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Distinct shards on every key's preference list: 1 routes each
    /// key to exactly one shard (no failover), 2+ gives hot members
    /// replicas a dead shard fails over to.
    pub replication: usize,
    /// Ring points per shard. More points flatten the key distribution
    /// (the placement skew test pins < 2× mean at 128) at the price of
    /// a longer sorted ring.
    pub virtual_nodes: usize,
    /// Seed of the ring's hash: same seed + same labels ⇒ the same
    /// placement on every router that fronts the cluster.
    pub seed: u64,
    /// Template for the pooled backend clients. [`ClientConfig::peer`]
    /// is overwritten per shard (`<label>@<addr>`) so transport errors
    /// name the shard that failed; arm [`ClientConfig::retry`] to let a
    /// shard's client absorb transient faults before the router
    /// declares the shard dead and fails over.
    pub client: ClientConfig,
    /// Pooled connections per shard (concurrent sub-batches to one
    /// shard beyond this share connections).
    pub connections_per_shard: usize,
    /// How long a shard that failed a call stays routed-around before
    /// the router probes it again.
    pub down_cooldown: Duration,
}

impl Default for RouterConfig {
    /// Replication 2, 128 virtual nodes, 2 connections per shard, a
    /// fast-failover retry policy (2 retries, 1 ms base) and a 250 ms
    /// down cooldown.
    fn default() -> Self {
        Self {
            replication: 2,
            virtual_nodes: 128,
            seed: 0xECA1,
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(1)),
                retry: Some(RetryPolicy {
                    max_retries: 2,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(50),
                    ..RetryPolicy::default()
                }),
                ..ClientConfig::default()
            },
            connections_per_shard: 2,
            down_cooldown: Duration::from_millis(250),
        }
    }
}

/// Point-in-time router counters ([`Router::router_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests routed to shards (fan-out ops count once per request).
    pub routed: u64,
    /// Batches that split across more than one shard.
    pub fanout_batches: u64,
    /// Sub-batches re-routed to a replica after a shard call failed.
    pub failovers: u64,
    /// Ring swaps adopted by [`Router::rebalance`].
    pub rebalance_events: u64,
}

#[derive(Default)]
struct RouterStatCells {
    routed: AtomicU64,
    fanout_batches: AtomicU64,
    failovers: AtomicU64,
    rebalance_events: AtomicU64,
}

/// The seeded consistent-hash ring: `shards × virtual_nodes` points
/// sorted by hash; a key's replicas are the first `replication` distinct
/// shards clockwise from the key's hash.
#[derive(Clone)]
pub(crate) struct Ring {
    /// `(point hash, shard index)`, sorted by hash.
    points: Vec<(u64, u16)>,
    shards: usize,
    pub(crate) virtual_nodes: usize,
    pub(crate) replication: usize,
    seed: u64,
}

/// splitmix64 finalizer: the ring's point/key hashes avalanche through
/// it so nearby labels land far apart.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded FNV-1a over byte parts (a `0xFF` separator between parts
/// keeps `("ab","c")` and `("a","bc")` distinct), finished with
/// [`mix64`].
fn hash_parts(seed: u64, parts: &[&[u8]]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ mix64(seed);
    for part in parts {
        for &b in *part {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = (h ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

impl Ring {
    pub(crate) fn build(
        labels: &[String],
        virtual_nodes: usize,
        replication: usize,
        seed: u64,
    ) -> Ring {
        let virtual_nodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(labels.len() * virtual_nodes);
        for (s, label) in labels.iter().enumerate() {
            for v in 0..virtual_nodes {
                let h = hash_parts(seed, &[label.as_bytes(), &(v as u64).to_le_bytes()]);
                points.push((h, s as u16));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            shards: labels.len(),
            virtual_nodes,
            replication: replication.clamp(1, labels.len().max(1)),
            seed,
        }
    }

    /// Hash of a routing key.
    pub(crate) fn key_hash(&self, archive: &str, member: &str) -> u64 {
        hash_parts(self.seed, &[archive.as_bytes(), member.as_bytes()])
    }

    /// The key's preference list: first `replication` distinct shards
    /// clockwise from `hash`.
    pub(crate) fn replicas(&self, hash: u64) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.replication);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(h, _)| h < hash);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == self.replication.min(self.shards) {
                    break;
                }
            }
        }
        out
    }
}

/// One shard's connection pool and liveness state.
struct Shard {
    spec: ShardSpec,
    /// `<label>@<addr>` — stamped into [`ClientConfig::peer`] so this
    /// shard's transport errors are attributable.
    peer: String,
    pool: Vec<Mutex<Option<Client>>>,
    /// Round-robin cursor over the pool when every slot is busy.
    rr: AtomicUsize,
    /// `Some(t)` while the shard is routed around; a probe is allowed
    /// once `t` has passed.
    down_until: Mutex<Option<Instant>>,
}

impl Shard {
    fn alive(&self) -> bool {
        match *self.down_until.lock() {
            None => true,
            Some(t) => Instant::now() >= t,
        }
    }

    fn mark_down(&self, cooldown: Duration) {
        *self.down_until.lock() = Some(Instant::now() + cooldown);
    }

    fn mark_up(&self) {
        *self.down_until.lock() = None;
    }

    /// Run `f` on a pooled connection: grab any free slot (or queue on
    /// one round-robin), connecting lazily. A transport error drops the
    /// pooled connection so the next call dials fresh.
    fn with_client<T>(
        &self,
        template: &ClientConfig,
        f: impl FnOnce(&mut Client) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut guard = 'slot: {
            for slot in &self.pool {
                if let Some(g) = slot.try_lock() {
                    break 'slot g;
                }
            }
            let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.pool.len();
            self.pool[i].lock()
        };
        if guard.is_none() {
            let mut config = template.clone();
            config.peer = Some(self.peer.clone());
            *guard = Some(Client::connect_with(self.spec.addr, config)?);
        }
        let client = guard.as_mut().expect("connected above");
        match f(client) {
            Ok(v) => Ok(v),
            Err(e) => {
                *guard = None;
                Err(e)
            }
        }
    }
}

/// How one request routes: a keyed preference list, or a fan-out to
/// every shard (stats).
enum Route<'a> {
    Key(&'a str, &'a str),
    Fixed,
    All,
}

fn route_of(request: &Request) -> Route<'_> {
    match request {
        Request::Slice(s) => Route::Key(&s.archive, &s.member),
        Request::Product(d) => match &d.source {
            ProductSource::Member { archive, member } => Route::Key(archive, member),
            ProductSource::Ensemble(spec) => Route::Key("", &spec.emulator),
        },
        Request::Ensemble(spec) => Route::Key("", &spec.emulator),
        Request::Emulate { emulator, .. } => Route::Key("", emulator),
        Request::Catalog(q) => match q {
            CatalogQuery::ListMembers { archive } | CatalogQuery::MemberInfo { archive, .. } => {
                Route::Key(archive, "")
            }
            CatalogQuery::ListArchives | CatalogQuery::ListEmulators => Route::Fixed,
        },
        Request::Stats => Route::All,
        Request::WithDeadline { request, .. } => route_of(request),
    }
}

/// Field-wise sum of two [`ServeStats`] snapshots (stats fan-out).
fn add_stats(a: &mut ServeStats, b: &ServeStats) {
    a.slices += b.slices;
    a.emulations += b.emulations;
    a.catalog_queries += b.catalog_queries;
    a.errors += b.errors;
    a.batches += b.batches;
    a.chunk_touches += b.chunk_touches;
    a.chunk_fetches += b.chunk_fetches;
    a.chunk_decodes += b.chunk_decodes;
    a.products += b.products;
    a.product_computes += b.product_computes;
    a.busy_nanos += b.busy_nanos;
    a.deadline_expired += b.deadline_expired;
}

/// The consistent-hash scatter-gather front end (module docs above).
pub struct Router {
    shards: Vec<Shard>,
    ring: Mutex<Ring>,
    config: RouterConfig,
    stats: RouterStatCells,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards.len())
            .field("replication", &self.ring.lock().replication)
            .field("virtual_nodes", &self.ring.lock().virtual_nodes)
            .finish()
    }
}

impl Router {
    /// Connect to `shards` with an explicit layout
    /// ([`RouterConfig::virtual_nodes`] / [`RouterConfig::replication`]
    /// as given). Each shard is probed with one eager connection, so a
    /// misaddressed or dead backend fails construction with a
    /// peer-labelled error instead of failing the first batch.
    pub fn connect(shards: Vec<ShardSpec>, config: RouterConfig) -> Result<Router, WireError> {
        if shards.is_empty() {
            return Err(WireError::Malformed("router over zero shards".to_string()));
        }
        let labels: Vec<String> = shards.iter().map(|s| s.label.clone()).collect();
        let ring = Ring::build(
            &labels,
            config.virtual_nodes,
            config.replication,
            config.seed,
        );
        let pool_size = config.connections_per_shard.max(1);
        let shards: Vec<Shard> = shards
            .into_iter()
            .map(|spec| Shard {
                peer: format!("{}@{}", spec.label, spec.addr),
                pool: (0..pool_size).map(|_| Mutex::new(None)).collect(),
                rr: AtomicUsize::new(0),
                down_until: Mutex::new(None),
                spec,
            })
            .collect();
        for shard in &shards {
            shard.with_client(&config.client, |_| Ok(()))?;
        }
        Ok(Router {
            shards,
            ring: Mutex::new(ring),
            config,
            stats: RouterStatCells::default(),
        })
    }

    /// Connect with a **sim-validated** layout: score candidate ring
    /// layouts (virtual-node counts, replication factors at or above
    /// [`RouterConfig::replication`]) for the expected `keys` against
    /// `machine` via [`exaclim_cluster::simulate_placement`], adopt the
    /// best balanced one, and return its [`PlacementReport`] alongside
    /// the router.
    pub fn connect_placed(
        shards: Vec<ShardSpec>,
        keys: &[KeyWeight],
        machine: &MachineSpec,
        mut config: RouterConfig,
    ) -> Result<(Router, PlacementReport), WireError> {
        let labels: Vec<String> = shards.iter().map(|s| s.label.clone()).collect();
        let plan = placement::plan_layout(&labels, keys, machine, config.seed, config.replication);
        config.virtual_nodes = plan.virtual_nodes;
        config.replication = plan.replication;
        let router = Self::connect(shards, config)?;
        Ok((router, plan.report))
    }

    /// Number of backend shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Liveness snapshot of every shard.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .map(|s| ShardHealth {
                label: s.spec.label.clone(),
                addr: s.spec.addr,
                alive: s.alive(),
            })
            .collect()
    }

    /// The router's own counters.
    pub fn router_stats(&self) -> RouterStats {
        RouterStats {
            routed: self.stats.routed.load(Ordering::Relaxed),
            fanout_batches: self.stats.fanout_batches.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            rebalance_events: self.stats.rebalance_events.load(Ordering::Relaxed),
        }
    }

    /// Re-score placement with observed key weights and adopt a better
    /// layout if the simulation validates one: the ring is swapped (and
    /// [`RouterStats::rebalance_events`] bumped) only when the plan is
    /// balanced **and** differs from the current layout. In-flight
    /// batches finish on the ring they started with; correctness does
    /// not depend on the ring (every shard serves every key), so a swap
    /// only moves cache affinity.
    pub fn rebalance(&self, weights: &[KeyWeight], machine: &MachineSpec) -> PlacementReport {
        let labels: Vec<String> = self.shards.iter().map(|s| s.spec.label.clone()).collect();
        let plan = placement::plan_layout(
            &labels,
            weights,
            machine,
            self.config.seed,
            self.config.replication,
        );
        let differs = {
            let ring = self.ring.lock();
            ring.virtual_nodes != plan.virtual_nodes || ring.replication != plan.replication
        };
        if plan.report.balanced && differs {
            *self.ring.lock() = Ring::build(
                &labels,
                plan.virtual_nodes,
                plan.replication,
                self.config.seed,
            );
            self.stats.rebalance_events.fetch_add(1, Ordering::Relaxed);
        }
        plan.report
    }

    /// Answer one request (a 1-element batch) through the cluster.
    pub fn handle(&self, request: &Request) -> Result<Response, ServeError> {
        self.handle_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answer a batch through the cluster: split into per-shard
    /// sub-batches, scatter-gather, reassemble in request order. The
    /// scatter-gather twin of [`crate::server::Server::handle_batch`] —
    /// same input, same output, bit-identical responses (stats excepted:
    /// the cluster answers the per-shard sum).
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Result<Response, ServeError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        self.stats
            .routed
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        // Snapshot each request's preference list under one ring read.
        let prefs: Vec<Option<Vec<u16>>> = {
            let ring = self.ring.lock();
            requests
                .iter()
                .map(|r| match route_of(r) {
                    Route::Key(a, m) => Some(ring.replicas(ring.key_hash(a, m))),
                    Route::Fixed => Some(ring.replicas(ring.key_hash("", ""))),
                    Route::All => None,
                })
                .collect()
        };

        let mut slots: Vec<Option<Result<Response, ServeError>>> = vec![None; requests.len()];

        // Fan-out ops (stats) first: each touches every live shard.
        let mut touched_shards: Vec<bool> = vec![false; self.shards.len()];
        for (i, pref) in prefs.iter().enumerate() {
            if pref.is_none() {
                slots[i] = Some(self.fan_out(&requests[i]));
                touched_shards.fill(true);
            }
        }

        // Keyed requests: route to each key's first live replica,
        // re-routing a failed shard's sub-batch to the next replica.
        // Each round either answers requests or burns one entry of a
        // preference list, so the loop is bounded.
        let mut cursors: Vec<usize> = vec![0; requests.len()];
        loop {
            // Group unanswered requests by their current target shard.
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            let mut open = false;
            for i in 0..requests.len() {
                let Some(pref) = &prefs[i] else { continue };
                if slots[i].is_some() {
                    continue;
                }
                // First not-yet-failed replica, preferring live ones; if
                // the whole remaining list is marked down, probe the
                // first anyway (cooldown may have hidden a recovery).
                let remaining = &pref[cursors[i].min(pref.len())..];
                let target = remaining
                    .iter()
                    .find(|&&s| self.shards[s as usize].alive())
                    .or_else(|| remaining.first());
                match target {
                    Some(&s) => {
                        groups[s as usize].push(i);
                        open = true;
                    }
                    None => {
                        slots[i] = Some(Err(ServeError::Internal(
                            "every replica of this key's shards failed".to_string(),
                        )));
                    }
                }
            }
            if !open {
                break;
            }

            // Scatter: one thread per non-empty group, gather in place.
            type ShardOutcome = Result<Vec<Result<Response, ServeError>>, WireError>;
            let outcomes: Vec<Option<ShardOutcome>> = {
                let mut outcomes: Vec<Option<_>> = (0..self.shards.len()).map(|_| None).collect();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| !g.is_empty())
                        .map(|(s, group)| {
                            let sub: Vec<Request> =
                                group.iter().map(|&i| requests[i].clone()).collect();
                            let shard = &self.shards[s];
                            let template = &self.config.client;
                            (
                                s,
                                scope.spawn(move || shard.with_client(template, |c| c.batch(&sub))),
                            )
                        })
                        .collect();
                    for (s, h) in handles {
                        outcomes[s] = Some(h.join().expect("shard call thread"));
                    }
                });
                outcomes
            };

            for (s, outcome) in outcomes.into_iter().enumerate() {
                let Some(outcome) = outcome else { continue };
                touched_shards[s] = true;
                match outcome {
                    Ok(responses) => {
                        self.shards[s].mark_up();
                        for (&i, response) in groups[s].iter().zip(responses) {
                            slots[i] = Some(response);
                        }
                    }
                    Err(_) => {
                        // The shard's self-healing client gave up:
                        // cooldown the shard and advance every affected
                        // request past it for the next round.
                        self.shards[s].mark_down(self.config.down_cooldown);
                        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        for &i in &groups[s] {
                            cursors[i] += 1;
                        }
                    }
                }
            }
        }

        if touched_shards.iter().filter(|&&t| t).count() > 1 {
            self.stats.fanout_batches.fetch_add(1, Ordering::Relaxed);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request answered"))
            .collect()
    }

    /// Fan one request (stats, possibly deadline-wrapped) out to every
    /// shard and sum the answers. A shard whose transport fails is
    /// marked down and skipped — monitoring reflects the live cluster;
    /// a per-request error from any shard (an expired deadline) wins
    /// over a partial sum.
    fn fan_out(&self, request: &Request) -> Result<Response, ServeError> {
        let mut agg: Option<ServeStats> = None;
        for shard in &self.shards {
            if !shard.alive() {
                continue;
            }
            let outcome = shard.with_client(&self.config.client, |c| {
                c.batch(std::slice::from_ref(request))
            });
            match outcome {
                Ok(mut responses) => match responses.pop() {
                    Some(Ok(Response::Stats(s))) => {
                        add_stats(agg.get_or_insert_with(ServeStats::default), &s);
                    }
                    Some(Ok(other)) => {
                        return Err(ServeError::Internal(format!(
                            "stats fan-out to {} answered with {other:?}",
                            shard.peer
                        )))
                    }
                    Some(Err(e)) => return Err(e),
                    None => {
                        return Err(ServeError::Internal(format!(
                            "empty response batch from {}",
                            shard.peer
                        )))
                    }
                },
                Err(_) => {
                    shard.mark_down(self.config.down_cooldown);
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        agg.map(Response::Stats)
            .ok_or_else(|| ServeError::Internal("no live shard answered stats".to_string()))
    }
}

impl ServeBackend for Router {
    /// The wire front end's dispatch path. `received` is deliberately
    /// unused: deadline budgets re-stamp on arrival at each shard, so a
    /// wrapped request's budget covers shard-side queue time (router
    /// forwarding adds to the client's wall clock, not the budget; a
    /// zero budget still deterministically expires).
    fn batch_replies_from(&self, requests: &[Request], _received: Instant) -> Vec<Reply> {
        self.handle_batch(requests)
            .into_iter()
            .map(Reply::Full)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn ring_is_deterministic_and_replicas_distinct() {
        let a = Ring::build(&labels(4), 128, 2, 7);
        let b = Ring::build(&labels(4), 128, 2, 7);
        assert_eq!(a.points, b.points);
        for key in 0..200u64 {
            let h = a.key_hash("arc", &format!("m{key}"));
            let reps = a.replicas(h);
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
            assert_eq!(reps, b.replicas(h));
        }
    }

    #[test]
    fn different_seeds_move_keys() {
        let a = Ring::build(&labels(4), 128, 1, 1);
        let b = Ring::build(&labels(4), 128, 1, 2);
        let moved = (0..256u64)
            .filter(|k| {
                let key = format!("m{k}");
                a.replicas(a.key_hash("arc", &key)) != b.replicas(b.key_hash("arc", &key))
            })
            .count();
        assert!(moved > 64, "only {moved}/256 keys moved between seeds");
    }

    #[test]
    fn replication_caps_at_shard_count() {
        let ring = Ring::build(&labels(2), 64, 5, 3);
        let reps = ring.replicas(ring.key_hash("a", "m"));
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn deadline_wrapper_routes_like_its_inner_request() {
        let slice = Request::Slice(crate::SliceRequest {
            archive: "a".to_string(),
            member: "m".to_string(),
            range: 0..4,
        });
        let wrapped = Request::WithDeadline {
            budget_ms: 5,
            request: Box::new(slice.clone()),
        };
        match (route_of(&slice), route_of(&wrapped)) {
            (Route::Key(a1, m1), Route::Key(a2, m2)) => {
                assert_eq!((a1, m1), (a2, m2));
            }
            _ => panic!("slice routes must be keyed"),
        }
        assert!(matches!(route_of(&Request::Stats), Route::All));
    }
}
