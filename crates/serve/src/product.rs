//! Derived-product descriptors and results of the scenario engine.
//!
//! A [`ProductDescriptor`] names a derived climate product declaratively:
//! a **source** (an archive member, or a fresh ensemble of emulator
//! realizations), a **statistic** over that source (raw values, anomaly
//! against a baseline member, mean/spread, trend fit, persistence fit,
//! Tukey tail extremes), and optional **time/space windows**. Descriptors
//! contain no floats, so they are `Eq + Hash` and have a canonical byte
//! encoding ([`ProductDescriptor::canonical_bytes`]) from which the
//! product cache derives its [`ProductKey`]: two requests describe the
//! same product if and only if they hash to the same key, which is what
//! lets a stampede on a popular product compute it exactly once.
//!
//! The result of evaluating a descriptor is a [`ProductData`]: a dense
//! realization-major `realizations × rows × values_per_row` block of
//! `f64` values whose geometry is a deterministic function of the
//! descriptor — the cache stores only the flat values and the shape is
//! re-derived on every hit.

use std::ops::Range;

/// An ensemble scenario: `realizations` stochastic runs of a registered
/// emulator, each `t_max` steps long, seeded per realization from `seed`
/// (see [`crate::scenario::realization_seed`]) so the ensemble is
/// bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    /// Catalog name of the emulator.
    pub emulator: String,
    /// Steps per realization.
    pub t_max: u64,
    /// Base seed; realization `k` runs with a seed derived from
    /// `(seed, k)`, never from scheduling order.
    pub seed: u64,
    /// Number of stochastic realizations.
    pub realizations: u32,
}

/// What a product is computed *from*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProductSource {
    /// A stored field member of an open archive (one "realization").
    Member {
        /// Catalog name of the archive.
        archive: String,
        /// Member name within the archive.
        member: String,
    },
    /// A fresh ensemble emulated on the server.
    Ensemble(ScenarioSpec),
}

/// The statistic derived from the (windowed) source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProductStat {
    /// The source values themselves, re-sliced: `realizations` ×
    /// `t_len` rows of `s_len` values.
    Raw,
    /// Source minus a baseline member over the same window, per
    /// realization: the baseline member must cover the window and share
    /// the source's grid width.
    Anomaly {
        /// Catalog name of the baseline's archive.
        archive: String,
        /// Baseline member name.
        member: String,
    },
    /// Two rows per location: mean and sample standard deviation over
    /// every `(realization, time)` sample.
    MeanStd,
    /// Per-location trend fit via [`exaclim_stats::trend::fit_location`]:
    /// five rows `[β₀, β₁, β₂, ρ, σ]` (fit on the ensemble-mean series
    /// when the source has several realizations).
    Trend,
    /// Per-location AR(`order`) persistence fit pooled across
    /// realizations via
    /// [`exaclim_stats::var::fit_diagonal_var_multi`]: `order` rows of
    /// lag coefficients `φ₁..φ_order`, then one row of innovation
    /// standard deviations.
    Persistence {
        /// AR model order (1..=8).
        order: u32,
    },
    /// Per-location Tukey g-and-h tail fit over every
    /// `(realization, time)` sample
    /// ([`exaclim_stats::tukey::fit_tukey_gh`]): four rows
    /// `[g, h, lower extreme, upper extreme]`, the extremes being the
    /// fitted transform evaluated at the `tail_per_mille`/1000 and
    /// `1 − tail_per_mille/1000` normal quantiles.
    TukeyExtremes {
        /// Tail mass in per-mille (1..=499); 10 ⇒ the 1% and 99% tails.
        tail_per_mille: u32,
    },
}

/// A complete derived-product request: source, statistic, and optional
/// half-open time/space windows (`None` ⇒ the full extent). Windows apply
/// to the source *before* the statistic, and every statistic is
/// computed per location independently — so windowing commutes with the
/// statistics and re-sliced products are bit-identical sub-blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProductDescriptor {
    /// Where the values come from.
    pub source: ProductSource,
    /// What to compute over them.
    pub stat: ProductStat,
    /// Time-step window into the source (`None` ⇒ `0..t_max`).
    pub time: Option<Range<u64>>,
    /// Grid-point window into each slice (`None` ⇒ all points).
    pub space: Option<Range<u64>>,
}

impl ProductDescriptor {
    /// The canonical, versioned byte encoding this descriptor hashes
    /// under. Every field is written little-endian in a fixed order, so
    /// equal descriptors — and only equal descriptors, up to 128-bit
    /// hash collision — produce equal [`ProductKey`]s.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.push(1u8); // encoding version
        let put_str = |b: &mut Vec<u8>, s: &str| {
            b.extend_from_slice(&(s.len() as u64).to_le_bytes());
            b.extend_from_slice(s.as_bytes());
        };
        match &self.source {
            ProductSource::Member { archive, member } => {
                b.push(1);
                put_str(&mut b, archive);
                put_str(&mut b, member);
            }
            ProductSource::Ensemble(spec) => {
                b.push(2);
                put_str(&mut b, &spec.emulator);
                b.extend_from_slice(&spec.t_max.to_le_bytes());
                b.extend_from_slice(&spec.seed.to_le_bytes());
                b.extend_from_slice(&spec.realizations.to_le_bytes());
            }
        }
        match &self.stat {
            ProductStat::Raw => b.push(1),
            ProductStat::Anomaly { archive, member } => {
                b.push(2);
                put_str(&mut b, archive);
                put_str(&mut b, member);
            }
            ProductStat::MeanStd => b.push(3),
            ProductStat::Trend => b.push(4),
            ProductStat::Persistence { order } => {
                b.push(5);
                b.extend_from_slice(&order.to_le_bytes());
            }
            ProductStat::TukeyExtremes { tail_per_mille } => {
                b.push(6);
                b.extend_from_slice(&tail_per_mille.to_le_bytes());
            }
        }
        let put_window = |b: &mut Vec<u8>, w: &Option<Range<u64>>| match w {
            Some(r) => {
                b.push(1);
                b.extend_from_slice(&r.start.to_le_bytes());
                b.extend_from_slice(&r.end.to_le_bytes());
            }
            None => b.push(0),
        };
        put_window(&mut b, &self.time);
        put_window(&mut b, &self.space);
        b
    }

    /// The 128-bit cache key of this descriptor: two independent FNV-1a
    /// hashes of [`ProductDescriptor::canonical_bytes`].
    ///
    /// ```
    /// use exaclim_serve::{ProductDescriptor, ProductSource, ProductStat};
    ///
    /// let d = ProductDescriptor {
    ///     source: ProductSource::Member {
    ///         archive: "era5".to_string(),
    ///         member: "t2m".to_string(),
    ///     },
    ///     stat: ProductStat::MeanStd,
    ///     time: Some(0..10),
    ///     space: None,
    /// };
    /// assert_eq!(d.key(), d.clone().key());
    /// let mut other = d.clone();
    /// other.time = Some(0..11);
    /// assert_ne!(d.key(), other.key());
    /// ```
    pub fn key(&self) -> ProductKey {
        let bytes = self.canonical_bytes();
        let fnv = |seed: u64| {
            let mut h = seed;
            for &byte in &bytes {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        };
        ProductKey {
            hi: fnv(0xcbf2_9ce4_8422_2325),
            lo: fnv(0xcbf2_9ce4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// 128-bit hash identity of one [`ProductDescriptor`] in the product
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProductKey {
    /// High hash half.
    pub hi: u64,
    /// Low hash half.
    pub lo: u64,
}

/// An evaluated product: a dense realization-major block of values.
///
/// `values[(r × rows + row) × values_per_row + col]` is realization `r`,
/// row `row`, column `col`. For [`ProductStat::Raw`] and
/// [`ProductStat::Anomaly`] the rows are time steps and the columns grid
/// points of the window; for the reduced statistics `realizations` is 1
/// and each row is one output plane over the window's grid points.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductData {
    /// Realization count of the block (1 for reduced statistics).
    pub realizations: u32,
    /// Rows per realization (time steps, or statistic planes).
    pub rows: u64,
    /// Values per row (grid points of the space window).
    pub values_per_row: u64,
    /// `realizations × rows × values_per_row` values.
    pub values: Vec<f64>,
}

impl ProductData {
    /// One realization's `rows × values_per_row` block.
    ///
    /// # Panics
    /// If `r` is out of range.
    pub fn realization(&self, r: u32) -> &[f64] {
        assert!(r < self.realizations, "realization {r} out of range");
        let block = (self.rows * self.values_per_row) as usize;
        &self.values[r as usize * block..(r as usize + 1) * block]
    }

    /// One row (of one realization) as a slice.
    ///
    /// # Panics
    /// If `r` or `row` is out of range.
    pub fn row(&self, r: u32, row: u64) -> &[f64] {
        assert!(row < self.rows, "row {row} out of range");
        let w = self.values_per_row as usize;
        let start = row as usize * w;
        &self.realization(r)[start..start + w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_raw() -> ProductDescriptor {
        ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "m".to_string(),
            },
            stat: ProductStat::Raw,
            time: None,
            space: None,
        }
    }

    #[test]
    fn equal_descriptors_share_a_key() {
        assert_eq!(member_raw().key(), member_raw().key());
        let spec = ScenarioSpec {
            emulator: "em".to_string(),
            t_max: 30,
            seed: 7,
            realizations: 4,
        };
        let e = ProductDescriptor {
            source: ProductSource::Ensemble(spec.clone()),
            stat: ProductStat::MeanStd,
            time: Some(3..9),
            space: Some(0..5),
        };
        assert_eq!(e.key(), e.clone().key());
        assert_eq!(e.canonical_bytes(), e.clone().canonical_bytes());
    }

    #[test]
    fn every_field_feeds_the_key() {
        let base = member_raw();
        let mut variants = vec![base.clone()];
        let mut d = base.clone();
        d.source = ProductSource::Member {
            archive: "a".to_string(),
            member: "m2".to_string(),
        };
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::MeanStd;
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::Trend;
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::Persistence { order: 1 };
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::Persistence { order: 2 };
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::TukeyExtremes { tail_per_mille: 10 };
        variants.push(d);
        let mut d = base.clone();
        d.stat = ProductStat::Anomaly {
            archive: "a".to_string(),
            member: "m".to_string(),
        };
        variants.push(d);
        let mut d = base.clone();
        d.time = Some(0..10);
        variants.push(d);
        let mut d = base.clone();
        d.time = Some(0..11);
        variants.push(d);
        let mut d = base.clone();
        d.space = Some(0..10);
        variants.push(d);
        for spec in [
            ScenarioSpec {
                emulator: "em".to_string(),
                t_max: 30,
                seed: 7,
                realizations: 4,
            },
            ScenarioSpec {
                emulator: "em".to_string(),
                t_max: 30,
                seed: 8,
                realizations: 4,
            },
            ScenarioSpec {
                emulator: "em".to_string(),
                t_max: 30,
                seed: 7,
                realizations: 5,
            },
            ScenarioSpec {
                emulator: "em".to_string(),
                t_max: 31,
                seed: 7,
                realizations: 4,
            },
        ] {
            let mut d = base.clone();
            d.source = ProductSource::Ensemble(spec);
            variants.push(d);
        }
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(
                    variants[i].key(),
                    variants[j].key(),
                    "{:?} vs {:?}",
                    variants[i],
                    variants[j]
                );
            }
        }
    }

    #[test]
    fn ambiguous_string_pairs_hash_apart() {
        // Length-prefixed strings: ("ab", "c") must not collide with
        // ("a", "bc").
        let d1 = ProductDescriptor {
            source: ProductSource::Member {
                archive: "ab".to_string(),
                member: "c".to_string(),
            },
            ..member_raw()
        };
        let d2 = ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "bc".to_string(),
            },
            ..member_raw()
        };
        assert_ne!(d1.canonical_bytes(), d2.canonical_bytes());
        assert_ne!(d1.key(), d2.key());
    }

    #[test]
    fn product_data_indexing() {
        let p = ProductData {
            realizations: 2,
            rows: 3,
            values_per_row: 2,
            values: (0..12).map(f64::from).collect(),
        };
        assert_eq!(p.realization(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.row(1, 2), &[10.0, 11.0]);
    }
}
