//! Error type of the serving layer.

use exaclim::EmulationError;
use exaclim_store::ArchiveError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying archive rejected the operation (I/O, corruption,
    /// checksum failure, bad slice range, …).
    Archive(ArchiveError),
    /// An emulation run failed (message of the [`EmulationError`]).
    Emulation(String),
    /// No archive with this name is open in the catalog.
    UnknownArchive(String),
    /// No emulator with this name is registered in the catalog.
    UnknownEmulator(String),
    /// The request itself is inconsistent (duplicate catalog names,
    /// zero-length emulation, …).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Archive(e) => write!(f, "archive error: {e}"),
            ServeError::Emulation(m) => write!(f, "emulation error: {m}"),
            ServeError::UnknownArchive(n) => write!(f, "no archive `{n}` in catalog"),
            ServeError::UnknownEmulator(n) => write!(f, "no emulator `{n}` in catalog"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArchiveError> for ServeError {
    fn from(e: ArchiveError) -> Self {
        ServeError::Archive(e)
    }
}

impl From<EmulationError> for ServeError {
    fn from(e: EmulationError) -> Self {
        ServeError::Emulation(e.to_string())
    }
}
