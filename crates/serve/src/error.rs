//! Error types of the serving layer: per-request [`ServeError`]s (which
//! travel over the wire) and transport-level [`WireError`]s (which do
//! not — they describe the connection itself).

use exaclim::EmulationError;
use exaclim_store::ArchiveError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying archive rejected the operation (I/O, corruption,
    /// checksum failure, bad slice range, …).
    Archive(ArchiveError),
    /// An emulation run failed (message of the [`EmulationError`]).
    Emulation(String),
    /// No archive with this name is open in the catalog.
    UnknownArchive(String),
    /// No emulator with this name is registered in the catalog.
    UnknownEmulator(String),
    /// The request itself is inconsistent (duplicate catalog names,
    /// zero-length emulation, …).
    BadRequest(String),
    /// The server shed this request before executing it: the dispatch
    /// backlog was over [`crate::net::NetConfig::max_dispatch_backlog`].
    /// Retryable by construction — nothing was computed — and the server
    /// suggests waiting `retry_after_ms` before trying again (see
    /// [`crate::net::RetryPolicy`], which honors it).
    Overloaded {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The request carried a deadline
    /// ([`crate::server::Request::WithDeadline`]) that had already
    /// expired when the server was about to execute it, so the work was
    /// skipped. Fatal, not retryable: the client's budget is spent.
    DeadlineExpired,
    /// The server failed internally while executing this request (a
    /// worker panic, an injected fault). The request itself may be
    /// perfectly fine, so this is retryable.
    Internal(String),
}

impl ServeError {
    /// Whether a client may retry the request verbatim with a
    /// reasonable hope of success. Shedding and internal failures are
    /// transient ([`ServeError::Overloaded`], [`ServeError::Internal`]),
    /// as are archive I/O and corruption errors (a re-read re-decodes);
    /// everything describing the *request* (bad ranges, unknown names,
    /// expired deadlines) is fatal — retrying cannot change the answer.
    pub fn retryable(&self) -> bool {
        match self {
            ServeError::Overloaded { .. } | ServeError::Internal(_) => true,
            ServeError::Archive(e) => matches!(
                e,
                ArchiveError::Io(_)
                    | ArchiveError::ChecksumMismatch { .. }
                    | ArchiveError::TruncatedChunk { .. }
            ),
            ServeError::Emulation(_)
            | ServeError::UnknownArchive(_)
            | ServeError::UnknownEmulator(_)
            | ServeError::BadRequest(_)
            | ServeError::DeadlineExpired => false,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Archive(e) => write!(f, "archive error: {e}"),
            ServeError::Emulation(m) => write!(f, "emulation error: {m}"),
            ServeError::UnknownArchive(n) => write!(f, "no archive `{n}` in catalog"),
            ServeError::UnknownEmulator(n) => write!(f, "no emulator `{n}` in catalog"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            ServeError::DeadlineExpired => write!(f, "request deadline expired before execution"),
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArchiveError> for ServeError {
    fn from(e: ArchiveError) -> Self {
        ServeError::Archive(e)
    }
}

impl From<EmulationError> for ServeError {
    fn from(e: EmulationError) -> Self {
        ServeError::Emulation(e.to_string())
    }
}

/// Transport-level errors of the framed-TCP wire protocol.
///
/// A [`WireError`] means the *connection* failed — framing, checksums,
/// version negotiation, socket I/O — as opposed to a [`ServeError`],
/// which is a per-request failure that travels inside a well-formed
/// response frame. Decode errors are typed so hostile input is rejected,
/// never trusted: the decoder checks every length against what is
/// actually present before allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with the `ECN1` magic.
    BadMagic([u8; 4]),
    /// The peer speaks an unsupported protocol version.
    Version {
        /// Version the peer sent.
        got: u8,
        /// Version this build speaks.
        want: u8,
    },
    /// The frame kind byte is not a known [`crate::wire::FrameKind`].
    BadFrameKind(u8),
    /// The header claims a payload larger than the decode cap.
    FrameTooLarge {
        /// Claimed payload length.
        len: u64,
        /// The cap ([`crate::wire::MAX_FRAME_PAYLOAD`]).
        max: u64,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The payload does not match the CRC32 recorded in the header.
    ChecksumMismatch {
        /// CRC32 recorded in the frame header.
        expected: u32,
        /// CRC32 of the payload actually received.
        actual: u32,
    },
    /// The payload is structurally invalid (unknown tag, length claim
    /// exceeding the payload, trailing bytes, …).
    Malformed(String),
    /// The peer reported a transport-level failure in an error frame.
    Remote(String),
    /// A response frame answered a different frame id than the one in
    /// flight (pipelining protocol violation).
    IdMismatch {
        /// Frame id we were waiting for.
        expected: u64,
        /// Frame id the peer sent.
        got: u64,
    },
    /// Socket-level I/O failure (message of the `std::io::Error`,
    /// prefixed with the peer's label once [`WireError::with_peer`] has
    /// attributed it).
    Io(String),
    /// The peer closed the connection cleanly between frames.
    ConnectionClosed {
        /// Which peer hung up — `None` until [`WireError::with_peer`]
        /// attributes the failure (a client labels it with the shard or
        /// address it was talking to, so multi-backend failures are
        /// tellable apart in logs and tests).
        peer: Option<String>,
    },
    /// A stream frame arrived out of order: duplicated, skipped, or not
    /// starting at sequence 0 (see [`crate::wire::StreamPos`]).
    StreamSequence {
        /// Sequence number the reassembler expected next.
        expected: u16,
        /// Sequence number the frame carried.
        got: u16,
    },
    /// A stream frame carried a different frame id than the stream it
    /// interrupted — fragments of two responses interleaved on one
    /// connection, which the protocol forbids.
    StreamInterleaved {
        /// Frame id of the stream being reassembled.
        expected: u64,
        /// Frame id the interloping frame carried.
        got: u64,
    },
    /// The stream ended (connection closed, or a non-stream frame
    /// arrived) before a frame with the `FIN` flag was seen.
    StreamTruncated,
}

impl WireError {
    /// Whether reconnecting and replaying the in-flight requests is a
    /// sound reaction. Transport interruptions — socket errors, resets,
    /// truncated frames or streams, payloads mangled in flight — are
    /// retryable because every serving operation is read-only: replaying
    /// a request cannot double-apply anything. Protocol disagreements
    /// (bad magic, version mismatch, malformed payloads, id confusion)
    /// are fatal — a retry would speak the same wrong language.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            WireError::Io(_)
                | WireError::ConnectionClosed { .. }
                | WireError::Truncated { .. }
                | WireError::StreamTruncated
                | WireError::ChecksumMismatch { .. }
        )
    }

    /// Attribute this error to a named peer: transport failures coming
    /// out of a multi-backend client are useless in logs unless they say
    /// *which* connection died. Labels [`WireError::Io`] (message
    /// prefix) and [`WireError::ConnectionClosed`]; idempotent — an
    /// already-attributed error keeps its first label. Protocol errors
    /// pass through untouched (they name frame contents, not peers).
    #[must_use]
    pub fn with_peer(self, peer: &str) -> WireError {
        match self {
            WireError::Io(m) if !m.starts_with('[') => WireError::Io(format!("[{peer}] {m}")),
            WireError::ConnectionClosed { peer: None } => WireError::ConnectionClosed {
                peer: Some(peer.to_string()),
            },
            other => other,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "not an ECN1 frame (magic {m:02x?})"),
            WireError::Version { got, want } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {want})"
                )
            }
            WireError::BadFrameKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated { context } => write!(f, "stream ended inside {context}"),
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch (header says {expected:#010x}, payload is {actual:#010x})"
            ),
            WireError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
            WireError::Remote(m) => write!(f, "peer reported: {m}"),
            WireError::IdMismatch { expected, got } => {
                write!(
                    f,
                    "response frame id {got} does not match request id {expected}"
                )
            }
            WireError::Io(m) => write!(f, "wire I/O error: {m}"),
            WireError::ConnectionClosed { peer: None } => write!(f, "connection closed by peer"),
            WireError::ConnectionClosed { peer: Some(p) } => {
                write!(f, "connection closed by peer [{p}]")
            }
            WireError::StreamSequence { expected, got } => {
                write!(
                    f,
                    "stream frame out of order: got seq {got}, expected {expected}"
                )
            }
            WireError::StreamInterleaved { expected, got } => {
                write!(
                    f,
                    "stream frame id {got} interleaved into stream {expected}"
                )
            }
            WireError::StreamTruncated => {
                write!(f, "stream ended before a FIN frame")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "frame" }
        } else {
            WireError::Io(e.to_string())
        }
    }
}
