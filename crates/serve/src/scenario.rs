//! The scenario engine: derived climate products evaluated server-side.
//!
//! This is the paper's "emulator as a data service" endpoint: instead of
//! shipping raw bytes for the client to post-process, the server
//! evaluates a declarative [`ProductDescriptor`] next to its caches —
//! ensembles of emulator realizations, anomalies against stored
//! baselines, trend/persistence fits and Tukey tail extremes — and ships
//! only the (usually far smaller) result.
//!
//! The evaluation pipeline for one [`crate::server::Request::Product`]:
//!
//! 1. **Validate & shape** — the descriptor
//!    is resolved against the catalog and every stat precondition is
//!    checked *before* touching the product cache, so invalid requests
//!    fail fast with a [`ServeError`] and never occupy a flight.
//! 2. **Product cache** — the descriptor's canonical hash
//!    ([`ProductDescriptor::key`]) is looked up in the server's
//!    [`crate::cache::ProductCache`], which reuses the chunk cache's
//!    single-flight reservation machinery: a stampede on one popular
//!    product elects exactly one leader to compute it while every racer
//!    parks on the flight. Hits rebuild the response from the cached flat
//!    values — the geometry is a deterministic function of the
//!    descriptor.
//! 3. **Source** — member sources resolve their overlapping chunks
//!    through the chunk cache (hits, single-flight, LRU all apply);
//!    ensemble sources fan `realizations` emulator runs over the
//!    [`exaclim_runtime::pool`] worker pool, each seeded by
//!    [`realization_seed`] from `(seed, k)` — never from scheduling
//!    order — so the ensemble is bit-identical at any thread count.
//! 4. **Statistic** — the per-location kernels run location-parallel
//!    over the pool; locations are independent, so the parallel result
//!    is bit-identical to the sequential one.

use crate::cache::{ChunkKey, Fetch};
use crate::error::ServeError;
use crate::product::{ProductData, ProductDescriptor, ProductSource, ProductStat, ScenarioSpec};
use crate::server::{Response, Server};
use exaclim_stats::forcing::ForcingSeries;
use exaclim_stats::trend::{fit_location, TrendConfig};
use exaclim_stats::tukey::{fit_tukey_gh, inverse_normal_cdf};
use exaclim_stats::var::fit_diagonal_var_multi;
use exaclim_store::MemberKind;
use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Most realizations one ensemble request may ask for.
pub const MAX_REALIZATIONS: u32 = 512;

/// Cap on both the working-set and the output size of one product, in
/// `f64` values (1 GiB of floats). Requests above it are rejected as
/// [`ServeError::BadRequest`] instead of exhausting server memory.
pub const MAX_PRODUCT_VALUES: u64 = 1 << 27;

/// Highest AR order [`ProductStat::Persistence`] accepts.
pub const MAX_PERSISTENCE_ORDER: u32 = 8;

/// The trend-product regression: 2 harmonic pairs and a 3-point `ρ`
/// grid — 7 columns, so a fit needs at least 8 time steps. Fixed by the
/// protocol (not configurable per request) so one descriptor always
/// denotes one product.
fn trend_config(tau: usize, start_year: i64) -> TrendConfig {
    TrendConfig {
        k_harmonics: 2,
        tau,
        rho_grid: vec![0.0, 0.4, 0.8],
        start_year,
    }
}

/// Minimum time-window length of a [`ProductStat::Trend`] fit:
/// `ncols + 1` of [`trend_config`].
const TREND_MIN_STEPS: u64 = 8;

/// The seed of ensemble realization `k` under base seed `base`: a
/// splitmix64-style mix of `(base, k)`.
///
/// Each realization's seed is a pure function of the request, never of
/// worker scheduling, which is what makes ensemble fan-out bit-identical
/// at any `EXACLIM_THREADS`. Clients can reproduce any single member by
/// running `Request::Emulate` with this seed.
///
/// ```
/// use exaclim_serve::scenario::realization_seed;
/// assert_ne!(realization_seed(7, 0), 7);
/// assert_ne!(realization_seed(7, 0), realization_seed(7, 1));
/// assert_ne!(realization_seed(7, 0), realization_seed(8, 0));
/// ```
pub fn realization_seed(base: u64, k: u32) -> u64 {
    let mut z = base.wrapping_add(
        u64::from(k)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The product a bare [`crate::server::Request::Ensemble`] desugars to:
/// raw values, no windows. Both request forms hash to the same
/// [`crate::product::ProductKey`], so they share one cache entry.
pub(crate) fn ensemble_descriptor(spec: &ScenarioSpec) -> ProductDescriptor {
    ProductDescriptor {
        source: ProductSource::Ensemble(spec.clone()),
        stat: ProductStat::Raw,
        time: None,
        space: None,
    }
}

/// Everything [`Server::answer_product`] resolves *before* touching the
/// product cache: where the source lives, its windowed extent, and the
/// output geometry the descriptor deterministically maps to.
struct ProductPlan {
    /// Member source `(archive index, member index)`; `None` ⇒ ensemble.
    member: Option<(u32, u32)>,
    /// Ensemble source; `None` ⇒ member.
    spec: Option<ScenarioSpec>,
    /// Baseline `(archive index, member index)` of an anomaly stat.
    baseline: Option<(u32, u32)>,
    /// Source realizations (1 for a member source).
    realizations: u32,
    /// Resolved half-open time window into the source.
    time: Range<u64>,
    /// Resolved half-open space window into each slice.
    space: Range<u64>,
    /// Steps per year of the source (0 ⇒ unknown).
    tau: usize,
    /// Calendar year of the source's step 0.
    start_year: i64,
    /// Output realization count.
    out_realizations: u32,
    /// Output rows per realization.
    out_rows: u64,
    /// Output values per row.
    out_vpr: u64,
}

impl ProductPlan {
    fn t_len(&self) -> usize {
        (self.time.end - self.time.start) as usize
    }

    fn s_len(&self) -> usize {
        (self.space.end - self.space.start) as usize
    }

    fn data(&self, values: Vec<f64>) -> ProductData {
        debug_assert_eq!(
            values.len() as u64,
            u64::from(self.out_realizations) * self.out_rows * self.out_vpr
        );
        ProductData {
            realizations: self.out_realizations,
            rows: self.out_rows,
            values_per_row: self.out_vpr,
            values,
        }
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

impl Server {
    /// Evaluate a derived product, serving it from the product cache when
    /// possible. On a miss, exactly one caller computes the product
    /// (single-flight, even across racing batches and connections) and
    /// the result is cached under the descriptor's canonical hash;
    /// computation errors propagate to every waiter and are never cached.
    pub(crate) fn answer_product(
        &self,
        descriptor: &ProductDescriptor,
    ) -> Result<Response, ServeError> {
        let plan = self.plan_product(descriptor)?;
        let values = match self.product_cache.begin_fetch(descriptor.key()) {
            Fetch::Ready(values) => values,
            Fetch::Wait(flight) => flight.wait()?,
            Fetch::Lead(lead) => {
                let result = self.compute_product(descriptor, &plan);
                if result.is_ok() {
                    self.stats.product_computes.fetch_add(1, Ordering::Relaxed);
                }
                lead.finish(result.clone());
                result?
            }
        };
        Ok(Response::Product(plan.data(values.to_vec())))
    }

    /// Resolve and validate a descriptor against the catalog: names,
    /// windows, per-stat preconditions, and size caps. Runs before the
    /// cache so invalid descriptors never reserve a flight, and
    /// completely: the compute path below can assume every precondition
    /// of the stats kernels (which `assert!` on violation) holds.
    fn plan_product(&self, d: &ProductDescriptor) -> Result<ProductPlan, ServeError> {
        let member_field = |archive: &str, member: &str| -> Result<(u32, u32, u64, u64), _> {
            let ai = self.catalog.archive_index(archive)?;
            let a = &self.catalog.archives()[ai];
            let mi = a.member_index(member)?;
            let m = &a.members()[mi];
            if m.kind != MemberKind::Field {
                return Err(bad(format!("member `{member}` is not a field")));
            }
            Ok((ai as u32, mi as u32, m.t_max, m.values_per_slice))
        };

        // Source extent.
        let (member, spec, realizations, t_max, vps, tau, start_year) = match &d.source {
            ProductSource::Member { archive, member } => {
                let (ai, mi, t_max, vps) = member_field(archive, member)?;
                let meta = self.catalog.archives()[ai as usize].members()[mi as usize].meta;
                (
                    Some((ai, mi)),
                    None,
                    1u32,
                    t_max,
                    vps,
                    meta.tau,
                    meta.start_year,
                )
            }
            ProductSource::Ensemble(spec) => {
                let served = self.catalog.emulator(&spec.emulator)?;
                if spec.realizations == 0 || spec.realizations > MAX_REALIZATIONS {
                    return Err(bad(format!(
                        "realizations must be 1..={MAX_REALIZATIONS}, got {}",
                        spec.realizations
                    )));
                }
                if spec.t_max == 0 {
                    return Err(bad("ensemble t_max must be positive"));
                }
                usize::try_from(spec.t_max).map_err(|_| bad("ensemble t_max overflows"))?;
                let em = &served.emulator;
                (
                    None,
                    Some(spec.clone()),
                    spec.realizations,
                    spec.t_max,
                    em.npoints() as u64,
                    em.config.tau,
                    em.start_year,
                )
            }
        };

        // Windows.
        let time = d.time.clone().unwrap_or(0..t_max);
        if time.start >= time.end || time.end > t_max {
            return Err(bad(format!(
                "time window {time:?} is empty or outside 0..{t_max}"
            )));
        }
        let space = d.space.clone().unwrap_or(0..vps);
        if space.start >= space.end || space.end > vps {
            return Err(bad(format!(
                "space window {space:?} is empty or outside 0..{vps}"
            )));
        }
        let t_len = time.end - time.start;
        let s_len = space.end - space.start;

        // Per-stat preconditions and output geometry.
        let mut baseline = None;
        let (out_realizations, out_rows) = match &d.stat {
            ProductStat::Raw => (realizations, t_len),
            ProductStat::Anomaly { archive, member } => {
                let (ai, mi, b_tmax, b_vps) = member_field(archive, member)?;
                if b_tmax < time.end {
                    return Err(bad(format!(
                        "baseline `{member}` covers only {b_tmax} steps, window needs {}",
                        time.end
                    )));
                }
                if b_vps != vps {
                    return Err(bad(format!(
                        "baseline `{member}` has {b_vps} values per slice, source has {vps}"
                    )));
                }
                baseline = Some((ai, mi));
                (realizations, t_len)
            }
            ProductStat::MeanStd => (1, 2),
            ProductStat::Trend => {
                if tau == 0 {
                    return Err(bad("trend products need a source with tau metadata"));
                }
                if t_len < TREND_MIN_STEPS {
                    return Err(bad(format!(
                        "trend fit needs at least {TREND_MIN_STEPS} time steps, window has {t_len}"
                    )));
                }
                (1, 5)
            }
            ProductStat::Persistence { order } => {
                if *order == 0 || *order > MAX_PERSISTENCE_ORDER {
                    return Err(bad(format!(
                        "persistence order must be 1..={MAX_PERSISTENCE_ORDER}, got {order}"
                    )));
                }
                if t_len <= u64::from(*order) + 1 {
                    return Err(bad(format!(
                        "persistence order {order} needs more than {} time steps, window has {t_len}",
                        order + 1
                    )));
                }
                (1, u64::from(*order) + 1)
            }
            ProductStat::TukeyExtremes { tail_per_mille } => {
                if *tail_per_mille == 0 || *tail_per_mille > 499 {
                    return Err(bad(format!(
                        "tail_per_mille must be 1..=499, got {tail_per_mille}"
                    )));
                }
                if u64::from(realizations) * t_len < 32 {
                    return Err(bad(format!(
                        "tukey fit needs at least 32 samples per location, window has {}",
                        u64::from(realizations) * t_len
                    )));
                }
                (1, 4)
            }
        };

        // Size caps, overflow-checked: the windowed working set and the
        // output must both stay under the value budget.
        let working = u64::from(realizations)
            .checked_mul(t_len)
            .and_then(|v| v.checked_mul(s_len))
            .filter(|&v| v <= MAX_PRODUCT_VALUES)
            .ok_or_else(|| bad("product working set exceeds the value budget"))?;
        let output = u64::from(out_realizations)
            .checked_mul(out_rows)
            .and_then(|v| v.checked_mul(s_len))
            .filter(|&v| v <= MAX_PRODUCT_VALUES)
            .ok_or_else(|| bad("product output exceeds the value budget"))?;
        let _ = (working, output);

        Ok(ProductPlan {
            member,
            spec,
            baseline,
            realizations,
            time,
            space,
            tau,
            start_year,
            out_realizations,
            out_rows,
            out_vpr: s_len,
        })
    }

    /// Evaluate a planned product: materialize the windowed source block
    /// (through the chunk cache or by ensemble fan-out), then apply the
    /// statistic kernel.
    fn compute_product(
        &self,
        d: &ProductDescriptor,
        plan: &ProductPlan,
    ) -> Result<Arc<[f64]>, ServeError> {
        // Fault site `product`: derived-product evaluation. Errors are
        // retryable ([`ServeError::Internal`]) and never cached — the
        // single-flight map publishes them to waiters only — so a retry
        // recomputes cleanly.
        if let Some(action) = exaclim_runtime::faults::check("product") {
            use exaclim_runtime::FaultAction;
            match action {
                FaultAction::Delay(dur) | FaultAction::Stall(dur) => std::thread::sleep(dur),
                FaultAction::Error | FaultAction::Corrupt => {
                    return Err(ServeError::Internal("injected product fault".to_string()));
                }
                _ => {}
            }
        }
        let block = self.source_block(plan)?;
        let values = match &d.stat {
            ProductStat::Raw => block,
            ProductStat::Anomaly { .. } => {
                let (ai, mi) = plan.baseline.expect("anomaly plan has a baseline");
                let base = self.member_series(ai, mi, &plan.time, &plan.space)?;
                let per = base.len();
                let mut out = block;
                for r in 0..plan.realizations as usize {
                    for (v, b) in out[r * per..(r + 1) * per].iter_mut().zip(&base) {
                        *v -= b;
                    }
                }
                out
            }
            ProductStat::MeanStd => self.per_location(plan, &block, 2, |samples, out| {
                out[0] = exaclim_mathkit::stats::mean(samples);
                out[1] = exaclim_mathkit::stats::variance(samples).sqrt();
            }),
            ProductStat::Trend => self.trend_planes(plan, &block),
            ProductStat::Persistence { order } => {
                self.persistence_planes(plan, &block, *order as usize)
            }
            ProductStat::TukeyExtremes { tail_per_mille } => {
                let q = f64::from(*tail_per_mille) / 1000.0;
                let (z_lo, z_hi) = (inverse_normal_cdf(q), inverse_normal_cdf(1.0 - q));
                self.per_location(plan, &block, 4, move |samples, out| {
                    let fit = fit_tukey_gh(samples);
                    out[0] = fit.g;
                    out[1] = fit.h;
                    out[2] = fit.forward(z_lo);
                    out[3] = fit.forward(z_hi);
                })
            }
        };
        Ok(values.into())
    }

    /// The windowed source values, realization-major
    /// `realizations × t_len × s_len`.
    fn source_block(&self, plan: &ProductPlan) -> Result<Vec<f64>, ServeError> {
        match (&plan.member, &plan.spec) {
            (Some((ai, mi)), _) => self.member_series(*ai, *mi, &plan.time, &plan.space),
            (None, Some(spec)) => self.ensemble_block(spec, plan),
            (None, None) => unreachable!("plan has a source"),
        }
    }

    /// One member's `[time) × [space)` window, resolved chunk-by-chunk
    /// through the chunk cache (hits, single-flight and LRU all apply) in
    /// parallel over the pool.
    fn member_series(
        &self,
        archive: u32,
        member: u32,
        time: &Range<u64>,
        space: &Range<u64>,
    ) -> Result<Vec<f64>, ServeError> {
        let a = &self.catalog.archives()[archive as usize];
        let m = &a.members()[member as usize];
        let vps = m.values_per_slice as usize;
        let chunk_idxs = m.chunks_for_range(time.start, time.end);

        let mut fetched: Vec<Option<Result<Arc<[f64]>, ServeError>>> = vec![None; chunk_idxs.len()];
        exaclim_runtime::pool::global().parallel_chunks_mut(&mut fetched, 1, |i, slot| {
            slot[0] = Some(self.resolve_chunk(ChunkKey {
                archive,
                member,
                chunk: chunk_idxs[i] as u32,
            }));
        });

        let s_len = (space.end - space.start) as usize;
        let t_len = (time.end - time.start) as usize;
        let mut out = vec![0.0; t_len * s_len];
        for (slot, &ci) in fetched.into_iter().zip(&chunk_idxs) {
            let values = slot.expect("every fetch slot filled")?;
            let c = m.chunks[ci];
            let lo = time.start.max(c.t0);
            let hi = time.end.min(c.t0 + u64::from(c.t_len));
            for t in lo..hi {
                let src = (t - c.t0) as usize * vps + space.start as usize;
                let dst = (t - time.start) as usize * s_len;
                out[dst..dst + s_len].copy_from_slice(&values[src..src + s_len]);
            }
        }
        Ok(out)
    }

    /// Emulate `spec.realizations` members in parallel over the pool and
    /// keep only each run's `[time) × [space)` window. Realization `k`
    /// always runs with [`realization_seed`]`(spec.seed, k)`, so the
    /// block is independent of scheduling.
    fn ensemble_block(
        &self,
        spec: &ScenarioSpec,
        plan: &ProductPlan,
    ) -> Result<Vec<f64>, ServeError> {
        let served = self.catalog.emulator(&spec.emulator)?;
        let em = Arc::clone(&served.emulator);
        let t_max = spec.t_max as usize;
        let npoints = em.npoints();
        let (t_len, s_len) = (plan.t_len(), plan.s_len());
        let (t0, s0) = (plan.time.start as usize, plan.space.start as usize);

        let mut slots: Vec<Option<Result<Vec<f64>, ServeError>>> =
            vec![None; spec.realizations as usize];
        exaclim_runtime::pool::global().parallel_chunks_mut(&mut slots, 1, |k, slot| {
            let seed = realization_seed(spec.seed, k as u32);
            slot[0] = Some(em.emulate(t_max, seed).map_err(ServeError::from).map(|ds| {
                let mut window = Vec::with_capacity(t_len * s_len);
                for t in t0..t0 + t_len {
                    let row = &ds.data[t * npoints + s0..t * npoints + s0 + s_len];
                    window.extend_from_slice(row);
                }
                window
            }));
        });

        let mut out = Vec::with_capacity(spec.realizations as usize * t_len * s_len);
        for slot in slots {
            out.extend(slot.expect("every realization slot filled")?);
        }
        Ok(out)
    }

    /// Run a per-location kernel over the block, location-parallel on the
    /// pool: location `j`'s pooled `(realization, time)` samples go in,
    /// `planes` output values come out. Locations are independent, so the
    /// result is bit-identical at any thread count.
    fn per_location(
        &self,
        plan: &ProductPlan,
        block: &[f64],
        planes: usize,
        kernel: impl Fn(&[f64], &mut [f64]) + Sync,
    ) -> Vec<f64> {
        let (t_len, s_len) = (plan.t_len(), plan.s_len());
        let n_r = plan.realizations as usize;
        let mut cols: Vec<Option<Vec<f64>>> = vec![None; s_len];
        exaclim_runtime::pool::global().parallel_chunks_mut(&mut cols, 1, |j, slot| {
            let samples: Vec<f64> = (0..n_r * t_len).map(|i| block[i * s_len + j]).collect();
            let mut out = vec![0.0; planes];
            kernel(&samples, &mut out);
            slot[0] = Some(out);
        });
        // Scatter the per-location columns into plane-major rows.
        let mut out = vec![0.0; planes * s_len];
        for (j, col) in cols.into_iter().enumerate() {
            for (p, v) in col.expect("every location filled").into_iter().enumerate() {
                out[p * s_len + j] = v;
            }
        }
        out
    }

    /// Per-location trend fit ([`exaclim_stats::trend::fit_location`]) on
    /// the ensemble-mean series: planes `[β₀, β₁, β₂, ρ, σ]`. The
    /// regression sees calendar years starting at the *window*, so a
    /// re-sliced source fits the years it actually covers.
    fn trend_planes(&self, plan: &ProductPlan, block: &[f64]) -> Vec<f64> {
        let start_year = plan.start_year + (plan.time.start / plan.tau as u64) as i64;
        let cfg = trend_config(plan.tau, start_year);
        let t_len = plan.t_len();
        let end_year = cfg.year_of(t_len);
        let forcing = ForcingSeries::historical_like(start_year, end_year, 30);
        let n_r = plan.realizations as usize;
        let inv = 1.0 / n_r as f64;
        self.per_location(plan, block, 5, move |samples, out| {
            // `samples` pools realizations; reduce to the ensemble-mean
            // series before fitting (deterministic accumulation order).
            let y: Vec<f64> = (0..t_len)
                .map(|t| (0..n_r).map(|r| samples[r * t_len + t]).sum::<f64>() * inv)
                .collect();
            let fit = fit_location(&y, &cfg, &forcing);
            out.copy_from_slice(&[fit.beta0, fit.beta1, fit.beta2, fit.rho, fit.sigma]);
        })
    }

    /// Per-location AR(`order`) persistence fit pooled across
    /// realizations: planes `[φ₁ … φ_order, innovation std]`. The fit
    /// treats locations as the VAR channels
    /// ([`exaclim_stats::var::fit_diagonal_var_multi`] is
    /// channel-parallel internally and bit-identical to sequential), and
    /// `σ` pools every realization's innovations per location.
    fn persistence_planes(&self, plan: &ProductPlan, block: &[f64], order: usize) -> Vec<f64> {
        let (t_len, s_len) = (plan.t_len(), plan.s_len());
        let n_r = plan.realizations as usize;
        // Re-shape each realization into a time series of location rows.
        let members: Vec<Vec<Vec<f64>>> = (0..n_r)
            .map(|r| {
                (0..t_len)
                    .map(|t| block[(r * t_len + t) * s_len..(r * t_len + t + 1) * s_len].to_vec())
                    .collect()
            })
            .collect();
        let refs: Vec<&[Vec<f64>]> = members.iter().map(|m| m.as_slice()).collect();
        let fit = fit_diagonal_var_multi(&refs, order);

        // Innovation std per location, pooling every member's residuals
        // in member order (deterministic).
        let mut residuals: Vec<Vec<f64>> = vec![Vec::new(); s_len];
        for m in &members {
            for row in fit.innovations(m) {
                for (j, v) in row.into_iter().enumerate() {
                    residuals[j].push(v);
                }
            }
        }

        let mut out = vec![0.0; (order + 1) * s_len];
        for j in 0..s_len {
            for p in 0..order {
                out[p * s_len + j] = fit.phi[j][p];
            }
            out[order * s_len + j] = exaclim_mathkit::stats::variance(&residuals[j]).sqrt();
        }
        out
    }
}
