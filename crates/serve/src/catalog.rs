//! Catalog of opened archives and registered emulators.
//!
//! The catalog is the server's name space: archives are opened once
//! (header + directory parse + structural validation) and then addressed
//! by name; emulators are registered directly or loaded out of snapshot
//! members embedded in an already-open archive. After construction the
//! catalog is immutable and shared read-only across worker threads.
//!
//! **Locking model.** Each archive is an [`exaclim_store::Archive`] over a
//! [`ChunkSource`], and every fetch goes through its `&self` read methods:
//!
//! * **zero-copy sources** (memory-mapped files, in-memory buffers) serve
//!   concurrent chunk fetches with *no lock and no copy* — each fetch is a
//!   borrowed view of stable storage, CRC-verified in place, and any
//!   number of workers read one archive simultaneously;
//! * **stream sources** (arbitrary `Read + Seek` handles) carry their
//!   mutex inside [`exaclim_store::LockedReader`], preserving the old
//!   seek+read discipline as the portable fallback.
//!
//! Decode always runs on the worker that requested the chunk, outside any
//! lock, whatever the backend.

use crate::error::ServeError;
use exaclim::TrainedEmulator;
use exaclim_store::{
    mmap_enabled, open_file_source, Archive, ChunkSource, LockedReader, MemberEntry, MemberKind,
    SharedBytes, Snapshot, SourceBytes,
};
use std::io::{Read, Seek};
use std::sync::Arc;

/// Byte stream an archive can be served from. Blanket-implemented for
/// every `Read + Seek + Send` type (files, in-memory cursors, …). Streams
/// serve through the mutex fallback; prefer
/// [`Catalog::open_archive_file`] / [`Catalog::open_archive_bytes`],
/// which pick a zero-copy source.
pub trait ByteSource: Read + Seek + Send {}
impl<T: Read + Seek + Send> ByteSource for T {}

/// One archive opened in the catalog.
pub struct ServedArchive {
    /// Catalog name of the archive (unique).
    name: String,
    /// The opened archive; all read methods take `&self`, so workers
    /// fetch chunks concurrently with no catalog-level locking.
    archive: Archive,
}

impl std::fmt::Debug for ServedArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedArchive")
            .field("name", &self.name)
            .field("members", &self.members().len())
            .field("total_len", &self.total_len())
            .field("backend", &self.backend())
            .finish()
    }
}

impl ServedArchive {
    /// Catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The archive's member directory, in write order.
    pub fn members(&self) -> &[MemberEntry] {
        self.archive.members()
    }

    /// Total container length in bytes.
    pub fn total_len(&self) -> u64 {
        self.archive.total_len()
    }

    /// Byte-source backend label ("mmap", "bytes", "stream").
    pub fn backend(&self) -> &'static str {
        self.archive.backend()
    }

    /// True when chunk fetches are lock-free borrowed views (mmap or
    /// in-memory source) rather than copies read under a mutex.
    pub fn is_zero_copy(&self) -> bool {
        self.archive.is_zero_copy()
    }

    /// Member index by name.
    pub fn member_index(&self, member: &str) -> Result<usize, ServeError> {
        Ok(self.archive.member_index(member)?)
    }

    /// Fetch and checksum-verify the stored bytes of one chunk. Over a
    /// zero-copy backend this borrows straight from the mapping — no
    /// lock, no copy; over a stream it reads under the source's internal
    /// mutex. Decode the result with [`exaclim_store::Codec::decode`]
    /// on the calling worker.
    pub fn fetch_chunk_stored(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<SourceBytes<'_>, ServeError> {
        Ok(self.archive.read_chunk_stored(member_idx, chunk_idx)?)
    }

    /// Fetch **and decode** one field chunk — the sequential-baseline
    /// convenience; the serving hot path goes through
    /// [`ServedArchive::fetch_chunk_stored`] + cache + single-flight.
    pub fn fetch_field_chunk(
        &self,
        member_idx: usize,
        chunk_idx: usize,
    ) -> Result<Vec<f64>, ServeError> {
        Ok(self.archive.read_field_chunk(member_idx, chunk_idx)?)
    }

    /// Read a snapshot member `(schema_version, payload)` (snapshot reads
    /// are rare: catalog/emulator loading, not the per-request path).
    pub fn read_snapshot(&self, member: &str) -> Result<(u32, Vec<u8>), ServeError> {
        Ok(self.archive.read_snapshot(member)?)
    }
}

/// A registered emulator with its catalog name.
#[derive(Debug, Clone)]
pub struct ServedEmulator {
    /// Catalog name (unique among emulators).
    pub name: String,
    /// The model, shared across worker threads.
    pub emulator: Arc<TrainedEmulator>,
}

/// Name space of archives and emulators a [`crate::Server`] serves from.
///
/// ```
/// use exaclim_serve::Catalog;
/// use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
/// use std::io::Cursor;
///
/// let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
/// let data = vec![0.5; 6 * 8];
/// w.add_field("t2m", Codec::Raw64, FieldMeta::default(), 6, 4, &data).unwrap();
/// let (cursor, _) = w.finish().unwrap();
///
/// let mut catalog = Catalog::new();
/// catalog.open_archive_bytes("era5", cursor.into_inner()).unwrap();
/// assert_eq!(catalog.archives().len(), 1);
/// assert_eq!(catalog.archive("era5").unwrap().members()[0].name, "t2m");
/// // In-memory archives serve lock-free.
/// assert!(catalog.archive("era5").unwrap().is_zero_copy());
/// ```
#[derive(Debug, Default)]
pub struct Catalog {
    archives: Vec<ServedArchive>,
    emulators: Vec<ServedEmulator>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an archive over an explicit [`ChunkSource`] under catalog
    /// name `name`. The directory is parsed and validated here; chunk
    /// payloads are fetched lazily per request.
    pub fn open_archive_source(
        &mut self,
        name: impl Into<String>,
        source: Box<dyn ChunkSource + Send + Sync>,
    ) -> Result<&ServedArchive, ServeError> {
        let name = name.into();
        if self.archives.iter().any(|a| a.name == name) {
            return Err(ServeError::BadRequest(format!(
                "archive `{name}` is already open in the catalog"
            )));
        }
        let archive = Archive::from_source(source)?;
        self.archives.push(ServedArchive { name, archive });
        Ok(self.archives.last().expect("just pushed"))
    }

    /// Open an archive from any [`ByteSource`] stream under catalog name
    /// `name`. Streams cannot hand out stable views, so this archive
    /// serves through the mutex fallback.
    pub fn open_archive(
        &mut self,
        name: impl Into<String>,
        source: impl ByteSource + 'static,
    ) -> Result<&ServedArchive, ServeError> {
        let locked = LockedReader::new(source).map_err(ServeError::Archive)?;
        self.open_archive_source(name, Box::new(locked))
    }

    /// Open an archive file at `path` under catalog name `name`,
    /// memory-mapping it for lock-free zero-copy fetches when the
    /// platform supports it and `EXACLIM_MMAP` does not opt out
    /// ([`exaclim_store::mmap_enabled`]); otherwise the file serves
    /// through a buffered reader behind a mutex.
    pub fn open_archive_file(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<&ServedArchive, ServeError> {
        let source = open_file_source(path, mmap_enabled())?;
        self.open_archive_source(name, source)
    }

    /// Open an in-memory archive under catalog name `name` (zero-copy,
    /// lock-free fetches).
    pub fn open_archive_bytes(
        &mut self,
        name: impl Into<String>,
        bytes: Vec<u8>,
    ) -> Result<&ServedArchive, ServeError> {
        self.open_archive_source(name, Box::new(SharedBytes::from(bytes)))
    }

    /// Register an already-constructed emulator under `name`.
    pub fn register_emulator(
        &mut self,
        name: impl Into<String>,
        emulator: TrainedEmulator,
    ) -> Result<(), ServeError> {
        let name = name.into();
        if self.emulators.iter().any(|e| e.name == name) {
            return Err(ServeError::BadRequest(format!(
                "emulator `{name}` is already registered"
            )));
        }
        self.emulators.push(ServedEmulator {
            name,
            emulator: Arc::new(emulator),
        });
        Ok(())
    }

    /// Load a [`TrainedEmulator`] out of snapshot member `member` of the
    /// open archive `archive` and register it under `name` — the path by
    /// which an archive that ships its own trained model becomes servable
    /// end to end.
    pub fn load_emulator_from_archive(
        &mut self,
        name: impl Into<String>,
        archive: &str,
        member: &str,
    ) -> Result<(), ServeError> {
        let (version, payload) = self.archive(archive)?.read_snapshot(member)?;
        let emulator = TrainedEmulator::from_snapshot(&Snapshot::new(member, version, payload))?;
        self.register_emulator(name, emulator)
    }

    /// All open archives, in open order.
    pub fn archives(&self) -> &[ServedArchive] {
        &self.archives
    }

    /// All registered emulators, in registration order.
    pub fn emulators(&self) -> &[ServedEmulator] {
        &self.emulators
    }

    /// Archive by catalog name.
    pub fn archive(&self, name: &str) -> Result<&ServedArchive, ServeError> {
        self.archives
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| ServeError::UnknownArchive(name.to_string()))
    }

    /// Catalog index of archive `name` (used as the cache-key component).
    pub fn archive_index(&self, name: &str) -> Result<usize, ServeError> {
        self.archives
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ServeError::UnknownArchive(name.to_string()))
    }

    /// Emulator by catalog name.
    pub fn emulator(&self, name: &str) -> Result<&ServedEmulator, ServeError> {
        self.emulators
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| ServeError::UnknownEmulator(name.to_string()))
    }

    /// Names of every field member of every archive, as
    /// `(archive, member)` pairs — convenience for building workloads.
    pub fn field_members(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for a in &self.archives {
            for m in a.members().iter() {
                if m.kind == MemberKind::Field {
                    out.push((a.name.clone(), m.name.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_store::{ArchiveError, ArchiveReader, ArchiveWriter, ByteCodec, Codec, FieldMeta};
    use std::io::Cursor;

    fn tiny_archive() -> Vec<u8> {
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        let data: Vec<f64> = (0..4 * 9).map(|i| i as f64).collect();
        w.add_field("t2m", Codec::Raw64, FieldMeta::default(), 4, 3, &data)
            .unwrap();
        w.add_snapshot("blob", 5, ByteCodec::Rle, b"opaque", 16)
            .unwrap();
        w.finish().unwrap().0.into_inner()
    }

    #[test]
    fn opens_and_resolves_names() {
        let mut c = Catalog::new();
        c.open_archive_bytes("a", tiny_archive()).unwrap();
        assert_eq!(c.archive_index("a").unwrap(), 0);
        let a = c.archive("a").unwrap();
        assert_eq!(a.member_index("t2m").unwrap(), 0);
        assert_eq!(a.members().len(), 2);
        assert!(matches!(c.archive("b"), Err(ServeError::UnknownArchive(_))));
        assert!(matches!(
            a.member_index("nope"),
            Err(ServeError::Archive(ArchiveError::MemberNotFound(_)))
        ));
        assert_eq!(
            c.field_members(),
            vec![("a".to_string(), "t2m".to_string())]
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut c = Catalog::new();
        c.open_archive_bytes("a", tiny_archive()).unwrap();
        assert!(matches!(
            c.open_archive_bytes("a", tiny_archive()),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn chunk_fetches_match_reader() {
        let bytes = tiny_archive();
        let mut c = Catalog::new();
        c.open_archive_bytes("a", bytes.clone()).unwrap();
        let a = c.archive("a").unwrap();
        let mut r = ArchiveReader::new(Cursor::new(bytes)).unwrap();
        for chunk in 0..a.members()[0].chunks.len() {
            assert_eq!(
                a.fetch_field_chunk(0, chunk).unwrap(),
                r.read_field_chunk(0, chunk).unwrap()
            );
            assert_eq!(
                &a.fetch_chunk_stored(0, chunk).unwrap()[..],
                &r.read_chunk_stored(0, chunk).unwrap()[..]
            );
        }
    }

    #[test]
    fn backend_is_visible_per_open_path() {
        let bytes = tiny_archive();
        let mut c = Catalog::new();
        c.open_archive_bytes("mem", bytes.clone()).unwrap();
        c.open_archive("stream", Cursor::new(bytes.clone()))
            .unwrap();
        assert_eq!(c.archive("mem").unwrap().backend(), "bytes");
        assert!(c.archive("mem").unwrap().is_zero_copy());
        assert!(c
            .archive("mem")
            .unwrap()
            .fetch_chunk_stored(0, 0)
            .unwrap()
            .is_borrowed());
        assert_eq!(c.archive("stream").unwrap().backend(), "stream");
        assert!(!c.archive("stream").unwrap().is_zero_copy());

        let path =
            std::env::temp_dir().join(format!("exaclim_catalog_file_{}.eca1", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        c.open_archive_file("file", &path).unwrap();
        let file = c.archive("file").unwrap();
        let want = if exaclim_store::MMAP_SUPPORTED && exaclim_store::mmap_enabled() {
            "mmap"
        } else {
            "stream"
        };
        assert_eq!(file.backend(), want);
        assert_eq!(
            file.fetch_field_chunk(0, 0).unwrap(),
            c.archive("mem").unwrap().fetch_field_chunk(0, 0).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_reads_and_bad_indices() {
        let mut c = Catalog::new();
        c.open_archive_bytes("a", tiny_archive()).unwrap();
        let a = c.archive("a").unwrap();
        let (version, payload) = a.read_snapshot("blob").unwrap();
        assert_eq!((version, payload.as_slice()), (5, b"opaque".as_slice()));
        assert!(matches!(
            a.fetch_field_chunk(9, 0),
            Err(ServeError::Archive(ArchiveError::BadRequest(_)))
        ));
    }
}
