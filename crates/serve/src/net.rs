//! The network front end: a framed-TCP server and client over
//! [`Server::handle_batch`], speaking the [`crate::wire`] protocol.
//!
//! ## Connection lifecycle
//!
//! [`NetServer::bind`] opens a listener; [`NetServer::spawn`] moves it
//! onto a dedicated accept thread and returns a [`NetServerHandle`]. The
//! accept loop admits at most `max_connections` concurrent connections —
//! it holds one permit of an [`exaclim_runtime::sync::Semaphore`] per
//! open connection, so a connection flood queues in the listener backlog
//! (back-pressure at the door) instead of spawning unbounded handler
//! threads.
//!
//! Each connection gets one handler thread running a strict
//! read-decode-dispatch-write loop: read a request frame, decode the
//! batch, run it through the in-process [`Server::handle_batch`] (which
//! fans out over the shared worker pool — `EXACLIM_THREADS` bounds
//! *compute* concurrency, `max_connections` bounds *admission*), encode
//! the responses, write the response frame with the request's frame id.
//! Because reads are buffered and responses are written in arrival
//! order, a client may **pipeline**: write several request frames before
//! reading the first response.
//!
//! Transport-level failures (bad magic, version mismatch, oversized or
//! corrupt frames) are answered best-effort with an error frame and then
//! the connection is closed — once framing is suspect, nothing after the
//! bad frame can be trusted. Per-request failures (unknown member, bad
//! range) travel *inside* a well-formed response frame and do not
//! disturb the connection or the rest of the batch.
//!
//! [`NetServerHandle::shutdown`] stops the accept loop, unblocks every
//! open connection (socket shutdown → handler sees EOF → exits), and
//! joins all threads before returning — no request already dispatched is
//! abandoned mid-write.
//!
//! ## Example
//!
//! ```
//! use exaclim_serve::net::{Client, NetConfig, NetServer};
//! use exaclim_serve::{Catalog, Request, Response, ServeConfig, Server, SliceRequest};
//! use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
//! use std::io::Cursor;
//! use std::sync::Arc;
//!
//! // An in-memory archive behind an in-process server…
//! let data: Vec<f64> = (0..4 * 12).map(f64::from).collect();
//! let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
//! w.add_field("t2m", Codec::Raw64, FieldMeta::default(), 4, 5, &data).unwrap();
//! let (cursor, _) = w.finish().unwrap();
//! let mut catalog = Catalog::new();
//! catalog.open_archive_bytes("era5", cursor.into_inner()).unwrap();
//! let server = Arc::new(Server::new(catalog, ServeConfig::default()));
//!
//! // …served over loopback.
//! let handle = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
//!     .unwrap()
//!     .spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let responses = client
//!     .batch(&[Request::Slice(SliceRequest {
//!         archive: "era5".to_string(),
//!         member: "t2m".to_string(),
//!         range: 3..7,
//!     })])
//!     .unwrap();
//! let Ok(Response::Slice(slice)) = &responses[0] else { panic!() };
//! assert_eq!(slice.values, data[3 * 4..7 * 4]);
//! drop(client);
//! handle.shutdown();
//! ```

use crate::error::{ServeError, WireError};
use crate::product::{ProductData, ProductDescriptor, ScenarioSpec};
use crate::server::{Request, Response, ServeStats, Server};
use crate::wire::{self, FrameKind, HEADER_LEN};
use exaclim_runtime::sync::Semaphore;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrently open connections; further clients queue in
    /// the listener backlog until a permit frees up.
    pub max_connections: usize,
}

impl Default for NetConfig {
    /// 64 concurrent connections.
    fn default() -> Self {
        Self {
            max_connections: 64,
        }
    }
}

/// Point-in-time transport counters of a [`NetServer`] (see
/// [`NetServerHandle::net_stats`]). Complements [`ServeStats`], which
/// counts requests; these count frames and bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames successfully read and decoded.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Bytes received (headers + payloads of well-formed frames).
    pub bytes_in: u64,
    /// Bytes sent (headers + payloads).
    pub bytes_out: u64,
    /// Requests decoded out of request frames.
    pub requests: u64,
    /// Transport-level failures observed (malformed frames, socket
    /// errors); each also closed its connection.
    pub wire_errors: u64,
}

#[derive(Default)]
struct NetStatCells {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    wire_errors: AtomicU64,
}

impl NetStatCells {
    fn snapshot(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the accept loop, connection handlers, and the
/// [`NetServerHandle`].
struct NetShared {
    server: Arc<Server>,
    stats: NetStatCells,
    /// Set (under the `open_conns` lock) when shutdown begins; the accept
    /// loop re-checks it under the same lock before registering a
    /// connection, so no connection can slip past the shutdown drain.
    shutdown: AtomicBool,
    /// One `(token, clone)` per open connection, so shutdown can unblock
    /// handlers parked in a read. Tokens are accept-loop sequence numbers:
    /// handlers deregister by token, never by address (peer addresses can
    /// be unreadable on already-reset sockets).
    open_conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl NetShared {
    /// Drop one connection's registry entry when its handler exits.
    fn forget_conn(&self, token: u64) {
        let mut conns = self.open_conns.lock();
        if let Some(i) = conns.iter().position(|(t, _)| *t == token) {
            conns.swap_remove(i);
        }
    }
}

/// A bound-but-not-yet-serving network front end over a [`Server`].
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<NetShared>,
    config: NetConfig,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("max_connections", &self.config.max_connections)
            .finish()
    }
}

impl NetServer {
    /// Bind a listener on `addr` (use port 0 for an ephemeral port) over
    /// an existing in-process server.
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Arc<Server>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(NetShared {
                server,
                stats: NetStatCells::default(),
                shutdown: AtomicBool::new(false),
                open_conns: Mutex::new(Vec::new()),
            }),
            config,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Move the listener onto a dedicated accept thread and return the
    /// controlling handle.
    pub fn spawn(self) -> NetServerHandle {
        let shared = Arc::clone(&self.shared);
        let addr = self.addr;
        let accept_thread = std::thread::Builder::new()
            .name("exaclim-net-accept".to_string())
            .spawn(move || accept_loop(self.listener, self.shared, self.config))
            .expect("spawn accept thread");
        NetServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        }
    }
}

/// Controlling handle of a running [`NetServer`]: address, transport
/// stats, graceful shutdown. Dropping the handle shuts the server down.
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl NetServerHandle {
    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process server behind the wire.
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Current transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.shared.stats.snapshot()
    }

    /// Stop accepting, unblock and drain every open connection, and join
    /// all threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else {
            return;
        };
        // Flag and drain under the registry lock: the accept loop
        // registers new connections under the same lock after re-checking
        // the flag, so every connection is either drained here or closed
        // by the loop itself — none can slip between flag and drain and
        // leave shutdown joining a handler nobody will ever unblock.
        let drained: Vec<TcpStream> = {
            let mut conns = self.shared.open_conns.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            conns.drain(..).map(|(_, stream)| stream).collect()
        };
        // Unblock handlers parked in a frame read: their next read
        // returns EOF and the handler exits, releasing its permit.
        for conn in drained {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept call itself with a wake-up connection. A
        // listener bound to an unspecified address (0.0.0.0 / ::) is not
        // connectable everywhere; aim the wake-up at loopback instead.
        let wake = if self.addr.ip().is_unspecified() {
            let ip: IpAddr = match self.addr {
                SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(ip, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake);
        let _ = accept_thread.join();
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept until shutdown; each accepted connection takes a semaphore
/// permit and a handler thread.
fn accept_loop(listener: TcpListener, shared: Arc<NetShared>, config: NetConfig) {
    let admission = Semaphore::new(config.max_connections);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next_token = 0u64;
    loop {
        // Hold a permit *before* accepting: when all permits are out the
        // loop parks here and the kernel backlog queues new clients —
        // admission back-pressure without a thread per waiter.
        let permit = admission.acquire();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        let token = next_token;
        next_token += 1;
        // Register under the lock that shutdown drains under, re-checking
        // the flag there: either this connection lands in the registry
        // before the drain, or shutdown already ran and we close it here.
        {
            let mut conns = shared.open_conns.lock();
            if shared.shutdown.load(Ordering::SeqCst) {
                drop(conns);
                let _ = stream.shutdown(Shutdown::Both);
                break; // often the wake-up connection from shutdown()
            }
            if let Ok(clone) = stream.try_clone() {
                conns.push((token, clone));
            }
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        handlers.retain(|h| !h.is_finished());
        let conn_shared = Arc::clone(&shared);
        let handler = std::thread::Builder::new()
            .name("exaclim-net-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_shared, stream, token);
                drop(permit);
            })
            .expect("spawn connection handler");
        handlers.push(handler);
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serve one connection until EOF, socket error, or a transport-level
/// protocol violation.
fn handle_connection(shared: &NetShared, stream: TcpStream, token: u64) {
    // Frames are explicit flush points; Nagle only adds latency here.
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.forget_conn(token);
            return;
        }
    };
    let mut reader = BufReader::new(reader_stream);
    // Responses go straight to the socket via a gathered write — one
    // `writev` per frame — so there is no BufWriter (and no flush) on
    // the response path.
    let mut writer = stream;
    let stats = &shared.stats;
    loop {
        match wire::read_frame(&mut reader) {
            Ok((header, payload)) if header.kind == FrameKind::Request => {
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_in
                    .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                match wire::decode_request_batch(&payload) {
                    Ok(requests) => {
                        stats
                            .requests
                            .fetch_add(requests.len() as u64, Ordering::Relaxed);
                        let responses = shared.server.handle_batch(&requests);
                        let out = wire::encode_response_batch(&responses);
                        if write_reply(&mut writer, FrameKind::Response, header.id, &out).is_err() {
                            break;
                        }
                        stats.frames_out.fetch_add(1, Ordering::Relaxed);
                        stats
                            .bytes_out
                            .fetch_add((HEADER_LEN + out.len()) as u64, Ordering::Relaxed);
                    }
                    Err(e) => {
                        // The framing was intact but the payload wasn't:
                        // report and close — the stream may be desynced.
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_reply(
                            &mut writer,
                            FrameKind::Error,
                            header.id,
                            &wire::encode_error_payload(&e.to_string()),
                        );
                        break;
                    }
                }
            }
            Ok((header, _)) => {
                // A client must only send request frames.
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &mut writer,
                    FrameKind::Error,
                    header.id,
                    &wire::encode_error_payload(&format!(
                        "unexpected frame kind {} from client",
                        header.kind.id()
                    )),
                );
                break;
            }
            Err(WireError::ConnectionClosed) => break,
            Err(e) => {
                // Bad magic, version mismatch, oversized claim, checksum
                // failure, truncation, socket error: best-effort report,
                // then close.
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &mut writer,
                    FrameKind::Error,
                    0,
                    &wire::encode_error_payload(&e.to_string()),
                );
                break;
            }
        }
    }
    shared.forget_conn(token);
}

/// Write one response frame with a single gathered syscall: header and
/// payload leave in one `writev` instead of two buffered writes plus a
/// flush, so a response never waits on a half-flushed header.
fn write_reply(
    writer: &mut TcpStream,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    wire::write_frame_vectored(writer, kind, id, payload)
}

/// A blocking client over one reused connection.
///
/// [`Client::batch`] is the wire twin of [`Server::handle_batch`]: same
/// request slice in, same `Vec<Result<Response, ServeError>>` out,
/// bit-identical responses. For pipelining, [`Client::send`] and
/// [`Client::recv`] split the round trip: several batches may be in
/// flight on the connection at once, and responses arrive in send order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    in_flight: VecDeque<u64>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

impl Client {
    /// Connect to a [`NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let _ = stream.set_nodelay(true);
        let reader_stream = stream.try_clone().map_err(WireError::from)?;
        Ok(Self {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            next_id: 1,
            in_flight: VecDeque::new(),
        })
    }

    /// Send one request batch and return its frame id without waiting
    /// for the response — the pipelining half of [`Client::batch`].
    pub fn send(&mut self, requests: &[Request]) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request_batch(requests);
        wire::write_frame(&mut self.writer, FrameKind::Request, id, &payload)?;
        self.writer.flush().map_err(WireError::from)?;
        self.in_flight.push_back(id);
        Ok(id)
    }

    /// Receive the response batch for the oldest in-flight [`Client::send`].
    pub fn recv(&mut self) -> Result<Vec<Result<Response, ServeError>>, WireError> {
        let expected = self
            .in_flight
            .pop_front()
            .ok_or_else(|| WireError::Malformed("recv with no request in flight".to_string()))?;
        let (header, payload) = wire::read_frame(&mut self.reader)?;
        match header.kind {
            FrameKind::Response => {
                if header.id != expected {
                    return Err(WireError::IdMismatch {
                        expected,
                        got: header.id,
                    });
                }
                wire::decode_response_batch(&payload)
            }
            FrameKind::Error => Err(WireError::Remote(wire::decode_error_payload(&payload)?)),
            FrameKind::Request => Err(WireError::Malformed(
                "server sent a request frame".to_string(),
            )),
        }
    }

    /// Submit one batch and wait for its responses — the network twin of
    /// [`Server::handle_batch`].
    pub fn batch(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, ServeError>>, WireError> {
        self.send(requests)?;
        self.recv()
    }

    /// Submit one request and wait for its response. The outer error is
    /// the transport, the inner the request itself.
    pub fn request(
        &mut self,
        request: &Request,
    ) -> Result<Result<Response, ServeError>, WireError> {
        let mut responses = self.batch(std::slice::from_ref(request))?;
        match responses.len() {
            1 => Ok(responses.pop().expect("one response")),
            n => Err(WireError::Malformed(format!(
                "{n} responses to a 1-request batch"
            ))),
        }
    }

    /// Fetch the server's serving counters over the wire.
    pub fn stats(&mut self) -> Result<ServeStats, WireError> {
        match self.request(&Request::Stats)? {
            Ok(Response::Stats(stats)) => Ok(stats),
            Ok(other) => Err(WireError::Malformed(format!(
                "stats request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }

    /// Evaluate one derived product server-side — the network twin of a
    /// [`Request::Product`] through [`Server::handle_batch`]. The result
    /// is bit-identical to the in-process evaluation of the same
    /// descriptor.
    pub fn scenario(&mut self, descriptor: &ProductDescriptor) -> Result<ProductData, WireError> {
        match self.request(&Request::Product(descriptor.clone()))? {
            Ok(Response::Product(data)) => Ok(data),
            Ok(other) => Err(WireError::Malformed(format!(
                "product request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }

    /// Run a stochastic ensemble server-side: `spec.realizations`
    /// emulator runs with decorrelated per-realization seeds, returned
    /// as one raw [`ProductData`] block (the network twin of
    /// [`Request::Ensemble`]).
    pub fn ensemble(&mut self, spec: &ScenarioSpec) -> Result<ProductData, WireError> {
        match self.request(&Request::Ensemble(spec.clone()))? {
            Ok(Response::Product(data)) => Ok(data),
            Ok(other) => Err(WireError::Malformed(format!(
                "ensemble request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }
}
